"""Figure 10: cost-oblivious multi-tenant comparison on all 6 datasets.

ease.ml vs ROUNDROBIN vs RANDOM, measured in % of runs (each system may
train 50% of all available models).  Paper: ease.ml drops the loss up
to 1.9× faster; ROUNDROBIN slightly outperforms RANDOM.
"""

from conftest import bench_trials, save_report

from repro.experiments.figures import figure10
from repro.experiments.metrics import area_under_loss


def test_fig10_cost_oblivious(once):
    report = once(figure10, n_trials=bench_trials(6), seed=0)
    save_report("fig10_cost_oblivious", report.render())

    wins = 0
    comparisons = 0
    for name, result in report.results.items():
        grid = result.grid
        easeml = result.strategies["easeml"]
        rr = result.strategies["round_robin"]
        rnd = result.strategies["random"]

        auc_easeml = area_under_loss(grid, easeml.mean_curve)
        auc_rr = area_under_loss(grid, rr.mean_curve)
        auc_rnd = area_under_loss(grid, rnd.mean_curve)

        # ease.ml should never lose badly to either baseline on any
        # dataset (area-under-loss within 15% slack)...
        assert auc_easeml <= auc_rr * 1.15 + 1e-3, name
        assert auc_easeml <= auc_rnd * 1.15 + 1e-3, name
        comparisons += 1
        # ...and should win outright on most datasets.
        if auc_easeml <= min(auc_rr, auc_rnd) + 1e-9:
            wins += 1
    assert wins >= comparisons // 2, f"easeml won only {wins}/{comparisons}"

    # ROUNDROBIN >= RANDOM on average across datasets (paper: slight
    # but consistent edge from sampling without replacement).
    rr_better = 0
    for name, result in report.results.items():
        grid = result.grid
        auc_rr = area_under_loss(
            grid, result.strategies["round_robin"].mean_curve
        )
        auc_rnd = area_under_loss(
            grid, result.strategies["random"].mean_curve
        )
        if auc_rr <= auc_rnd + 1e-9:
            rr_better += 1
    assert rr_better >= len(report.results) // 2
