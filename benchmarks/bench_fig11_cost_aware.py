"""Figure 11: cost-aware multi-tenant comparison on all 6 datasets.

Same grid as Figure 10 but with real/synthetic execution costs and the
budget measured in % of total cost.  Paper: the relative ordering
matches the cost-oblivious case, with a *larger* ease.ml margin —
heterogeneous costs magnify the differences between users.
"""

from conftest import bench_trials, save_report

from repro.experiments.figures import figure11
from repro.experiments.metrics import area_under_loss


def test_fig11_cost_aware(once):
    report = once(figure11, n_trials=bench_trials(6), seed=0)
    save_report("fig11_cost_aware", report.render())

    wins = 0
    comparisons = 0
    for name, result in report.results.items():
        grid = result.grid
        auc = {
            s: area_under_loss(grid, r.mean_curve)
            for s, r in result.strategies.items()
        }
        assert auc["easeml"] <= auc["round_robin"] * 1.15 + 1e-3, name
        assert auc["easeml"] <= auc["random"] * 1.15 + 1e-3, name
        comparisons += 1
        if auc["easeml"] <= min(auc.values()) + 1e-9:
            wins += 1
    assert wins >= comparisons // 2


def test_fig11_margin_grows_vs_cost_oblivious(once):
    """The paper's comparison between Figures 10 and 11: the ease.ml
    advantage over RANDOM is larger in the cost-aware regime, on the
    DEEPLEARNING dataset where costs are heterogeneous."""
    from repro.experiments.figures import figure10, figure11

    trials = bench_trials(6)
    aware = once(
        figure11, n_trials=trials, seed=0,
        dataset_names=["DEEPLEARNING"],
    )
    from repro.experiments.figures import figure10 as f10

    oblivious = f10(
        n_trials=trials, seed=0, dataset_names=["DEEPLEARNING"]
    )

    def margin(report):
        result = report.results["DEEPLEARNING"]
        grid = result.grid
        auc_e = area_under_loss(
            grid, result.strategies["easeml"].mean_curve
        )
        auc_r = area_under_loss(
            grid, result.strategies["random"].mean_curve
        )
        return auc_r / max(auc_e, 1e-9)

    save_report(
        "fig11_margin_comparison",
        "cost-aware margin vs random: "
        f"{margin(aware):.2f}; cost-oblivious: {margin(oblivious):.2f}",
    )
    # Cost-awareness should not shrink the advantage (generous slack:
    # the ratio is noisy at low trial counts).
    assert margin(aware) >= margin(oblivious) * 0.7
