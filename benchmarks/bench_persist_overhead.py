"""Write-ahead journaling overhead on the mutating request path.

Drives the gateway in process (no HTTP, so transport cost does not
mask the journal) through a mutation-heavy mix — feed a batch, toggle
an example, submit async training, poll handles to completion — under
three durability modes:

* ``off``       — no state store attached (the PR-3 baseline);
* ``buffered``  — journal appends flushed to the OS, fsync left to
  the kernel (a host crash may lose the tail; a process crash not);
* ``group``     — appends share one fsync per commit convoy, run by
  the gateway's ack barrier (the full WAL guarantee at a fraction of
  the fsyncs: a multi-record operation pays one instead of one per
  record, and concurrent writers ride each other's flushes);
* ``fsync``     — every record fsynced before the request acks (the
  full WAL guarantee, one fsync per record; the default for
  ``repro serve --state-dir``).

Run standalone (CI-friendly)::

    PYTHONPATH=src python benchmarks/bench_persist_overhead.py --quick

or under pytest like the figure benchmarks::

    cd benchmarks && PYTHONPATH=../src python -m pytest \
        bench_persist_overhead.py -q
"""

import argparse
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from conftest import save_report

from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.service import ServiceGateway
from repro.service.api import (
    FeedRequest,
    JobStatusRequest,
    RegisterAppRequest,
    SetExampleEnabledRequest,
    SubmitTrainingRequest,
)
from repro.utils.tables import ascii_table

PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
ZOO = ["naive-bayes", "ridge", "tree-d4"]
MODES = ("off", "buffered", "group", "fsync")


def _gateway_kwargs(seed):
    return dict(
        placement="partition",
        n_gpus=4,
        min_examples=10,
        seed=seed,
        zoo=default_zoo().subset(ZOO),
    )


def _build(mode, state_dir, seed):
    if mode == "off":
        return ServiceGateway(**_gateway_kwargs(seed))
    from repro.persist import open_gateway

    gateway, _ = open_gateway(
        state_dir, sync=mode, snapshot_every=0, **_gateway_kwargs(seed)
    )
    return gateway


def _drive(gateway, token, app, rows, labels, n_cycles, latencies):
    """One mutation cycle = feed + toggle + submit + poll-to-done."""
    fed = 0
    for i in range(n_cycles):
        start = time.perf_counter()
        response = gateway.handle(
            FeedRequest(
                auth_token=token, app=app,
                inputs=rows[i % len(rows)], outputs=labels[i % len(rows)],
            )
        )
        fed += len(response.example_ids)
        gateway.handle(
            SetExampleEnabledRequest(
                auth_token=token, app=app,
                example_id=response.example_ids[0], enabled=(i % 2 == 0),
            )
        )
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app=app, steps=1)
        ).handles
        polls = 0
        while not gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handles[0].job_id)
        ).done:
            polls += 1
        latencies.append(time.perf_counter() - start)
    return fed


def run_benchmark(mode, n_cycles=30, seed=0, state_dir=None):
    """Returns report rows for one durability mode; prints nothing."""
    own_dir = state_dir is None
    if own_dir:
        state_dir = Path(tempfile.mkdtemp(prefix="bench-persist-"))
    gateway = _build(mode, Path(state_dir) / mode, seed)
    try:
        token = gateway.create_tenant("bench")
        gateway.handle(
            RegisterAppRequest(auth_token=token, app="app", program=PROGRAM)
        )
        X, y = make_task(TaskSpec("moons", 200, 0.3, seed=seed))
        batch = 5
        rows = [
            tuple(tuple(float(v) for v in r) for r in X[i:i + batch])
            for i in range(0, 100, batch)
        ]
        labels = [
            tuple(int(v) for v in y[i:i + batch])
            for i in range(0, 100, batch)
        ]
        # Seed the store past min_examples, then warm up: the first
        # submit profiles the app and starts the cluster run.
        gateway.handle(
            FeedRequest(
                auth_token=token, app="app",
                inputs=tuple(tuple(float(v) for v in r) for r in X[100:160]),
                outputs=tuple(int(v) for v in y[100:160]),
            )
        )
        warm = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="app", steps=1)
        ).handles[0]
        while not gateway.handle(
            JobStatusRequest(auth_token=token, job_id=warm.job_id)
        ).done:
            pass
        latencies = []
        wall_start = time.perf_counter()
        _drive(gateway, token, "app", rows, labels, n_cycles, latencies)
        wall = time.perf_counter() - wall_start
        journaled = 0 if gateway.store is None else gateway.store.last_seq
    finally:
        if gateway.store is not None:
            gateway.store.close()
        if own_dir:
            shutil.rmtree(state_dir, ignore_errors=True)
    latencies = np.asarray(latencies)
    # ~4+ requests per cycle (feed, toggle, submit, >=1 poll).
    return [
        mode,
        n_cycles,
        journaled,
        round(n_cycles / wall, 1),
        round(1e3 * float(np.percentile(latencies, 50)), 3),
        round(1e3 * float(np.percentile(latencies, 99)), 3),
    ]


def run_comparison(n_cycles=30, seed=0):
    return [run_benchmark(mode, n_cycles, seed) for mode in MODES]


def render(rows):
    return ascii_table(
        [
            "journal", "cycles", "records",
            "cycles/sec", "p50 (ms)", "p99 (ms)",
        ],
        rows,
        title="Journaling overhead on the mutating path "
        "(feed+toggle+submit+poll cycles)",
    )


def test_persist_overhead(once):
    """Pytest entry point, sized like the other benchmarks."""
    rows = once(run_comparison, n_cycles=10)
    save_report("persist_overhead", render(rows))
    by_mode = {row[0]: row for row in rows}
    assert set(by_mode) == set(MODES)
    assert by_mode["off"][2] == 0  # no records without a store
    assert by_mode["fsync"][2] > 0
    assert all(row[3] > 0 for row in rows)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="10 cycles per mode"
    )
    args = parser.parse_args()
    n_cycles = 10 if args.quick else args.cycles
    rows = run_comparison(n_cycles=n_cycles, seed=args.seed)
    print(render(rows))


if __name__ == "__main__":
    main()
