"""Section 5.3.2 discussion: single-device vs dedicated-device.

ease.ml trains one model at a time on the whole GPU pool.  The
alternative gives each user a dedicated GPU.  Both spend the same
GPU-time; the single-device discipline returns models to (some) users
sooner and, per the paper, "achieves lower accumulated regret among
users than the multi-device alternative" on the DEEPLEARNING service.
"""

import numpy as np
from conftest import save_report

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.user_picking import HybridPicker
from repro.datasets import load_deeplearning
from repro.engine import ClusterOracle, GPUPool, TraceTrainer
from repro.engine.simulator import simulate_dedicated_devices
from repro.gp.covariance import empirical_model_covariance
from repro.utils.tables import ascii_table


def _shared_pool_loss(dataset, horizon, n_gpus):
    oracle = ClusterOracle(
        TraceTrainer(dataset, noise_std=0.01, seed=0),
        GPUPool(n_gpus, scaling_efficiency=1.0),
    )
    cov = empirical_model_covariance(dataset.quality)
    pickers = [
        GPUCBPicker(
            cov,
            AlgorithmOneBeta(dataset.n_models),
            oracle.costs(i),
            noise=0.05,
        )
        for i in range(dataset.n_users)
    ]
    sched = MultiTenantScheduler(oracle, pickers, HybridPicker())
    sched.run(cost_budget=horizon)
    best = np.zeros(dataset.n_users)
    for record in sched.records:
        if record.cumulative_cost <= horizon:
            quality = dataset.quality[record.user, record.arm]
            best[record.user] = max(best[record.user], quality)
    return float(np.mean(dataset.best_qualities() - best))


def test_single_device_vs_dedicated(once):
    dataset = load_deeplearning(seed=0)
    n_gpus = dataset.n_users  # one GPU per user in the dedicated setup

    def run():
        rows = []
        for horizon in (0.5, 1.0, 2.0, 4.0):
            shared = _shared_pool_loss(dataset, horizon, n_gpus)
            dedicated = simulate_dedicated_devices(
                dataset, horizon=horizon, seed=0, noise_std=0.01
            ).average_accuracy_loss_at(
                horizon, dataset.best_qualities()
            )
            rows.append([horizon, shared, dedicated])
        return rows

    rows = once(run)
    save_report(
        "device_discipline",
        ascii_table(
            ["wall-clock horizon", "single-device loss",
             "dedicated-device loss"],
            rows,
            title="Section 5.3.2: device-discipline comparison "
            "(perfect scaling, equal GPU count)",
        ),
    )
    # At every horizon the shared pool is at least competitive; at the
    # earliest horizon it must win (it can finish *someone's* model
    # n times sooner).
    first = rows[0]
    assert first[1] <= first[2] + 0.02
    for _, shared, dedicated in rows:
        assert shared <= dedicated + 0.10
