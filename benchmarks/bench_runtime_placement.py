"""Placement policies under one recorded workload: makespan vs regret.

The same recorded arrival trace (Poisson job arrivals over the
DEEPLEARNING matrices) is replayed through the discrete-event runtime
under each placement discipline:

* ``single``    — the paper's whole-pool-per-job policy;
* ``dedicated`` — one GPU per user (the Section 5.3.2 alternative);
* ``partition`` — Dorm-style dynamic equal-share (arXiv:1704.06738).

The disciplines trade throughput for per-tenant latency: the shared
pool burns through the queue fastest (lowest makespan), dedicated
devices return *every* tenant something sooner under backlog (lowest
time-averaged regret), and dynamic partitioning sits between, paying
preemptions for its adaptivity.  Replaying the recorded trace twice
must reproduce the execution event log bit for bit.
"""

from conftest import save_report

from repro.datasets import load_deeplearning
from repro.engine import GPUPool
from repro.runtime import (
    ClusterRuntime,
    WorkloadGenerator,
    events_to_jsonl,
    make_placement,
    makespan,
    replay_trace,
    time_averaged_regret,
)
from repro.utils.tables import ascii_table

POLICIES = ("single", "dedicated", "partition")
N_JOBS = 60
N_GPUS = 8
ARRIVAL_RATE = 4.0


#: Checkpoint/restore costs charged per preemption (single-GPU work
#: units).  0 is the flattering "free preemption" baseline; the paid
#: variants expose what Dorm-style repartitioning actually trades.
PREEMPTION_OVERHEADS = (0.0, 0.05, 0.2)


def _run(trace, policy, overhead=0.0):
    runtime = ClusterRuntime(
        GPUPool(N_GPUS, scaling_efficiency=0.9),
        make_placement(policy),
        preemption_overhead=overhead,
    )
    replay_trace(trace, runtime)
    return runtime


def test_placement_policies_on_recorded_trace(once):
    dataset = load_deeplearning(seed=0)
    trace = WorkloadGenerator.from_dataset(
        dataset, arrival="poisson", rate=ARRIVAL_RATE, seed=0
    ).generate(N_JOBS)

    def run():
        rows = []
        for policy in POLICIES:
            # Only the partition policy preempts, so the overhead
            # dimension is swept for it alone.
            overheads = (
                PREEMPTION_OVERHEADS if policy == "partition" else (0.0,)
            )
            for overhead in overheads:
                runtime = _run(trace, policy, overhead)
                rows.append(
                    [
                        policy,
                        overhead,
                        len(runtime.finished_jobs()),
                        runtime.preemption_count,
                        makespan(runtime.log),
                        time_averaged_regret(
                            runtime.log, dataset.best_qualities()
                        ),
                    ]
                )
        return rows

    rows = once(run)
    save_report(
        "runtime_placement",
        ascii_table(
            ["placement", "overhead", "finished", "preemptions",
             "makespan", "time-avg regret"],
            rows,
            title=f"Runtime placement comparison ({N_JOBS} jobs, "
            f"{N_GPUS} GPUs, Poisson rate {ARRIVAL_RATE})",
            precision=4,
        ),
    )

    by_key = {(row[0], row[1]): row for row in rows}
    # Every discipline drains the same recorded workload.
    for row in rows:
        assert row[2] == N_JOBS
    # The three disciplines produce genuinely different schedules.
    free_rows = [row for row in rows if row[1] == 0.0]
    assert len({row[4] for row in free_rows}) == len(POLICIES)
    assert len({row[5] for row in free_rows}) == len(POLICIES)
    # Only the Dorm-style policy preempts; the other two are
    # run-to-completion by construction.
    assert by_key[("partition", 0.0)][3] > 0
    assert by_key[("single", 0.0)][3] == 0
    assert by_key[("dedicated", 0.0)][3] == 0
    # The shared pool's data-parallel speedup beats one-GPU-per-user
    # throughput on the same workload.
    assert by_key[("single", 0.0)][4] < by_key[("dedicated", 0.0)][4]
    # Charging checkpoint overhead can only slow the partition policy.
    paid = PREEMPTION_OVERHEADS[-1]
    assert by_key[("partition", paid)][4] >= by_key[("partition", 0.0)][4]


def test_trace_replay_is_bit_for_bit():
    dataset = load_deeplearning(seed=0)
    trace = WorkloadGenerator.from_dataset(
        dataset, arrival="poisson", rate=ARRIVAL_RATE, seed=0
    ).generate(N_JOBS)
    for policy in POLICIES:
        first = events_to_jsonl(_run(trace, policy).log)
        second = events_to_jsonl(_run(trace, policy).log)
        assert first == second
        assert first  # non-empty log
