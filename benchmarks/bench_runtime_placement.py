"""Placement policies under one recorded workload: makespan vs regret.

The same recorded arrival trace (Poisson job arrivals over the
DEEPLEARNING matrices) is replayed through the discrete-event runtime
under each placement discipline:

* ``single``    — the paper's whole-pool-per-job policy;
* ``dedicated`` — one GPU per user (the Section 5.3.2 alternative);
* ``partition`` — Dorm-style dynamic equal-share (arXiv:1704.06738).

The disciplines trade throughput for per-tenant latency: the shared
pool burns through the queue fastest (lowest makespan), dedicated
devices return *every* tenant something sooner under backlog (lowest
time-averaged regret), and dynamic partitioning sits between, paying
preemptions for its adaptivity.  Replaying the recorded trace twice
must reproduce the execution event log bit for bit.
"""

from conftest import save_report

from repro.datasets import load_deeplearning
from repro.engine import GPUPool
from repro.runtime import (
    ClusterRuntime,
    WorkloadGenerator,
    events_to_jsonl,
    make_placement,
    makespan,
    replay_trace,
    time_averaged_regret,
)
from repro.utils.tables import ascii_table

POLICIES = ("single", "dedicated", "partition")
N_JOBS = 60
N_GPUS = 8
ARRIVAL_RATE = 4.0


def _run(trace, policy):
    runtime = ClusterRuntime(
        GPUPool(N_GPUS, scaling_efficiency=0.9), make_placement(policy)
    )
    replay_trace(trace, runtime)
    return runtime


def test_placement_policies_on_recorded_trace(once):
    dataset = load_deeplearning(seed=0)
    trace = WorkloadGenerator.from_dataset(
        dataset, arrival="poisson", rate=ARRIVAL_RATE, seed=0
    ).generate(N_JOBS)

    def run():
        rows = []
        for policy in POLICIES:
            runtime = _run(trace, policy)
            rows.append(
                [
                    policy,
                    len(runtime.finished_jobs()),
                    runtime.preemption_count,
                    makespan(runtime.log),
                    time_averaged_regret(
                        runtime.log, dataset.best_qualities()
                    ),
                ]
            )
        return rows

    rows = once(run)
    save_report(
        "runtime_placement",
        ascii_table(
            ["placement", "finished", "preemptions", "makespan",
             "time-avg regret"],
            rows,
            title=f"Runtime placement comparison ({N_JOBS} jobs, "
            f"{N_GPUS} GPUs, Poisson rate {ARRIVAL_RATE})",
            precision=4,
        ),
    )

    by_policy = {row[0]: row for row in rows}
    # Every discipline drains the same recorded workload.
    for row in rows:
        assert row[1] == N_JOBS
    # The three disciplines produce genuinely different schedules.
    makespans = [row[3] for row in rows]
    regrets = [row[4] for row in rows]
    assert len(set(makespans)) == len(POLICIES)
    assert len(set(regrets)) == len(POLICIES)
    # Only the Dorm-style policy preempts; the other two are
    # run-to-completion by construction.
    assert by_policy["partition"][2] > 0
    assert by_policy["single"][2] == 0
    assert by_policy["dedicated"][2] == 0
    # The shared pool's data-parallel speedup beats one-GPU-per-user
    # throughput on the same workload.
    assert by_policy["single"][3] < by_policy["dedicated"][3]


def test_trace_replay_is_bit_for_bit():
    dataset = load_deeplearning(seed=0)
    trace = WorkloadGenerator.from_dataset(
        dataset, arrival="poisson", rate=ARRIVAL_RATE, seed=0
    ).generate(N_JOBS)
    for policy in POLICIES:
        first = events_to_jsonl(_run(trace, policy).log)
        second = events_to_jsonl(_run(trace, policy).log)
        assert first == second
        assert first  # non-empty log
