"""Figure 13: lesion study — disabling cost-awareness.

ease.ml vs ease.ml with the cost term removed from GP-UCB (c ≡ 1),
on DEEPLEARNING with real costs.  Paper: "considering the execution
cost of the model significantly improves the performance" — fast
models exist whose quality is only slightly below the best slow model.
"""

from conftest import bench_trials, save_report

from repro.experiments.figures import figure13
from repro.experiments.metrics import area_under_loss


def test_fig13_cost_awareness_lesion(once):
    report = once(figure13, n_trials=bench_trials(15), seed=0)
    save_report("fig13_cost_lesion", report.render())

    result = report.results["DEEPLEARNING"]
    grid = result.grid
    with_cost = result.strategies["easeml"]
    without_cost = result.strategies["easeml_no_cost"]

    auc_with = area_under_loss(grid, with_cost.mean_curve)
    auc_without = area_under_loss(grid, without_cost.mean_curve)

    # Cost-awareness must help overall...
    assert auc_with < auc_without, (
        f"cost-aware AUC {auc_with:.4f} should beat "
        f"cost-oblivious {auc_without:.4f}"
    )
    # ...and visibly so at mid-budget (where the cost-oblivious variant
    # is still stuck waiting for expensive models to finish).
    mid = int(0.5 * (len(grid) - 1))
    assert (
        with_cost.mean_curve[mid] <= without_cost.mean_curve[mid] + 0.01
    )
