"""Ablation of this repository's extension: the informed GP prior mean.

The paper's GPs are zero-mean (Appendix A convention).  We additionally
support a prior mean equal to each model's average quality on the
training users — the transferable half of the multi-task signal.  This
bench quantifies what that extension buys on DEEPLEARNING and verifies
the paper-faithful zero-mean configuration still beats the heuristics.
"""

from conftest import bench_trials, save_report

from repro.datasets import load_deeplearning
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.metrics import area_under_loss
from repro.utils.tables import ascii_table


def test_prior_mean_ablation(once):
    dataset = load_deeplearning(seed=0)
    trials = bench_trials(10)

    def run():
        out = {}
        for label, use_mean in (("informed", True), ("zero-mean", False)):
            config = ExperimentConfig(
                n_trials=trials, budget_fraction=0.10, cost_aware=True,
                noise_std=0.02, n_checkpoints=41, base_seed=0,
                use_prior_mean=use_mean,
            )
            out[label] = run_experiment(
                dataset, ["easeml", "most_cited"], config
            )
        return out

    results = once(run)

    rows = []
    for label, result in results.items():
        grid = result.grid
        for strategy, sr in result.strategies.items():
            rows.append(
                [
                    label,
                    strategy,
                    area_under_loss(grid, sr.mean_curve),
                    sr.final_mean_loss,
                ]
            )
    save_report(
        "ablation_prior_mean",
        ascii_table(
            ["prior", "strategy", "AUC(mean loss)", "final loss"],
            rows,
            title="Ablation: informed vs zero GP prior mean",
        ),
    )

    # Paper-faithful zero-mean ease.ml still beats the heuristic.
    zero = results["zero-mean"]
    auc_easeml = area_under_loss(
        zero.grid, zero.strategies["easeml"].mean_curve
    )
    auc_cited = area_under_loss(
        zero.grid, zero.strategies["most_cited"].mean_curve
    )
    assert auc_easeml < auc_cited

    # The informed mean should not hurt (it typically helps).
    informed = results["informed"]
    auc_informed = area_under_loss(
        informed.grid, informed.strategies["easeml"].mean_curve
    )
    assert auc_informed <= auc_easeml * 1.05
