"""Inference data plane: coalesced vectorized predict vs the seed path.

Races four serving disciplines over the same in-process gateway under
64-way request concurrency:

* **per-row (seed)** — the pre-data-plane path, reconstructed here:
  every request takes the gateway lock, then transforms, predicts, and
  journals an INFER event *one row at a time*;
* **plane off** — vectorized predict (one ``(B, n)`` matrix, one
  ``predict``, one event) but no cross-request coalescing;
* **fixed window** — concurrent requests park for a constant window
  and flush as one batch;
* **adaptive** — the GACER-style controller widens/narrows the window
  and max batch from the observed flush p99 vs the tenant's SLO bound.

A second race sweeps the prediction cache across target hit rates
(0 / 50 / 90%) in adaptive mode.  Before any timed run the harness
asserts the new path's predictions are bit-identical to the seed
path's, row for row.

Run standalone (CI smoke uses ``--quick``, which also enforces the
PR's >=3x batched-vs-per-row floor and the p99-within-SLO bound)::

    PYTHONPATH=src python benchmarks/bench_infer_plane.py --quick

or under pytest like the figure benchmarks::

    cd benchmarks && PYTHONPATH=../src python -m pytest \
        bench_infer_plane.py -q
"""

import argparse
import threading
import time

import numpy as np

from conftest import save_report

from repro.engine.events import EventKind
from repro.infer import InferPlaneConfig
from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.obs import MetricsRegistry
from repro.service import ServiceGateway
from repro.service.api import (
    FeedRequest,
    InferRequest,
    JobStatusRequest,
    RegisterAppRequest,
    SubmitTrainingRequest,
)
from repro.utils.tables import ascii_table

PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
ZOO = ["naive-bayes", "ridge", "tree-d4"]
APP = "bench-app"
#: The PR's acceptance floor: adaptive coalescing vs the seed path.
SPEEDUP_FLOOR = 3.0


def _build_gateway(seed):
    """Gateway + one trained app; returns (gateway, token, app)."""
    gateway = ServiceGateway(
        placement="partition",
        n_gpus=4,
        seed=seed,
        zoo=default_zoo().subset(ZOO),
        metrics=MetricsRegistry(),
    )
    token = gateway.create_tenant("bench")
    gateway.handle(
        RegisterAppRequest(auth_token=token, app=APP, program=PROGRAM)
    )
    X, y = make_task(TaskSpec("moons", 120, 0.3, seed=seed))
    gateway.handle(FeedRequest(
        auth_token=token,
        app=APP,
        inputs=tuple(tuple(map(float, row)) for row in X),
        outputs=tuple(int(v) for v in y),
    ))
    handles = gateway.handle(SubmitTrainingRequest(
        auth_token=token, app=APP, steps=3
    )).handles
    for handle in handles:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status = gateway.handle(JobStatusRequest(
                auth_token=token, job_id=handle.job_id, wait=10.0
            ))
            if status.done:
                break
        else:
            raise RuntimeError("training did not finish in time")
    tenant = gateway._tenants[token]
    app = gateway._get_app(tenant, APP)
    return gateway, token, app


def _legacy_per_row(gateway, app, X):
    """The seed serving path, reconstructed for the race.

    One gateway-lock hold per request, then per row: a ``(1, n)``
    transform, a single-row ``predict``, and one INFER event appended
    to the journal — B predicts and B events for a B-row request,
    exactly the per-row loop the vectorized path replaced.
    """
    server = gateway.server
    out = np.empty(len(X), dtype=np.int64)
    with gateway._lock:
        for i, row in enumerate(X):
            x = np.asarray(row, dtype=float).ravel()[None, :]
            if app._best_transform is not None:
                x = app._best_transform(x)
            out[i] = int(app._best_estimator.predict(x)[0])
            server.log.append(
                server.clock.now, EventKind.INFER, app=app.name
            )
    return out


def _assert_parity(gateway, token, app, probes):
    """New path must be bit-identical to the seed path, row for row."""
    legacy = _legacy_per_row(gateway, app, probes)
    response = gateway.handle(InferRequest(
        auth_token=token,
        app=APP,
        rows=tuple(tuple(map(float, row)) for row in probes),
    ))
    fresh = np.asarray(response.predictions, dtype=np.int64)
    assert np.array_equal(legacy, fresh), (
        "vectorized predictions diverged from the seed per-row path: "
        f"{legacy.tolist()} != {fresh.tolist()}"
    )


def _probe_pool(seed, size=512):
    """Distinct finite probe rows (the app's 2-feature input space)."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=(size, 2)) * 2.0


def _request_stream(pool, n_requests, rows_per_request, hit_fraction,
                    seed):
    """Per-request row matrices with ``hit_fraction`` repeated rows.

    Repeats draw from a small warmed subset of the pool, fresh rows
    walk the rest — so a 0.9 stream really does re-ask mostly
    already-answered rows, the prediction cache's target workload.
    """
    rng = np.random.default_rng(seed)
    warm = pool[:32]
    fresh_at = 32
    stream = []
    for _ in range(n_requests):
        rows = []
        for _ in range(rows_per_request):
            if hit_fraction > 0 and rng.random() < hit_fraction:
                rows.append(warm[rng.integers(len(warm))])
            else:
                rows.append(pool[fresh_at % len(pool)])
                fresh_at += 1
        stream.append(np.asarray(rows))
    return stream


def _drive(n_threads, per_thread_streams, fire):
    """Race ``fire(X)`` across threads; returns (wall, latencies)."""
    barrier = threading.Barrier(n_threads + 1)
    per_thread = [[] for _ in range(n_threads)]

    def worker(stream, latencies):
        barrier.wait()
        for X in stream:
            start = time.perf_counter()
            fire(X)
            latencies.append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=worker, args=(stream, latencies))
        for stream, latencies in zip(per_thread_streams, per_thread)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return wall, np.array([v for b in per_thread for v in b])


def _run_mode(gateway, token, app, mode, n_threads, n_requests,
              rows_per_request, seed, hit_fraction=0.0, config=None):
    """One timed lane; returns dict(rows/s, p50 ms, p99 ms, ...)."""
    pool = _probe_pool(seed + 17)
    streams = [
        _request_stream(pool, n_requests, rows_per_request,
                        hit_fraction, seed + 1000 + i)
        for i in range(n_threads)
    ]
    if mode == "per-row (seed)":
        def fire(X):
            _legacy_per_row(gateway, app, X)
    else:
        if config is None:
            # The race lanes disable the cache so repeated probes do
            # not hand the plane a win the seed path cannot have; the
            # cache sweep passes its own config instead.
            config = {
                "plane off": InferPlaneConfig(
                    mode="off", cache_rows=0
                ),
                "fixed 2ms": InferPlaneConfig(
                    mode="fixed", window=0.002, cache_rows=0
                ),
                "adaptive": InferPlaneConfig(
                    mode="adaptive", cache_rows=0
                ),
            }[mode]
        gateway.configure_infer_plane(config)

        def fire(X):
            gateway.handle(InferRequest(
                auth_token=token,
                app=APP,
                rows=tuple(tuple(map(float, row)) for row in X),
            ))

    hits0 = _cache_hits(gateway)
    wall, latencies = _drive(n_threads, streams, fire)
    total_rows = n_threads * n_requests * rows_per_request
    return {
        "mode": mode,
        "rows/s": round(total_rows / wall, 1),
        "req/s": round(n_threads * n_requests / wall, 1),
        "p50 (ms)": round(1e3 * float(np.percentile(latencies, 50)), 2),
        "p99 (ms)": round(1e3 * float(np.percentile(latencies, 99)), 2),
        "cache hits": _cache_hits(gateway) - hits0,
        "total rows": total_rows,
    }


def _cache_hits(gateway):
    family = gateway.metrics.get("infer_cache_hits_total")
    if family is None:
        return 0
    return int(sum(
        child.value for _, child in family.children()
    ))


def run_race(n_threads=64, n_requests=16, rows_per_request=8, seed=0):
    """The headline race: four disciplines, same workload, same app."""
    gateway, token, app = _build_gateway(seed)
    _assert_parity(gateway, token, app, _probe_pool(seed + 5, size=16))
    rows = []
    results = {}
    for mode in ("per-row (seed)", "plane off", "fixed 2ms", "adaptive"):
        result = _run_mode(
            gateway, token, app, mode, n_threads, n_requests,
            rows_per_request, seed,
        )
        results[mode] = result
    baseline = results["per-row (seed)"]["rows/s"]
    for mode, result in results.items():
        rows.append([
            mode,
            result["rows/s"],
            result["req/s"],
            result["p50 (ms)"],
            result["p99 (ms)"],
            f"{result['rows/s'] / baseline:.2f}x",
        ])
    return rows, results


def run_cache_sweep(n_threads=16, n_requests=16, rows_per_request=8,
                    seed=0):
    """Adaptive mode with the cache on, across target hit rates."""
    gateway, token, app = _build_gateway(seed)
    rows = []
    for hit_fraction in (0.0, 0.5, 0.9):
        result = _run_mode(
            gateway, token, app, "adaptive-cached", n_threads,
            n_requests, rows_per_request, seed,
            hit_fraction=hit_fraction,
            config=InferPlaneConfig(mode="adaptive", cache_rows=4096),
        )
        measured = result["cache hits"] / result["total rows"]
        rows.append([
            f"{int(hit_fraction * 100)}%",
            result["rows/s"],
            result["p50 (ms)"],
            result["p99 (ms)"],
            f"{100.0 * measured:.1f}%",
        ])
    return rows


def render_race(rows, n_threads, rows_per_request):
    return ascii_table(
        ["discipline", "rows/s", "req/s", "p50 (ms)", "p99 (ms)",
         "speedup"],
        rows,
        title=f"Infer serving disciplines ({n_threads} concurrent "
        f"requests x {rows_per_request} rows; speedup vs per-row seed "
        "path)",
    )


def render_cache_sweep(rows, n_threads, rows_per_request):
    return ascii_table(
        ["target hits", "rows/s", "p50 (ms)", "p99 (ms)",
         "measured hits"],
        rows,
        title=f"Prediction cache sweep (adaptive mode, {n_threads} "
        f"concurrent requests x {rows_per_request} rows)",
    )


def test_infer_plane(once):
    """Pytest entry point, sized like the other figure benchmarks."""
    race, results = once(
        run_race, n_threads=16, n_requests=4, rows_per_request=4
    )
    save_report("infer_plane", render_race(race, 16, 4))
    assert results["adaptive"]["rows/s"] > 0
    assert results["per-row (seed)"]["rows/s"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threads", type=int, default=64,
                        help="concurrent infer requests in flight")
    parser.add_argument("--requests", type=int, default=16,
                        help="measured requests per thread")
    parser.add_argument("--rows", type=int, default=8,
                        help="rows per infer request")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: one race + one sweep, then enforce the "
        f">= {SPEEDUP_FLOOR:g}x adaptive-vs-seed floor and the "
        "p99-within-SLO bound (exit 1 on miss)",
    )
    args = parser.parse_args(argv)
    race, results = run_race(
        n_threads=args.threads, n_requests=args.requests,
        rows_per_request=args.rows, seed=args.seed,
    )
    sweep = run_cache_sweep(
        n_threads=min(args.threads, 16), n_requests=args.requests,
        rows_per_request=args.rows, seed=args.seed,
    )
    report = (
        render_race(race, args.threads, args.rows)
        + "\n\n"
        + render_cache_sweep(sweep, min(args.threads, 16), args.rows)
    )
    save_report("infer_plane", report)
    if args.quick:
        speedup = (
            results["adaptive"]["rows/s"]
            / results["per-row (seed)"]["rows/s"]
        )
        p99_ms = results["adaptive"]["p99 (ms)"]
        # The default SLO objective the adaptive controller tunes
        # against (repro.obs.slo DEFAULT_OBJECTIVE).
        bound_ms = 1000.0
        print(
            f"\nquick gate: adaptive speedup {speedup:.2f}x "
            f"(floor {SPEEDUP_FLOOR:g}x), adaptive p99 {p99_ms:.2f}ms "
            f"(bound {bound_ms:g}ms)"
        )
        if speedup < SPEEDUP_FLOOR:
            print("FAIL: batched speedup below the acceptance floor")
            return 1
        if p99_ms > bound_ms:
            print("FAIL: adaptive p99 above the SLO bound")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
