"""Figure 14: impact of the kernel's training-set size.

ease.ml computes the model kernel from the performance of models on
*training users'* datasets.  The paper sweeps the fraction of training
data available to the kernel (10% / 50% / 100%): more data helps, with
diminishing returns (50% ≈ 100%).
"""

from conftest import bench_trials, save_report

from repro.experiments.figures import figure14


def test_fig14_training_set_size(once):
    report = once(
        figure14, n_trials=bench_trials(12), seed=0,
        fractions=(0.1, 0.5, 1.0),
    )
    save_report("fig14_training_size", report.render())

    loss10 = report.headline["final loss (train=10%)"]
    loss50 = report.headline["final loss (train=50%)"]
    loss100 = report.headline["final loss (train=100%)"]

    # More kernel training data helps (10% worst), with slack for the
    # small-trial noise floor.
    assert loss100 <= loss10 + 0.01
    assert loss50 <= loss10 + 0.01

    # Diminishing returns: 50% is already close to 100% (the paper's
    # explicit observation).
    assert abs(loss50 - loss100) <= max(0.02, 0.5 * (loss10 - loss100))
