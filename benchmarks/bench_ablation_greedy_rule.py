"""Ablation of Algorithm 2's line-8 rule.

The theorem holds for *any* rule choosing among the candidate set; the
paper uses max-gap ("the maximum gap between the largest upper
confidence bound and the best accuracy so far") and notes the optimal
practical rule is an open question.  This bench compares the three
implemented rules under the Figure-9 protocol.
"""

from conftest import bench_trials, save_report

from repro.core.user_picking import GreedyPicker
from repro.datasets import load_deeplearning
from repro.experiments import ExperimentConfig
from repro.experiments.harness import run_experiment
from repro.experiments.metrics import area_under_loss
from repro.utils.tables import ascii_table

import repro.experiments.protocol as protocol


def test_greedy_line8_rules(once):
    dataset = load_deeplearning(seed=0)
    trials = bench_trials(10)

    def run_rule(rule):
        # Patch the greedy factory to use the requested line-8 rule;
        # everything else (splits, priors, noise seeds) is identical.
        original = protocol.make_user_picker

        def patched(strategy, config, seed=None):
            if strategy == "greedy":
                return GreedyPicker(rule, seed=seed)
            return original(strategy, config, seed)

        protocol.make_user_picker = patched
        try:
            config = ExperimentConfig(
                n_trials=trials, budget_fraction=0.10, cost_aware=True,
                noise_std=0.02, n_checkpoints=41, base_seed=0,
            )
            return run_experiment(dataset, ["greedy"], config)
        finally:
            protocol.make_user_picker = original

    def run_all():
        return {
            rule: run_rule(rule)
            for rule in ("max_gap", "max_potential", "random")
        }

    results = once(run_all)

    rows = []
    for rule, result in results.items():
        strategy = result.strategies["greedy"]
        rows.append(
            [
                rule,
                area_under_loss(result.grid, strategy.mean_curve),
                strategy.final_mean_loss,
            ]
        )
    save_report(
        "ablation_greedy_rule",
        ascii_table(
            ["line-8 rule", "AUC(mean loss)", "final loss"],
            rows,
            title="Algorithm 2 line-8 rule ablation (DEEPLEARNING, "
            "cost-aware)",
        ),
    )

    # All three rules share the regret bound, so none may collapse;
    # the paper expects the informed rules to edge out random.
    aucs = {rule: auc for rule, auc, _ in rows}
    assert max(aucs.values()) <= 2.0 * min(aucs.values()) + 1e-6
    assert min(aucs["max_gap"], aucs["max_potential"]) <= (
        aucs["random"] * 1.15
    )
