"""Scale-out serving plane: read scaling, replica lag, promotion time.

Spins up a real :class:`~repro.replica.ServingPlane` (writer + N
WAL-tailing read replicas, each its own OS process) per configuration
and measures the three numbers the scale-out design trades on:

* **read scaling** — aggregate read throughput (app-status / list-apps
  over HTTP) as replicas are added, against the single-writer
  baseline.  Replicas serve reads from their own follower state and
  never take the writer's lock, so the ceiling is CPU, not locking.
* **replica lag** — the staleness distribution (the ``X-Replica-Lag``
  header, in records) observed by a reader while the writer sustains
  a mutation load.  This is the bound ``--max-lag-records`` enforces.
* **promotion time** — SIGKILL the writer, stopwatch until the
  supervisor's promoted replica acknowledges a write.

Caveat for the recorded numbers: read scaling across replica
*processes* needs CPU cores to scale onto.  On a single-core host
(``nproc`` is printed in the report) the replicas time-share one core
and aggregate throughput stays roughly flat — the honest expectation
there is "no worse than baseline, plus isolation and failover", not a
speedup.  Run on a multi-core host to see the scaling curve the
design targets (2 replicas > 1.5x baseline).

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_replica_scaleout.py --quick
"""

import argparse
import os
import shutil
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from conftest import save_report

from repro.ml.data import TaskSpec, make_task
from repro.replica import ServingPlane, read_cluster
from repro.service.client import EaseMLClient
from repro.utils.tables import ascii_table

PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
GATEWAY_KWARGS = dict(
    placement="partition", n_gpus=4, min_examples=10, seed=0
)


def _start_plane(state_dir, replicas):
    plane = ServingPlane(
        state_dir,
        replicas=replicas,
        tenants=["bench"],
        sync="buffered",
        gateway_kwargs=dict(GATEWAY_KWARGS),
        heartbeat_interval=0.25,
    )
    plane.start()
    return plane


def _onboard(plane, app="bench-app", n=60):
    token = plane.tokens["bench"]
    writer = EaseMLClient(plane.writer_url, token)
    writer.register_app(app, PROGRAM)
    X, y = make_task(TaskSpec("moons", n, 0.3, seed=0))
    writer.feed(app, X.tolist(), [int(v) for v in y])
    # Wait for every replica to catch up before measuring.
    deadline = time.monotonic() + 60
    for url in plane.replica_urls():
        client = EaseMLClient(url, token)
        while app not in client.list_apps().apps:
            if time.monotonic() > deadline:
                raise RuntimeError(f"replica {url} never caught up")
            time.sleep(0.1)
        client.close()
    return token, writer, app


def _read_loop(url, token, app, n_requests, latencies):
    client = EaseMLClient(url, token)
    for i in range(n_requests):
        start = time.perf_counter()
        if i % 2:
            client.app_status(app)
        else:
            client.list_apps()
        latencies.append(time.perf_counter() - start)
    client.close()


def run_read_scaling(replica_counts, n_threads, n_requests, state_root):
    """Aggregate read throughput per replica count; returns rows."""
    rows = []
    for count in replica_counts:
        plane = _start_plane(state_root / f"scale-{count}", count)
        try:
            token, writer, app = _onboard(plane)
            writer.close()
            targets = plane.replica_urls() or [plane.writer_url]
            buckets = [[] for _ in range(n_threads)]
            threads = [
                threading.Thread(
                    target=_read_loop,
                    args=(targets[i % len(targets)], token, app,
                          n_requests, buckets[i]),
                )
                for i in range(n_threads)
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start
        finally:
            plane.stop()
        latencies = np.array([v for b in buckets for v in b])
        rows.append([
            count,
            int(latencies.size),
            round(latencies.size / wall, 1),
            round(1e3 * float(np.percentile(latencies, 50)), 2),
            round(1e3 * float(np.percentile(latencies, 99)), 2),
        ])
    return rows


def run_lag_under_write_load(n_mutations, state_root):
    """Lag (records) seen by a reader while the writer mutates."""
    plane = _start_plane(state_root / "lag", 1)
    lags = []
    try:
        token, writer, app = _onboard(plane)
        replica = EaseMLClient(plane.replica_urls()[0], token)
        X, y = make_task(TaskSpec("moons", 40, 0.3, seed=1))
        stop = threading.Event()

        def sample():
            while not stop.is_set():
                replica.list_apps()
                if replica.last_replica_lag is not None:
                    lags.append(replica.last_replica_lag)

        sampler = threading.Thread(target=sample)
        sampler.start()
        batch = [list(map(float, row)) for row in X[:5]]
        labels = [int(v) for v in y[:5]]
        for _ in range(n_mutations):
            writer.feed(app, batch, labels)
        stop.set()
        sampler.join(timeout=10)
        writer.close()
        replica.close()
    finally:
        plane.stop()
    lags_arr = np.array(lags or [0])
    return [
        ["lag samples", int(lags_arr.size)],
        ["lag p50 (records)", int(np.percentile(lags_arr, 50))],
        ["lag p99 (records)", int(np.percentile(lags_arr, 99))],
        ["lag max (records)", int(lags_arr.max())],
    ]


def run_promotion_time(state_root):
    """SIGKILL the writer; stopwatch to the first post-failover write."""
    plane = _start_plane(state_root / "promote", 1)
    try:
        token, writer, app = _onboard(plane)
        writer.close()
        cluster = read_cluster(plane.state_dir)
        start = time.perf_counter()
        os.kill(cluster["writer_pid"], signal.SIGKILL)
        deadline = time.monotonic() + 120
        while plane.promotions < 1:
            if time.monotonic() > deadline:
                raise RuntimeError("promotion never happened")
            time.sleep(0.05)
        detected = time.perf_counter() - start
        promoted = EaseMLClient(plane.writer_url, token)
        promoted.register_app("post-failover", PROGRAM)
        to_write = time.perf_counter() - start
        promoted.close()
    finally:
        plane.stop()
    return [
        ["kill to promotion (s)", round(detected, 2)],
        ["kill to first write (s)", round(to_write, 2)],
    ]


def render(scaling, lag, promotion, *, n_threads):
    baseline = scaling[0][2]
    scale_rows = [
        row + [round(row[2] / baseline, 2) if baseline else "-"]
        for row in scaling
    ]
    return (
        ascii_table(
            ["replicas", "requests", "reads/sec", "p50 (ms)",
             "p99 (ms)", "vs baseline"],
            scale_rows,
            title=f"Read scaling ({n_threads} reader threads; "
            f"nproc={os.cpu_count()}; replicas time-share cores — "
            f"see module docstring)",
        )
        + "\n\n"
        + ascii_table(
            ["metric", "value"], lag,
            title="Replica lag under sustained writer mutations "
            "(X-Replica-Lag, records)",
        )
        + "\n\n"
        + ascii_table(
            ["metric", "value"], promotion,
            title="Writer SIGKILL to replica promotion",
        )
    )


def test_replica_scaleout(once, tmp_path):
    """Pytest entry point: one small plane, all three measurements."""
    scaling = once(
        run_read_scaling, [0, 1], 2, 20, tmp_path / "scale"
    )
    lag = run_lag_under_write_load(5, tmp_path / "lag")
    promotion = run_promotion_time(tmp_path / "promote")
    save_report(
        "replica_scaleout",
        render(scaling, lag, promotion, n_threads=2),
    )
    assert all(row[2] > 0 for row in scaling)
    assert dict(promotion)["kill to first write (s)"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, nargs="+",
                        default=[0, 1, 2, 4],
                        help="replica counts for the scaling curve")
    parser.add_argument("--threads", type=int, default=4,
                        help="concurrent reader threads")
    parser.add_argument("--requests", type=int, default=200,
                        help="reads per thread")
    parser.add_argument("--mutations", type=int, default=30,
                        help="writer mutations during the lag probe")
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration ([0, 1, 2] x 2 x 40)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.replicas, args.threads = [0, 1, 2], 2
        args.requests, args.mutations = 40, 10
    state_root = Path(tempfile.mkdtemp(prefix="bench-replica-"))
    try:
        scaling = run_read_scaling(
            args.replicas, args.threads, args.requests, state_root
        )
        lag = run_lag_under_write_load(args.mutations, state_root)
        promotion = run_promotion_time(state_root)
    finally:
        shutil.rmtree(state_root, ignore_errors=True)
    save_report(
        "replica_scaleout",
        render(scaling, lag, promotion, n_threads=args.threads),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
