"""Figure 9: end-to-end DEEPLEARNING — ease.ml vs user heuristics.

Paper: ease.ml reaches the same average accuracy loss up to 9.8× faster
than the better of MOSTCITED / MOSTRECENT, and up to 3.1× on the
worst-case curve.  Protocol: 10 test users, budget = 10% of the total
runtime of all models, 50 repetitions (scaled down here; see conftest).
"""

import math

from conftest import bench_trials, save_report

from repro.experiments.figures import figure9


def test_fig09_end_to_end(once):
    report = once(figure9, n_trials=bench_trials(20), seed=0)
    save_report("fig09_end_to_end", report.render())

    result = report.results["DEEPLEARNING"]
    easeml = result.strategies["easeml"]
    cited = result.strategies["most_cited"]
    recent = result.strategies["most_recent"]

    # Shape claim (a): ease.ml dominates both heuristics on the
    # average-loss curve over the whole budget (allowing noise slack).
    assert easeml.final_mean_loss <= cited.final_mean_loss + 0.01
    assert easeml.final_mean_loss <= recent.final_mean_loss + 0.01

    # Shape claim (b): a clear time-to-quality speedup against the
    # citation heuristic (paper: up to 9.8x on its production trace;
    # the factor is trace-dependent — see EXPERIMENTS.md).
    speedup_cited = report.headline["avg speedup vs most_cited"]
    assert math.isnan(speedup_cited) or speedup_cited >= 1.25

    # Shape claim (c): the worst-case curve also improves (paper: 3.1x).
    worst = report.headline["worst-case speedup vs most_cited"]
    assert math.isnan(worst) or worst >= 1.1

    # Mid-budget gap: the heuristics waste early budget on expensive /
    # mediocre models, so ease.ml is clearly ahead at 50% of budget.
    grid = result.grid
    mid = int(0.5 * (len(grid) - 1))
    assert easeml.mean_curve[mid] <= cited.mean_curve[mid]
