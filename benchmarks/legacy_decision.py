"""Frozen pre-vectorization decision-path implementations.

These are the seed's `FiniteArmGP` / GP-UCB scoring / GREEDY / HYBRID
code paths exactly as they existed before the vectorized hot path
landed: the Python-loop forward substitution with `vstack`/`append`
reallocation per observation, the non-memoized score vector, and the
per-pick list comprehensions over every tenant.

`bench_decision_path.py` times the new stack against this baseline and
`tests/core/test_decision_parity.py` asserts both produce bit-identical
pick traces.  Do not "fix" or optimise anything here — the whole point
of this module is to stay byte-faithful to the slow implementation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np
from scipy.linalg import solve_triangular

from repro.core.model_picking import GPUCBPicker, Selection
from repro.core.ucb import GPUCB
from repro.core.user_picking import UserPicker
from repro.utils.rng import RandomState
from repro.utils.validation import check_matrix, check_positive


class LegacyFiniteArmGP:
    """Seed incremental GP: row-list Cholesky, Python forward solve."""

    def __init__(
        self,
        prior_cov: np.ndarray,
        prior_mean: Optional[np.ndarray] = None,
        *,
        noise: float = 0.1,
        jitter: float = 1e-10,
    ) -> None:
        self._cov = check_matrix(prior_cov, "prior_cov", square=True)
        self._n_arms = self._cov.shape[0]
        if prior_mean is None:
            self._prior_mean = np.zeros(self._n_arms)
        else:
            self._prior_mean = np.asarray(prior_mean, dtype=float)
        self.noise = check_positive(noise, "noise")
        self.jitter = check_positive(jitter, "jitter")

        self._obs_arms: List[int] = []
        self._obs_y: List[float] = []
        self._L_rows: List[np.ndarray] = []
        self._V = np.empty((0, self._n_arms))
        self._z = np.empty(0)
        self._posterior_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def n_arms(self) -> int:
        return self._n_arms

    @property
    def n_observations(self) -> int:
        return len(self._obs_y)

    def _check_arm(self, arm: int) -> int:
        arm = int(arm)
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        return arm

    def update(self, arm: int, reward: float) -> None:
        """Seed update: O(t²) scalar forward substitution + realloc."""
        arm = self._check_arm(arm)
        reward = float(reward)
        if not np.isfinite(reward):
            raise ValueError(f"reward must be finite, got {reward}")

        t = self.n_observations
        b = self._cov[self._obs_arms, arm] if t else np.empty(0)
        d = self._cov[arm, arm] + self.noise**2

        w = np.empty(t)
        for i, row in enumerate(self._L_rows):
            w[i] = (b[i] - row[:i] @ w[:i]) / row[i]

        pivot_sq = d - w @ w
        pivot = math.sqrt(max(pivot_sq, self.jitter))

        new_row = np.empty(t + 1)
        new_row[:t] = w
        new_row[t] = pivot
        self._L_rows.append(new_row)

        v_new = (self._cov[arm, :] - w @ self._V) / pivot
        self._V = np.vstack([self._V, v_new])

        resid = reward - self._prior_mean[arm]
        z_new = (resid - w @ self._z) / pivot
        self._z = np.append(self._z, z_new)

        self._obs_arms.append(arm)
        self._obs_y.append(reward)
        self._posterior_cache = None

    def posterior(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._posterior_cache is None:
            mean = self._prior_mean + self._V.T @ self._z
            variance = np.diag(self._cov) - np.einsum(
                "tk,tk->k", self._V, self._V
            )
            np.maximum(variance, 0.0, out=variance)
            self._posterior_cache = (mean, variance)
        mean, variance = self._posterior_cache
        return mean.copy(), variance.copy()

    def posterior_mean(self, arm: Optional[int] = None):
        mean, _ = self.posterior()
        if arm is None:
            return mean
        return float(mean[self._check_arm(arm)])

    def posterior_variance(self, arm: Optional[int] = None):
        _, variance = self.posterior()
        if arm is None:
            return variance
        return float(variance[self._check_arm(arm)])

    def posterior_std(self, arm: Optional[int] = None):
        return np.sqrt(self.posterior_variance(arm))

    @classmethod
    def from_history(
        cls,
        prior_cov: np.ndarray,
        arms,
        rewards,
        *,
        noise: float = 0.1,
        jitter: float = 1e-10,
    ) -> "LegacyFiniteArmGP":
        """Block-build the seed's internal state from a history (the
        seed `refit()` construction) — warm-state injection for the
        benchmark without paying t O(t²) Python updates."""
        gp = cls(prior_cov, noise=noise, jitter=jitter)
        arms = [int(a) for a in arms]
        y = np.asarray(rewards, dtype=float)
        t = len(arms)
        if t:
            gram = gp._cov[np.ix_(arms, arms)] + gp.noise**2 * np.eye(t)
            L = np.linalg.cholesky(gram + gp.jitter * np.eye(t))
            gp._L_rows = [L[i, : i + 1].copy() for i in range(t)]
            gp._V = solve_triangular(L, gp._cov[arms, :], lower=True)
            gp._z = solve_triangular(
                L, y - gp._prior_mean[arms], lower=True
            )
            gp._obs_arms = arms
            gp._obs_y = list(y)
        return gp


class LegacyGPUCB(GPUCB):
    """Seed scoring: recompute the score vector on every call."""

    def ucb_scores(self, t: Optional[int] = None) -> np.ndarray:
        t = self.t_next if t is None else int(t)
        beta_t = self.beta(t)
        mean, variance = self.gp.posterior()
        return mean + np.sqrt(beta_t / self.costs) * np.sqrt(variance)


class LegacyGPUCBPicker(GPUCBPicker):
    """Seed per-tenant picker: three posterior evaluations per round."""

    def __init__(
        self,
        prior_cov: np.ndarray,
        beta,
        costs=None,
        *,
        noise: float = 0.1,
        prior_mean=None,
        seed=None,
    ) -> None:
        gp = LegacyFiniteArmGP(prior_cov, prior_mean, noise=noise)
        self._ucb = LegacyGPUCB(gp, beta, costs, seed=seed)

    def select(self) -> Selection:
        scores = self._ucb.ucb_scores()
        arm = int(np.argmax(scores))
        mean = self._ucb.gp.posterior_mean(arm)
        std = float(self._ucb.gp.posterior_std(arm))
        return Selection(arm, float(scores[arm]), float(mean), std)


class LegacyGreedyPicker(UserPicker):
    """Seed GREEDY: full-tenant warm-up scan + list comprehensions."""

    _RULES = ("max_gap", "max_potential", "random")

    def __init__(self, rule: str = "max_gap", *, seed=None) -> None:
        if rule not in self._RULES:
            raise ValueError(f"rule must be one of {self._RULES}, got {rule!r}")
        self.rule = rule
        self._rng = RandomState(seed)
        self.last_candidate_set = frozenset()

    def candidate_set(self, scheduler) -> List[int]:
        ids = scheduler.active_ids()
        potentials = np.array(
            [t.sigma_tilde for t in scheduler.tenants]
        )
        finite = potentials[np.isfinite(potentials)]
        if finite.size == 0:
            return ids
        threshold = float(np.mean(finite))
        candidates = [
            tenant_id
            for tenant_id, value in zip(ids, potentials)
            if not math.isfinite(value) or value >= threshold
        ]
        return candidates if candidates else ids

    def pick(self, scheduler) -> int:
        for tenant in scheduler.tenants:
            if tenant.serves == 0:
                return tenant.index

        candidates = self.candidate_set(scheduler)
        self.last_candidate_set = frozenset(candidates)
        if self.rule == "random":
            return int(self._rng.choice(candidates))
        if self.rule == "max_potential":
            scores = [scheduler.tenants[i].sigma_tilde for i in candidates]
        else:  # max_gap
            scores = [
                scheduler.tenants[i].potential_gap() for i in candidates
            ]
        best = int(np.argmax(scores))
        return candidates[best]


class LegacyHybridPicker(UserPicker):
    """Seed HYBRID: the seed GREEDY plus the freeze detector."""

    def __init__(
        self,
        s: int = 10,
        rule: str = "max_gap",
        *,
        allow_reentry: bool = False,
        progress_tolerance: float = 1e-12,
        seed=None,
    ) -> None:
        if s < 1:
            raise ValueError(f"s must be >= 1, got {s}")
        self.s = int(s)
        self.allow_reentry = bool(allow_reentry)
        self.progress_tolerance = float(progress_tolerance)
        self._greedy = LegacyGreedyPicker(rule, seed=seed)
        self._round_robin_counter = 0
        self.switched = False
        self.switch_step = None
        self._stall_rounds = 0
        self._last_candidates = None
        self._last_progress = -math.inf

    def reset(self, scheduler) -> None:
        self._round_robin_counter = 0
        self.switched = False
        self.switch_step = None
        self._stall_rounds = 0
        self._last_candidates = None
        self._last_progress = -math.inf

    def on_arrival(self, scheduler, tenant_id: int) -> None:
        self.switched = False
        self.switch_step = None
        self._stall_rounds = 0
        self._last_candidates = None

    def on_departure(self, scheduler, tenant_id: int) -> None:
        self._stall_rounds = 0
        self._last_candidates = None

    def pick(self, scheduler) -> int:
        if self.switched:
            ids = scheduler.active_ids()
            user = ids[self._round_robin_counter % len(ids)]
            self._round_robin_counter += 1
            return user
        return self._greedy.pick(scheduler)

    def notify(self, scheduler, record) -> None:
        progress = float(
            sum(t.best_observed for t in scheduler.tenants)
        )
        candidates = frozenset(self._greedy.candidate_set(scheduler))
        stalled = (
            self._last_candidates is not None
            and candidates == self._last_candidates
            and progress <= self._last_progress + self.progress_tolerance
        )
        if stalled:
            self._stall_rounds += 1
        else:
            self._stall_rounds = 0
            if self.switched and self.allow_reentry:
                self.switched = False
                self.switch_step = None
        self._last_candidates = candidates
        self._last_progress = max(self._last_progress, progress)
        if not self.switched and self._stall_rounds >= self.s:
            self.switched = True
            self.switch_step = record.t
