"""Figure 6(b): the GREEDY vs ROUNDROBIN illustration.

The paper's cartoon: greedy allocation drops the loss faster early on.
"""

from conftest import bench_trials, save_report

from repro.experiments.figures import figure6b


def test_fig06b_greedy_vs_roundrobin(once):
    report = once(figure6b, n_trials=bench_trials(8), seed=0)
    save_report("fig06b_greedy_vs_roundrobin", report.render())

    greedy_early = report.headline["greedy loss @20% budget"]
    rr_early = report.headline["round_robin loss @20% budget"]
    # Greedy's advantage is early (it reallocates serves toward users
    # with remaining potential); allow a small tolerance.
    assert greedy_early <= rr_early + 0.01
