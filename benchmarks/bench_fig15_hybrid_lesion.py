"""Figure 15: lesion study — the hybrid execution strategy.

GREEDY vs ROUNDROBIN vs HYBRID (ease.ml) on 179CLASSIFIER, cost
oblivious.  Paper: GREEDY wins early, ROUNDROBIN catches up after a
crossover (the GP estimate degrades near the optimum), and HYBRID —
greedy until the freezing stage, then round robin — is best overall.
"""

from conftest import bench_trials, save_report

from repro.experiments.figures import figure15
from repro.experiments.metrics import area_under_loss


def test_fig15_hybrid_lesion(once):
    report = once(figure15, n_trials=bench_trials(6), seed=0)
    save_report("fig15_hybrid_lesion", report.render())

    result = report.results["179CLASSIFIER"]
    grid = result.grid
    greedy = result.strategies["greedy"]
    rr = result.strategies["round_robin"]
    hybrid = result.strategies["easeml"]

    # Early phase: greedy at least matches round robin.
    early = int(0.1 * (len(grid) - 1))
    assert greedy.mean_curve[early] <= rr.mean_curve[early] + 0.01

    # Late phase: round robin is no longer behind greedy (the
    # crossover the hybrid strategy exists to fix).
    assert rr.final_mean_loss <= greedy.final_mean_loss + 0.005

    # Overall: hybrid is within noise of the best of both at every
    # phase, and at least matches the better baseline in AUC.
    auc = {
        "greedy": area_under_loss(grid, greedy.mean_curve),
        "round_robin": area_under_loss(grid, rr.mean_curve),
        "hybrid": area_under_loss(grid, hybrid.mean_curve),
    }
    assert auc["hybrid"] <= min(auc["greedy"], auc["round_robin"]) * 1.1
