"""Shared helpers for the benchmark suite.

Every figure benchmark

* runs its reproduction driver (``repro.experiments.figures``),
* prints the same series the paper's figure plots,
* writes the rendered report under ``benchmarks/reports/``, and
* asserts the figure's *shape* claims (who wins, qualitatively by how
  much) with generous margins — absolute numbers depend on the
  simulated traces (see DESIGN.md §5).

``REPRO_BENCH_TRIALS`` scales the number of repetitions (the paper uses
50; the default here keeps a full benchmark run in minutes).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


def bench_trials(default: int) -> int:
    """Number of repetitions, overridable via REPRO_BENCH_TRIALS."""
    value = os.environ.get("REPRO_BENCH_TRIALS")
    if value is None:
        return default
    return max(1, int(value))


def save_report(name: str, text: str) -> Path:
    """Persist a rendered figure report and echo it to stdout."""
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


@pytest.fixture
def once(benchmark):
    """Run a figure driver exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )

    return runner
