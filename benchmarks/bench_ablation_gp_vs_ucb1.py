"""Section 3.1's GP-UCB vs classic UCB1 comparison.

The paper: UCB1's ``C·K log T`` regret "depends seriously on ... the
number of arms" because it ignores arm correlations and must pull every
arm once; GP-UCB "can achieve a satisfactory average regret before all
arms get pulled".  We race both model pickers inside the same
multi-tenant protocol on 179CLASSIFIER (179 arms — warm-up alone costs
UCB1 most of the budget).
"""

from conftest import bench_trials, save_report

from repro.datasets import load_179classifier
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.metrics import area_under_loss
from repro.utils.tables import ascii_table


def test_gp_ucb_beats_ucb1_with_many_arms(once):
    dataset = load_179classifier(seed=0)
    config = ExperimentConfig(
        n_trials=bench_trials(5),
        budget_fraction=0.3,
        cost_aware=False,
        noise_std=0.05,
        base_seed=0,
    )

    result = once(
        run_experiment, dataset, ["round_robin", "ucb1"], config
    )

    grid = result.grid
    gp = result.strategies["round_robin"]  # GP-UCB model picking
    ucb1 = result.strategies["ucb1"]

    rows = []
    for frac in (0.1, 0.25, 0.5, 1.0):
        idx = int(frac * (len(grid) - 1))
        rows.append(
            [f"{frac:.0%}", gp.mean_curve[idx], ucb1.mean_curve[idx]]
        )
    save_report(
        "ablation_gp_vs_ucb1",
        ascii_table(
            ["budget", "GP-UCB loss", "UCB1 loss"],
            rows,
            title="GP-UCB vs UCB1 model picking (179 arms, "
            "round-robin users)",
        ),
    )

    # GP-UCB exploits model correlations: strictly better AUC, and
    # dramatically better before every arm could have been pulled.
    assert area_under_loss(grid, gp.mean_curve) < area_under_loss(
        grid, ucb1.mean_curve
    )
    quarter = int(0.25 * (len(grid) - 1))
    assert gp.mean_curve[quarter] < ucb1.mean_curve[quarter]
