"""Decision hot path: time per scheduler pick, vectorized vs seed stack.

Measures one GREEDY scheduler round (user pick → model pick → oracle →
absorb) across #tenants × #arms × history-length configurations, for

* the **current** stack — contiguous-buffer incremental GP with one
  LAPACK triangular solve per update, memoized UCB scores, and the
  scheduler's per-tenant decision cache; and
* the **seed** stack (``legacy_decision.py``) — Python-loop forward
  substitution with per-observation reallocation, non-memoized scores,
  and per-pick list comprehensions over every tenant.

Pick latency is also reported through the PR-6 metrics substrate: each
scheduler binds a :class:`repro.obs.MetricsRegistry` and the table
quotes the ``scheduler_pick_seconds`` histogram's p50/p95/p99.

A parity phase runs both stacks from scratch through identical GREEDY
and HYBRID scenarios and diffs the traces with
:func:`repro.runtime.first_divergence` — the speedup table only counts
if the decisions are bit-identical.

Run standalone (CI smoke uses ``--quick``, which asserts the ≥ 3×
floor at t=500, K=100, 64 tenants)::

    PYTHONPATH=src python benchmarks/bench_decision_path.py --quick

The full run also asserts the ≥ 10× acceptance target at the flagship
configuration and writes ``benchmarks/reports/decision_path.txt``.
"""

import argparse
import math
import time
from dataclasses import asdict

import numpy as np

from conftest import save_report
import legacy_decision

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import GreedyPicker, HybridPicker
from repro.obs.metrics import MetricsRegistry
from repro.runtime import first_divergence
from repro.utils.tables import ascii_table

FLAGSHIP = (64, 100, 500)  # tenants, arms, history — the acceptance config

#: Record fields exactly determined by the pick sequence (rewards and
#: costs come from the oracle rng, consumed in pick order) — these must
#: be bit-identical between the stacks.  ucb_value/sigma_tilde are
#: diagnostics whose last ulps depend on summation order and are
#: checked to 1e-9 instead.
DECISION_FIELDS = ("t", "user", "arm", "reward", "cost", "cumulative_cost")


def _rbf_cov(rng, k):
    X = rng.normal(size=(k, 3))
    sq = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
    return np.exp(-0.5 * sq / 1.5**2) + 1e-6 * np.eye(k)


def build_scheduler(*, legacy, n_tenants, n_arms, history, seed):
    """A GREEDY scheduler with ``history`` observations pre-injected
    into every tenant, plus its bound metrics registry."""
    rng = np.random.default_rng(seed)
    quality = rng.uniform(0.2, 0.95, size=(n_tenants, n_arms))
    cov = _rbf_cov(rng, n_arms)
    oracle = MatrixOracle(quality, noise_std=0.05, seed=seed + 1)

    picker_cls = (
        legacy_decision.LegacyGPUCBPicker if legacy else GPUCBPicker
    )
    user_picker = (
        legacy_decision.LegacyGreedyPicker() if legacy else GreedyPicker()
    )
    pickers = [
        picker_cls(cov, AlgorithmOneBeta(n_arms), noise=0.1)
        for _ in range(n_tenants)
    ]
    sched = MultiTenantScheduler(oracle, pickers, user_picker)
    registry = MetricsRegistry()
    sched.bind_metrics(registry)

    for u in range(n_tenants):
        arms = rng.integers(0, n_arms, size=history)
        rewards = np.clip(
            quality[u, arms] + rng.normal(0.0, 0.05, size=history),
            0.0, 1.0,
        )
        tenant = sched.tenants[u]
        if legacy:
            tenant.picker._ucb.gp = legacy_decision.LegacyFiniteArmGP.from_history(
                cov, arms, rewards, noise=0.1
            )
        else:
            tenant.picker._ucb.gp.update_batch(arms, rewards)
        bound = tenant.picker.best_ucb()
        tenant.serves = history
        tenant.best_observed = float(rewards.max())
        tenant.ecb_min = bound
        tenant.sigma_tilde = bound - float(rewards[-1])
        sched.invalidate_tenant(u)
    sched.user_picker.reset(sched)
    return sched, registry


def measure(sched, n_steps, *, warmup=3, repeats=3):
    """Seconds per scheduler round, plus pick-histogram percentiles.

    Times ``repeats`` blocks of ``n_steps`` rounds and keeps the
    fastest block — the minimum is the least noise-contaminated
    estimate of the code's cost (scheduler jitter and frequency
    scaling only ever add time).
    """
    for _ in range(warmup):
        sched.step()
    per_step = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(n_steps):
            sched.step()
        per_step = min(
            per_step, (time.perf_counter() - started) / n_steps
        )
    hist = sched._m_pick_seconds
    return per_step, {
        "p50": hist.percentile(50),
        "p95": hist.percentile(95),
        "p99": hist.percentile(99),
    }


def run_config(n_tenants, n_arms, history, *, n_steps, seed=0):
    new_sched, _ = build_scheduler(
        legacy=False, n_tenants=n_tenants, n_arms=n_arms,
        history=history, seed=seed,
    )
    new_step, new_pick = measure(new_sched, n_steps)
    old_sched, _ = build_scheduler(
        legacy=True, n_tenants=n_tenants, n_arms=n_arms,
        history=history, seed=seed,
    )
    old_step, old_pick = measure(old_sched, n_steps)
    return {
        "tenants": n_tenants,
        "arms": n_arms,
        "history": history,
        "seed_s": old_step,
        "new_s": new_step,
        "speedup": old_step / new_step,
        "seed_pick": old_pick,
        "new_pick": new_pick,
    }


def run_parity(*, steps=400, seed=11):
    """Both stacks, from scratch, identical scenario — diff the traces."""

    def trace(picker_cls, user_picker):
        rng = np.random.default_rng(seed)
        n_tenants, n_arms = 16, 20
        quality = rng.uniform(0.2, 0.95, size=(n_tenants, n_arms))
        cov = _rbf_cov(rng, n_arms)
        oracle = MatrixOracle(quality, noise_std=0.05, seed=seed + 1)
        sched = MultiTenantScheduler(
            oracle,
            [
                picker_cls(cov, AlgorithmOneBeta(n_arms), noise=0.1)
                for _ in range(n_tenants)
            ],
            user_picker,
        )
        for _ in range(steps):
            sched.step()
        return [asdict(r) for r in sched.records]

    outcomes = {}
    for name, legacy_up, new_up in (
        ("GREEDY", legacy_decision.LegacyGreedyPicker(), GreedyPicker()),
        (
            "HYBRID",
            legacy_decision.LegacyHybridPicker(s=8),
            HybridPicker(s=8),
        ),
    ):
        left = trace(legacy_decision.LegacyGPUCBPicker, legacy_up)
        right = trace(GPUCBPicker, new_up)
        divergence = first_divergence(
            [{k: r[k] for k in DECISION_FIELDS} for r in left],
            [{k: r[k] for k in DECISION_FIELDS} for r in right],
        )
        if divergence is None:
            for field in ("ucb_value", "sigma_tilde"):
                a = np.array([r[field] for r in left])
                b = np.array([r[field] for r in right])
                finite = np.isfinite(a)
                if not np.array_equal(finite, np.isfinite(b)) or not np.allclose(
                    a[finite], b[finite], rtol=1e-9, atol=1e-9
                ):
                    divergence = f"{field} drifted beyond 1e-9"
                    break
        outcomes[name] = divergence
    return outcomes


def render(rows, parity, *, quick):
    def fmt_us(seconds):
        return f"{seconds * 1e6:.1f}"

    table_rows = [
        [
            r["tenants"], r["arms"], r["history"],
            fmt_us(r["seed_s"]), fmt_us(r["new_s"]),
            f"{r['speedup']:.1f}x",
            fmt_us(r["new_pick"]["p50"]),
            fmt_us(r["new_pick"]["p95"]),
            fmt_us(r["new_pick"]["p99"]),
        ]
        for r in rows
    ]
    lines = [
        ascii_table(
            [
                "tenants", "arms", "history",
                "seed us/step", "new us/step", "speedup",
                "pick p50 us", "pick p95 us", "pick p99 us",
            ],
            table_rows,
            title="Decision path: seconds per scheduler round "
            "(seed vs vectorized; pick percentiles from "
            "scheduler_pick_seconds)"
            + (" [--quick]" if quick else ""),
        ),
        "",
    ]
    for name, divergence in parity.items():
        verdict = (
            "bit-identical (ucb/sigma diagnostics within 1e-9)"
            if divergence is None
            else f"DIVERGED: {divergence}"
        )
        lines.append(f"{name} pick-sequence parity vs seed stack: {verdict}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="flagship config only, fewer steps (CI smoke; asserts >= 3x)",
    )
    parser.add_argument("--steps", type=int, default=None,
                        help="measured rounds per configuration")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.quick:
        configs = [FLAGSHIP]
        n_steps = args.steps or 40
        parity = run_parity(steps=200, seed=args.seed + 11)
    else:
        configs = [
            (4, 20, 100), (16, 20, 100), (64, 20, 100),
            (16, 100, 100), (64, 100, 100),
            (16, 100, 500), FLAGSHIP,
        ]
        n_steps = args.steps or 100
        parity = run_parity(steps=400, seed=args.seed + 11)

    rows = [
        run_config(n, k, t, n_steps=n_steps, seed=args.seed)
        for n, k, t in configs
    ]
    report = render(rows, parity, quick=args.quick)
    save_report("decision_path", report)

    for name, divergence in parity.items():
        assert divergence is None, (
            f"{name} pick sequence diverged from the seed stack: "
            f"{divergence}"
        )
    flagship = next(
        r for r in rows
        if (r["tenants"], r["arms"], r["history"]) == FLAGSHIP
    )
    floor = 3.0 if args.quick else 10.0
    assert flagship["speedup"] >= floor, (
        f"flagship speedup {flagship['speedup']:.1f}x below the "
        f"{floor:.0f}x floor at tenants={FLAGSHIP[0]}, "
        f"arms={FLAGSHIP[1]}, history={FLAGSHIP[2]}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
