"""Figure 12: impact of model correlation and model-irrelevant noise.

The four SYN datasets vary σ_M ∈ {0.01, 0.5} (correlation strength)
and α ∈ {0.1, 1.0} (weight of the correlated term).  Paper: stronger
model correlation ⇒ faster convergence for every algorithm, because an
evaluation of one model informs the others.
"""

from conftest import bench_trials, save_report

from repro.experiments.figures import figure12


def test_fig12_model_correlation(once):
    report = once(figure12, n_trials=bench_trials(6), seed=0)
    save_report("fig12_model_correlation", report.render())

    # Stronger correlation helps, for both α settings (worst-case loss
    # at 50% of budget, as in the figure).
    for alpha in ("0.1", "1.0"):
        weak = report.headline[f"alpha={alpha} weak-corr easeml @50%"]
        strong = report.headline[f"alpha={alpha} strong-corr easeml @50%"]
        assert strong <= weak + 0.02, (
            f"alpha={alpha}: strong-correlation run should converge "
            f"faster (strong={strong:.4f}, weak={weak:.4f})"
        )

    # And the weak-correlation, low-alpha dataset is the slowest of
    # all for ease.ml (hardest to generalise across models).
    slowest = report.headline["alpha=0.1 weak-corr easeml @50%"]
    for alpha in ("0.1", "1.0"):
        other = report.headline[f"alpha={alpha} strong-corr easeml @50%"]
        assert slowest >= other - 0.02
