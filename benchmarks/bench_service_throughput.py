"""Service throughput: requests/sec and latency percentiles over HTTP.

Spins up the versioned v1 service (gateway + stdlib HTTP frontend) in
process, onboards N tenants (register app, feed examples, train a
couple of async jobs to completion), then drives N concurrent
:class:`~repro.service.client.EaseMLClient` threads through a
read-heavy request mix (infer / app-status / refine / events, with a
periodic async submit+poll training cycle).  Reports aggregate
requests/sec and per-request latency percentiles — the serving-path
numbers later PRs optimize against.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick

or under pytest like the figure benchmarks::

    cd benchmarks && PYTHONPATH=../src python -m pytest \
        bench_service_throughput.py -q
"""

import argparse
import threading
import time

import numpy as np

from conftest import save_report

from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.service import ServiceGateway, TenantQuota, serve_background
from repro.service.client import EaseMLClient
from repro.utils.tables import ascii_table

PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
ZOO = ["naive-bayes", "ridge", "tree-d4"]
#: One periodic async training cycle per this many measured requests.
TRAIN_EVERY = 10


def _onboard(server, gateway, index):
    """Create a tenant with a registered, fed app.

    Registration stays open for the lifetime of the service (dynamic
    tenant membership); onboarding everyone up front just keeps the
    measured section free of admission work.
    """
    token = gateway.create_tenant(f"tenant-{index}")
    client = EaseMLClient(server.url, token)
    app = f"app-{index}"
    client.register_app(app, PROGRAM)
    X, y = make_task(TaskSpec("moons", 60, 0.3, seed=index))
    client.feed(app, X.tolist(), [int(v) for v in y])
    return client, app, [float(v) for v in X[0]]


def _drive(client, app, probe, n_requests, latencies, read_only=False):
    """One tenant's measured request loop; appends per-request seconds.

    ``read_only`` restricts the mix to the endpoints served under
    per-tenant shard locks (app-status / refine / events), which is the
    apples-to-apples workload for comparing locking disciplines.
    """
    for i in range(n_requests):
        start = time.perf_counter()
        if read_only:
            step = i % 3
            if step == 0:
                client.app_status(app)
            elif step == 1:
                client.refine(app)
            else:
                client.events(kinds=["job_finished"])
            latencies.append(time.perf_counter() - start)
            continue
        step = i % 4
        if step == 0:
            client.infer(app, probe)
        elif step == 1:
            client.app_status(app)
        elif step == 2:
            client.refine(app)
        else:
            client.events(kinds=["job_finished"])
        latencies.append(time.perf_counter() - start)
        if (i + 1) % TRAIN_EVERY == 0:
            start = time.perf_counter()
            client.wait_all(client.submit_training(app, steps=1))
            latencies.append(time.perf_counter() - start)


def run_benchmark(n_clients=4, n_requests=100, n_gpus=4, seed=0,
                  *, shard_read_locks=True, read_only=False):
    """Returns the report rows; prints nothing."""
    gateway = ServiceGateway(
        placement="partition",
        n_gpus=n_gpus,
        seed=seed,
        zoo=default_zoo().subset(ZOO),
        default_quota=TenantQuota(
            max_apps=2, max_pending_jobs=8,
            max_store_bytes=64 * 1024 * 1024,
        ),
        shard_read_locks=shard_read_locks,
    )
    server, _ = serve_background(gateway)
    try:
        tenants = [
            _onboard(server, gateway, i) for i in range(n_clients)
        ]
        for client, app, _ in tenants:
            client.wait_all(client.submit_training(app, steps=2))
        per_thread = [[] for _ in tenants]
        threads = [
            threading.Thread(
                target=_drive,
                args=(client, app, probe, n_requests, latencies,
                      read_only),
            )
            for (client, app, probe), latencies in zip(
                tenants, per_thread
            )
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
    finally:
        server.shutdown()
        server.server_close()

    latencies = np.array(
        [value for bucket in per_thread for value in bucket]
    )
    assert latencies.size > 0, "no requests were measured"
    total = int(latencies.size)
    return [
        ["concurrent clients", n_clients],
        ["requests (total)", total],
        ["wall time (s)", round(wall, 3)],
        ["requests/sec", round(total / wall, 1)],
        ["latency p50 (ms)", round(1e3 * np.percentile(latencies, 50), 2)],
        ["latency p99 (ms)", round(1e3 * np.percentile(latencies, 99), 2)],
        ["latency max (ms)", round(1e3 * latencies.max(), 2)],
    ]


def render(rows):
    return ascii_table(
        ["metric", "value"],
        rows,
        title="Service throughput (HTTP frontend, v1 API)",
    )


def run_lock_comparison(n_clients=4, n_requests=100, n_gpus=4, seed=0):
    """Race the two locking disciplines on the read-only mix.

    Same server shape, same request mix (app-status / refine / events —
    exactly the endpoints the per-tenant shard locks cover); the only
    variable is whether reads serialise on the gateway-wide RLock or
    run under per-tenant locks.
    """
    rows = []
    for label, shard in (("single lock", False),
                         ("per-tenant locks", True)):
        result = run_benchmark(
            n_clients=n_clients, n_requests=n_requests, n_gpus=n_gpus,
            seed=seed, shard_read_locks=shard, read_only=True,
        )
        by_name = {name: value for name, value in result}
        rows.append([
            label,
            by_name["requests/sec"],
            by_name["latency p50 (ms)"],
            by_name["latency p99 (ms)"],
        ])
    return rows


def render_lock_comparison(rows, n_clients):
    return ascii_table(
        ["locking", "requests/sec", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Read-only mix: gateway lock discipline "
        f"({n_clients} concurrent tenants)",
    )


def test_service_throughput(once):
    """Pytest entry point, sized like the other figure benchmarks."""
    rows = once(run_benchmark, n_clients=2, n_requests=40)
    save_report("service_throughput", render(rows))
    by_name = {name: value for name, value in rows}
    assert by_name["requests (total)"] >= 80
    assert by_name["requests/sec"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=100,
                        help="measured requests per client")
    parser.add_argument("--n-gpus", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration (2 clients x 20 requests)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.clients, args.requests = 2, 20
    rows = run_benchmark(
        n_clients=args.clients,
        n_requests=args.requests,
        n_gpus=args.n_gpus,
        seed=args.seed,
    )
    comparison = run_lock_comparison(
        n_clients=args.clients,
        n_requests=args.requests,
        n_gpus=args.n_gpus,
        seed=args.seed,
    )
    report = (
        render(rows)
        + "\n\n"
        + render_lock_comparison(comparison, args.clients)
    )
    save_report("service_throughput", report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
