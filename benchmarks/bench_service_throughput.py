"""Service throughput: requests/sec and latency percentiles over HTTP.

Spins up the versioned v1 service in process, onboards N tenants
(register app, feed examples, train a couple of async jobs to
completion), then drives N concurrent
:class:`~repro.service.client.EaseMLClient` threads through a
read-heavy request mix (infer / app-status / refine / events, with a
periodic async submit+poll training cycle).  Reports aggregate
requests/sec and per-request latency percentiles — the serving-path
numbers later PRs optimize against.

Four comparison races ride along:

* **frontends** — the same read-only mix against ``threading`` (one
  OS thread per connection) and ``asyncio`` (event loop; reads served
  inline from the gateway's lock-free snapshots);
* **metrics overhead** — the read-only mix with the metrics registry
  enabled (default instrumentation) versus disabled
  (``repro serve --no-metrics``), the observability plane's ~5%
  overhead guard;
* **tracing overhead** — the same mix across tracing configurations
  (no metrics / tracing off / 1% head sampling / 100%), the span
  tracer's <=2%-at-1%-sampling budget guard;
* **journal sync modes** — a mutation-heavy mix (feed / toggle /
  submit+wait cycles) against ``--sync off | buffered | group |
  fsync``, the over-HTTP companion to ``bench_persist_overhead.py``.

Run standalone (CI smoke uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick

or under pytest like the figure benchmarks::

    cd benchmarks && PYTHONPATH=../src python -m pytest \
        bench_service_throughput.py -q
"""

import argparse
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from conftest import save_report

from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.service import ServiceGateway, TenantQuota, serve_background
from repro.service.client import EaseMLClient
from repro.utils.tables import ascii_table

PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
ZOO = ["naive-bayes", "ridge", "tree-d4"]
#: One periodic async training cycle per this many measured requests.
TRAIN_EVERY = 10


def _onboard(server, gateway, index):
    """Create a tenant with a registered, fed app.

    Registration stays open for the lifetime of the service (dynamic
    tenant membership); onboarding everyone up front just keeps the
    measured section free of admission work.
    """
    token = gateway.create_tenant(f"tenant-{index}")
    client = EaseMLClient(server.url, token)
    app = f"app-{index}"
    client.register_app(app, PROGRAM)
    X, y = make_task(TaskSpec("moons", 60, 0.3, seed=index))
    client.feed(app, X.tolist(), [int(v) for v in y])
    return client, app, [float(v) for v in X[0]]


def _drive(client, app, probe, n_requests, latencies, read_only=False):
    """One tenant's measured request loop; appends per-request seconds.

    ``read_only`` restricts the mix to the endpoints served under
    per-tenant shard locks (app-status / refine / events), which is the
    apples-to-apples workload for comparing locking disciplines.
    """
    for i in range(n_requests):
        start = time.perf_counter()
        if read_only:
            step = i % 3
            if step == 0:
                client.app_status(app)
            elif step == 1:
                client.refine(app)
            else:
                client.events(kinds=["job_finished"])
            latencies.append(time.perf_counter() - start)
            continue
        step = i % 4
        if step == 0:
            client.infer(app, probe)
        elif step == 1:
            client.app_status(app)
        elif step == 2:
            client.refine(app)
        else:
            client.events(kinds=["job_finished"])
        latencies.append(time.perf_counter() - start)
        if (i + 1) % TRAIN_EVERY == 0:
            start = time.perf_counter()
            client.wait_all(client.submit_training(app, steps=1))
            latencies.append(time.perf_counter() - start)


def _make_gateway(n_gpus, seed, *, shard_read_locks=True, state_dir=None,
                  sync=None, metrics=None):
    quota = TenantQuota(
        max_apps=2, max_pending_jobs=8,
        max_store_bytes=64 * 1024 * 1024,
    )
    kwargs = dict(
        placement="partition",
        n_gpus=n_gpus,
        seed=seed,
        zoo=default_zoo().subset(ZOO),
        default_quota=quota,
        shard_read_locks=shard_read_locks,
    )
    if metrics is not None:
        kwargs["metrics"] = metrics
    if sync is None:
        return ServiceGateway(**kwargs)
    from repro.persist import open_gateway

    gateway, _ = open_gateway(
        state_dir, sync=sync, snapshot_every=0, **kwargs
    )
    return gateway


def run_benchmark(n_clients=4, n_requests=100, n_gpus=4, seed=0,
                  *, shard_read_locks=True, read_only=False,
                  frontend="threading", metrics=None, tracer=None):
    """Returns the report rows; prints nothing."""
    gateway = _make_gateway(
        n_gpus, seed, shard_read_locks=shard_read_locks, metrics=metrics
    )
    if tracer is not None:
        gateway.tracer = tracer
    server, _ = serve_background(gateway, frontend=frontend)
    try:
        tenants = [
            _onboard(server, gateway, i) for i in range(n_clients)
        ]
        for client, app, _ in tenants:
            client.wait_all(client.submit_training(app, steps=2))
        per_thread = [[] for _ in tenants]
        threads = [
            threading.Thread(
                target=_drive,
                args=(client, app, probe, n_requests, latencies,
                      read_only),
            )
            for (client, app, probe), latencies in zip(
                tenants, per_thread
            )
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
    finally:
        server.shutdown()
        server.server_close()

    latencies = np.array(
        [value for bucket in per_thread for value in bucket]
    )
    assert latencies.size > 0, "no requests were measured"
    total = int(latencies.size)
    return [
        ["concurrent clients", n_clients],
        ["requests (total)", total],
        ["wall time (s)", round(wall, 3)],
        ["requests/sec", round(total / wall, 1)],
        ["latency p50 (ms)", round(1e3 * np.percentile(latencies, 50), 2)],
        ["latency p99 (ms)", round(1e3 * np.percentile(latencies, 99), 2)],
        ["latency max (ms)", round(1e3 * latencies.max(), 2)],
    ]


def render(rows):
    return ascii_table(
        ["metric", "value"],
        rows,
        title="Service throughput (HTTP frontend, v1 API)",
    )


def run_frontend_comparison(n_clients=4, n_requests=100, n_gpus=4, seed=0):
    """Race the two HTTP frontends on the read-only mix.

    Same server shape, same request mix (app-status / refine / events);
    the only variable is the transport: one OS thread per connection
    versus the asyncio event loop serving reads inline from the
    gateway's lock-free snapshots.
    """
    rows = []
    for frontend in ("threading", "asyncio"):
        result = run_benchmark(
            n_clients=n_clients, n_requests=n_requests, n_gpus=n_gpus,
            seed=seed, read_only=True, frontend=frontend,
        )
        by_name = {name: value for name, value in result}
        rows.append([
            frontend,
            by_name["requests/sec"],
            by_name["latency p50 (ms)"],
            by_name["latency p99 (ms)"],
        ])
    return rows


def render_frontend_comparison(rows, n_clients):
    return ascii_table(
        ["frontend", "requests/sec", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Read-only mix: HTTP frontend "
        f"({n_clients} concurrent tenants)",
    )


def run_metrics_overhead(n_clients=4, n_requests=100, n_gpus=4, seed=0):
    """Race the read-only mix with the metrics registry on vs off.

    The overhead guard for the observability plane: the instrumented
    serving path (per-route counters + latency histograms + request
    tracing, the default) against ``repro serve --no-metrics`` (a
    disabled registry handing out no-op instruments).  The budget is
    ~5% on requests/sec; the rendered row records the measured gap.

    The effect being measured is ~10us per ~1ms request (~1%), which
    is far below the 5-10% run-to-run scheduler noise of one smoke-
    sized run — so the race interleaves five repetitions of each
    configuration over at least 150 requests per client and compares
    *medians*, the standard way to pull a small systematic effect out
    of heavy-tailed timing noise.
    """
    import statistics

    from repro.obs import MetricsRegistry

    n_requests = max(n_requests, 150)
    configs = (("instrumented", True), ("--no-metrics", False))
    samples = {label: [] for label, _ in configs}
    for _ in range(5):
        for label, enabled in configs:
            result = run_benchmark(
                n_clients=n_clients, n_requests=n_requests,
                n_gpus=n_gpus, seed=seed, read_only=True,
                metrics=MetricsRegistry(enabled=enabled),
            )
            samples[label].append(
                {name: value for name, value in result}
            )
    medians = {
        label: {
            key: round(
                statistics.median(run[key] for run in runs), 2
            )
            for key in (
                "requests/sec", "latency p50 (ms)", "latency p99 (ms)"
            )
        }
        for label, runs in samples.items()
    }
    rows = [
        [
            label,
            medians[label]["requests/sec"],
            medians[label]["latency p50 (ms)"],
            medians[label]["latency p99 (ms)"],
        ]
        for label, _ in configs
    ]
    overhead = 100.0 * (
        1.0
        - medians["instrumented"]["requests/sec"]
        / medians["--no-metrics"]["requests/sec"]
    )
    rows.append(["overhead (%)", round(overhead, 2), "", ""])
    return rows


def render_metrics_overhead(rows, n_clients):
    return ascii_table(
        ["registry", "requests/sec", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Read-only mix: metrics overhead guard "
        f"({n_clients} concurrent tenants; budget ~5%)",
    )


def _tracer_fastpath_us(tracer, n=200_000):
    """Min-of-5 per-request cost (µs) of ``start`` + ``finish``.

    The HTTP race below cannot resolve a ~2% effect on this host —
    lane medians swing ±25% between runs — so the budget claim rests
    on this direct measurement: the tracer's whole per-request
    surface, timed over a tight loop, divided by the race's observed
    p50 service time.
    """
    from repro.obs.context import RequestContext

    context = RequestContext(request_id="req-bench")
    best = None
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(n):
            tracer.start(context)
            tracer.finish(
                context, route="/v1/apps/{app}/infer", status=200,
                tenant="bench", frontend="bench",
            )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / n * 1e6


def run_tracing_overhead(n_clients=4, n_requests=100, n_gpus=4, seed=0):
    """Race the read-only mix across tracing configurations.

    Four lanes: ``--no-metrics`` (no registry, no tracer), metrics
    with tracing disabled (the ``--trace-sample 0`` shape), head
    sampling at 1% (the recommended production setting), and head
    sampling at 100% (every request carries a span accumulator).  The
    budget is <=2% on requests/sec at 1% sampling versus the
    metrics-only baseline: a sampled-out request costs one RNG draw
    at start and every ``span()`` site returns the shared null span.

    Same discipline as :func:`run_metrics_overhead` — five
    interleaved repetitions per lane (ABBA-ordered), medians compared
    — but the race only *bounds* the effect: single-core scheduler
    noise is an order of magnitude larger than the budget.  The
    decisive number is the :func:`_tracer_fastpath_us` microbench,
    reported as ``implied overhead`` rows against the baseline lane's
    p50 service time.
    """
    import statistics

    from repro.obs import MetricsRegistry, NULL_TRACER
    from repro.obs.tracing import Tracer

    n_requests = max(n_requests, 150)

    def configs():
        # Fresh registry/tracer per repetition: no cross-run state.
        return (
            ("--no-metrics", MetricsRegistry(enabled=False), None),
            ("metrics, tracing off",
             MetricsRegistry(enabled=True), NULL_TRACER),
            ("tracing @ 1%", MetricsRegistry(enabled=True),
             Tracer(sample_rate=0.01, seed=seed)),
            ("tracing @ 100%", MetricsRegistry(enabled=True),
             Tracer(sample_rate=1.0, seed=seed)),
        )

    labels = [label for label, _, _ in configs()]
    samples = {label: [] for label in labels}
    for repetition in range(5):
        lanes = list(configs())
        if repetition % 2:
            # ABBA ordering: alternate the lane order so a monotonic
            # machine-speed drift across the race cancels out of the
            # medians instead of biasing whichever lane runs last.
            lanes.reverse()
        for label, registry, tracer in lanes:
            result = run_benchmark(
                n_clients=n_clients, n_requests=n_requests,
                n_gpus=n_gpus, seed=seed, read_only=True,
                metrics=registry, tracer=tracer,
            )
            samples[label].append(
                {name: value for name, value in result}
            )
    medians = {
        label: {
            key: round(
                statistics.median(run[key] for run in runs), 2
            )
            for key in (
                "requests/sec", "latency p50 (ms)", "latency p99 (ms)"
            )
        }
        for label, runs in samples.items()
    }
    rows = [
        [
            label,
            medians[label]["requests/sec"],
            medians[label]["latency p50 (ms)"],
            medians[label]["latency p99 (ms)"],
        ]
        for label in labels
    ]
    baseline = medians["metrics, tracing off"]["requests/sec"]
    for label in ("tracing @ 1%", "tracing @ 100%"):
        overhead = 100.0 * (
            1.0 - medians[label]["requests/sec"] / baseline
        )
        rows.append(
            [f"{label} overhead (%)", round(overhead, 2), "", ""]
        )
    # Deterministic per-request cost: the race rows above bound the
    # effect, these resolve it.
    null_us = _tracer_fastpath_us(NULL_TRACER)
    p50_us = (
        medians["metrics, tracing off"]["latency p50 (ms)"] * 1000.0
    )
    for label, rate in (("1%", 0.01), ("100%", 1.0)):
        cost = _tracer_fastpath_us(Tracer(sample_rate=rate, seed=seed))
        implied = 100.0 * max(cost - null_us, 0.0) / p50_us
        rows.append(
            [f"fast path @ {label} (us/req)", round(cost, 3), "", ""]
        )
        rows.append(
            [f"implied @ {label} overhead (%)", round(implied, 4),
             "", ""]
        )
    return rows


def render_tracing_overhead(rows, n_clients):
    return ascii_table(
        ["tracing", "requests/sec", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Read-only mix: tracing overhead "
        f"({n_clients} concurrent tenants; budget <=2% @ 1% sampling)",
    )


def _drive_mutations(client, app, rows, labels, n_cycles, latencies):
    """One tenant's mutation loop: feed, toggle, submit, wait-to-done."""
    for i in range(n_cycles):
        start = time.perf_counter()
        fed = client.feed(app, rows[i % len(rows)], labels[i % len(rows)])
        client.set_example_enabled(
            app, fed.example_ids[0], i % 2 == 0
        )
        handle = client.submit_training(app, steps=1)[0]
        client.wait(handle.job_id, timeout=120)
        latencies.append(time.perf_counter() - start)


def run_sync_comparison(n_clients=4, n_cycles=10, n_gpus=4, seed=0):
    """Race journal sync modes on a mutation-heavy mix over HTTP.

    ``off`` is the no-store baseline; ``buffered`` / ``group`` /
    ``fsync`` journal every mutation, differing only in when the fsync
    happens (never / once per commit convoy / once per record).  With
    N concurrent mutating tenants, ``group`` is where convoys actually
    form: writers ride each other's flushes.
    """
    rows = []
    state_root = Path(tempfile.mkdtemp(prefix="bench-service-sync-"))
    try:
        for sync in ("off", "buffered", "group", "fsync"):
            gateway = _make_gateway(
                n_gpus, seed,
                state_dir=state_root / sync,
                sync=None if sync == "off" else sync,
            )
            server, _ = serve_background(gateway)
            try:
                tenants = [
                    _onboard(server, gateway, i) for i in range(n_clients)
                ]
                for client, app, _ in tenants:
                    client.wait_all(client.submit_training(app, steps=1))
                X, y = make_task(TaskSpec("moons", 100, 0.3, seed=seed))
                batch = 5
                feed_rows = [
                    [list(map(float, r)) for r in X[i:i + batch]]
                    for i in range(0, 100, batch)
                ]
                feed_labels = [
                    [int(v) for v in y[i:i + batch]]
                    for i in range(0, 100, batch)
                ]
                per_thread = [[] for _ in tenants]
                threads = [
                    threading.Thread(
                        target=_drive_mutations,
                        args=(client, app, feed_rows, feed_labels,
                              n_cycles, latencies),
                    )
                    for (client, app, _), latencies in zip(
                        tenants, per_thread
                    )
                ]
                wall_start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - wall_start
                journaled = (
                    0 if gateway.store is None else gateway.store.last_seq
                )
            finally:
                server.shutdown()
                server.server_close()
                if gateway.store is not None:
                    gateway.store.close()
            latencies = np.array(
                [v for bucket in per_thread for v in bucket]
            )
            total = n_clients * n_cycles
            rows.append([
                sync,
                journaled,
                round(total / wall, 1),
                round(1e3 * float(np.percentile(latencies, 50)), 2),
                round(1e3 * float(np.percentile(latencies, 99)), 2),
            ])
    finally:
        shutil.rmtree(state_root, ignore_errors=True)
    return rows


def render_sync_comparison(rows, n_clients):
    return ascii_table(
        ["sync", "records", "cycles/sec", "p50 (ms)", "p99 (ms)"],
        rows,
        title=f"Mutation mix (feed+toggle+submit+wait) over HTTP: "
        f"journal sync mode ({n_clients} concurrent tenants)",
    )


def test_service_throughput(once):
    """Pytest entry point, sized like the other figure benchmarks."""
    rows = once(run_benchmark, n_clients=2, n_requests=40)
    save_report("service_throughput", render(rows))
    by_name = {name: value for name, value in rows}
    assert by_name["requests (total)"] >= 80
    assert by_name["requests/sec"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=100,
                        help="measured requests per client")
    parser.add_argument("--cycles", type=int, default=10,
                        help="mutation cycles per client in the sync-"
                        "mode race")
    parser.add_argument("--n-gpus", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke configuration (2 clients x 20 requests)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.clients, args.requests, args.cycles = 2, 20, 4
    rows = run_benchmark(
        n_clients=args.clients,
        n_requests=args.requests,
        n_gpus=args.n_gpus,
        seed=args.seed,
    )
    frontends = run_frontend_comparison(
        n_clients=args.clients,
        n_requests=args.requests,
        n_gpus=args.n_gpus,
        seed=args.seed,
    )
    overhead = run_metrics_overhead(
        n_clients=args.clients,
        n_requests=args.requests,
        n_gpus=args.n_gpus,
        seed=args.seed,
    )
    tracing = run_tracing_overhead(
        n_clients=args.clients,
        n_requests=args.requests,
        n_gpus=args.n_gpus,
        seed=args.seed,
    )
    syncs = run_sync_comparison(
        n_clients=args.clients,
        n_cycles=args.cycles,
        n_gpus=args.n_gpus,
        seed=args.seed,
    )
    report = (
        render(rows)
        + "\n\n"
        + render_frontend_comparison(frontends, args.clients)
        + "\n\n"
        + render_metrics_overhead(overhead, args.clients)
        + "\n\n"
        + render_tracing_overhead(tracing, args.clients)
        + "\n\n"
        + render_sync_comparison(syncs, args.clients)
    )
    save_report("service_throughput", report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
