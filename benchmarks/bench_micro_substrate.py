"""Micro-benchmarks of the hot substrate paths.

These use pytest-benchmark's statistical timing (unlike the figure
benches, which run their driver once): GP posterior updates, UCB
scoring, scheduler steps and kernel evaluation are the operations a
production deployment performs per training job.
"""

import numpy as np
import pytest

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import GreedyPicker
from repro.datasets import generate_syn
from repro.gp.kernels import RBF, ConstantKernel
from repro.gp.regression import FiniteArmGP


@pytest.fixture(scope="module")
def syn_dataset():
    return generate_syn(0.5, 0.5, n_users=10, n_models=100, seed=0)


def test_gp_update_100_arms(benchmark):
    """One posterior update on a 100-arm GP with 50 prior observations."""
    rng = np.random.default_rng(0)
    cov = ConstantKernel(0.09) * RBF(1.0)
    K = cov(rng.normal(size=(100, 5)))

    def setup():
        gp = FiniteArmGP(K, noise=0.05)
        for _ in range(50):
            gp.update(int(rng.integers(100)), float(rng.normal(0.5, 0.1)))
        return (gp,), {}

    def update(gp):
        gp.update(3, 0.7)

    benchmark.pedantic(update, setup=setup, rounds=30)


def test_gp_posterior_query_100_arms(benchmark):
    rng = np.random.default_rng(0)
    K = (ConstantKernel(0.09) * RBF(1.0))(rng.normal(size=(100, 5)))
    gp = FiniteArmGP(K, noise=0.05)
    for _ in range(60):
        gp.update(int(rng.integers(100)), float(rng.normal(0.5, 0.1)))

    def query():
        gp._posterior_cache = None  # force recompute
        return gp.posterior()

    benchmark(query)


def test_kernel_gram_500_points(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(500, 20))
    kernel = ConstantKernel(1.0) * RBF(1.5)
    benchmark(kernel, X)


def test_scheduler_step_greedy(benchmark, syn_dataset):
    """One GREEDY scheduler round over 10 tenants x 100 models."""

    def setup():
        oracle = MatrixOracle(
            syn_dataset.quality, syn_dataset.cost, noise_std=0.02, seed=0
        )
        from repro.gp.covariance import empirical_model_covariance

        cov = empirical_model_covariance(syn_dataset.quality)
        pickers = [
            GPUCBPicker(
                cov,
                AlgorithmOneBeta(syn_dataset.n_models),
                oracle.costs(i),
                noise=0.05,
            )
            for i in range(syn_dataset.n_users)
        ]
        sched = MultiTenantScheduler(oracle, pickers, GreedyPicker())
        sched.run(max_steps=syn_dataset.n_users + 5)  # past warm-up
        return (sched,), {}

    benchmark.pedantic(
        lambda sched: sched.step(), setup=setup, rounds=20
    )


def test_full_trial_deeplearning(benchmark):
    """A complete Figure-9-protocol trial (one split, one strategy)."""
    from repro.datasets import load_deeplearning
    from repro.experiments import ExperimentConfig
    from repro.experiments.harness import run_trial

    ds = load_deeplearning(seed=0)
    config = ExperimentConfig(
        n_trials=1, budget_fraction=0.10, cost_aware=True,
        n_checkpoints=41, base_seed=0, noise_std=0.02,
    )
    benchmark.pedantic(
        run_trial, args=(ds, ["easeml"], config, 0), rounds=5
    )
