"""§4.5 future-work extension: GP-UCB vs GP-EI vs GP-PI, multi-tenant.

The paper's analysis covers GP-UCB only and lists the integration of
GP-EI / GP-PI as future work.  Here all three acquisitions run inside
the same HYBRID multi-tenant loop on DEEPLEARNING (cost-aware, EI/PI
per unit cost) so their practical behaviour can be compared — no regret
bound is claimed for EI/PI, matching the paper's framing.
"""

import numpy as np
from conftest import bench_trials, save_report

from repro.core.acquisitions import GPEIPicker, GPPIPicker
from repro.core.model_picking import GPUCBPicker
from repro.core.beta import TheoremBeta
from repro.core.multitenant import MultiTenantScheduler
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import HybridPicker
from repro.datasets import load_deeplearning
from repro.gp.covariance import empirical_model_covariance
from repro.utils.rng import derive_seed
from repro.utils.tables import ascii_table


def _run(dataset, picker_factory, trial, budget_fraction=0.10):
    split_seed = derive_seed(0, "acq-split", trial)
    train, test = dataset.split_users(10, seed=split_seed)
    cov = empirical_model_covariance(train.quality)
    prior_mean = train.quality.mean(axis=0)
    oracle = MatrixOracle(
        test.quality, test.cost, noise_std=0.02,
        seed=derive_seed(0, "acq-noise", trial),
    )
    pickers = [
        picker_factory(cov, prior_mean, oracle.costs(i), test)
        for i in range(test.n_users)
    ]
    sched = MultiTenantScheduler(oracle, pickers, HybridPicker())
    sched.run(cost_budget=budget_fraction * float(np.sum(test.cost)))
    best = np.zeros(test.n_users)
    for record in sched.records:
        quality = test.quality[record.user, record.arm]
        best[record.user] = max(best[record.user], quality)
    return float(np.mean(test.best_qualities() - best))


def test_acquisition_comparison(once):
    dataset = load_deeplearning(seed=0)
    trials = bench_trials(10)

    def ucb_factory(cov, mean, costs, test):
        return GPUCBPicker(
            cov,
            TheoremBeta(
                test.n_models,
                c_star=float(np.max(costs)),
                n_users=test.n_users,
            ),
            costs,
            noise=0.05,
            prior_mean=mean,
        )

    def ei_factory(cov, mean, costs, test):
        return GPEIPicker(cov, costs, noise=0.05, prior_mean=mean)

    def pi_factory(cov, mean, costs, test):
        return GPPIPicker(cov, costs, noise=0.05, prior_mean=mean)

    factories = {
        "GP-UCB": ucb_factory,
        "GP-EI": ei_factory,
        "GP-PI": pi_factory,
    }

    def run_all():
        return {
            name: float(
                np.mean(
                    [_run(dataset, factory, t) for t in range(trials)]
                )
            )
            for name, factory in factories.items()
        }

    losses = once(run_all)
    save_report(
        "ablation_acquisitions",
        ascii_table(
            ["acquisition", "final avg accuracy loss"],
            [[name, loss] for name, loss in losses.items()],
            title="§4.5 extension: acquisition functions under the "
            "HYBRID multi-tenant loop (DEEPLEARNING, 10% budget)",
        ),
    )

    # All three must be functional (far better than the no-model loss
    # of ~0.89); GP-UCB — the analysed algorithm — must be competitive.
    for name, loss in losses.items():
        assert loss < 0.3, f"{name} failed to explore ({loss=})"
    assert losses["GP-UCB"] <= min(losses.values()) + 0.05
