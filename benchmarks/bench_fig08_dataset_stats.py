"""Figure 8: the dataset-statistics table."""

from conftest import save_report

from repro.datasets import load_benchmark_suite
from repro.experiments.figures import figure8
from repro.utils.tables import ascii_table


def test_fig08_dataset_statistics(once):
    report = once(figure8, seed=0)

    suite = load_benchmark_suite(seed=0)
    rows = []
    for name, ds in suite.items():
        stats = ds.statistics()
        rows.append(
            [
                stats["name"],
                stats["n_users"],
                stats["n_models"],
                stats["quality"],
                stats["cost"],
            ]
        )
    table = ascii_table(
        ["Dataset", "# Users", "# Models", "Quality", "Cost"],
        rows,
        title="Figure 8: Statistics of Datasets",
    )
    save_report("fig08_dataset_stats", table)

    # The exact Figure 8 grid.
    expected = {
        "DEEPLEARNING": (22, 8),
        "179CLASSIFIER": (121, 179),
        "SYN(0.01,0.1)": (200, 100),
        "SYN(0.01,1.0)": (200, 100),
        "SYN(0.5,0.1)": (200, 100),
        "SYN(0.5,1.0)": (200, 100),
    }
    for name, (n_users, n_models) in expected.items():
        assert report.headline[f"{name} users"] == n_users
        assert report.headline[f"{name} models"] == n_models
