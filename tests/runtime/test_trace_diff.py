"""First-divergence reporting between recorded event logs."""

import pytest

from repro.cli import main
from repro.engine.cluster import GPUPool
from repro.runtime import (
    ClusterRuntime,
    diff_event_files,
    diff_event_logs,
    first_divergence,
    make_placement,
    write_events_jsonl,
)


def _run(seed_jobs, policy="partition", overhead=0.0):
    rt = ClusterRuntime(
        GPUPool(2, scaling_efficiency=1.0),
        make_placement(policy),
        preemption_overhead=overhead,
    )
    for user, gpu_time, time in seed_jobs:
        rt.submit(user, 0, gpu_time=gpu_time, time=time)
    rt.run_until_idle()
    return rt


JOBS = [(0, 4.0, 0.0), (1, 2.0, 1.0), (0, 1.0, 2.0)]


class TestFirstDivergence:
    def test_identical_streams(self):
        assert first_divergence([{"a": 1}], [{"a": 1}]) is None

    def test_value_difference_reports_fields(self):
        left = [{"time": 0.0, "kind": "x", "payload": {"u": 1}}]
        right = [{"time": 0.0, "kind": "y", "payload": {"u": 1}}]
        divergence = first_divergence(left, right)
        assert divergence.index == 0
        assert divergence.fields == ("kind",)
        assert "first divergence at event #0" in divergence.describe()

    def test_length_difference(self):
        left = [{"a": 1}, {"a": 2}]
        divergence = first_divergence(left, left[:1])
        assert divergence.index == 1
        assert divergence.left == {"a": 2}
        assert divergence.right is None
        assert "<stream ended>" in divergence.describe()

    def test_divergence_index_is_first(self):
        left = [{"a": 1}, {"a": 2}, {"a": 3}]
        right = [{"a": 1}, {"a": 9}, {"a": 8}]
        assert first_divergence(left, right).index == 1


class TestDiffEventLogs:
    def test_identical_runs_do_not_diverge(self):
        assert diff_event_logs(_run(JOBS).log, _run(JOBS).log) is None

    def test_parameter_change_diverges(self):
        divergence = diff_event_logs(
            _run(JOBS, overhead=0.0).log, _run(JOBS, overhead=0.5).log
        )
        assert divergence is not None

    def test_file_roundtrip(self, tmp_path):
        left = tmp_path / "a.jsonl"
        right = tmp_path / "b.jsonl"
        write_events_jsonl(_run(JOBS).log, left)
        write_events_jsonl(_run(JOBS).log, right)
        assert diff_event_files(left, right) is None
        write_events_jsonl(_run(JOBS, policy="single").log, right)
        assert diff_event_files(left, right) is not None


class TestTraceDiffCli:
    def _write(self, path, policy="partition"):
        write_events_jsonl(_run(JOBS, policy=policy).log, path)

    def test_identical_logs_exit_zero(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write(a)
        self._write(b)
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_logs_exit_one(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write(a)
        self._write(b, policy="single")
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "first divergence" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        self._write(a)
        code = main(["trace", "diff", str(a), str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_diff_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])
