"""ClusterRuntime.cancel: the recovery-time cancellation primitive."""

import pytest

from repro.engine.cluster import GPUPool
from repro.engine.jobs import JobState
from repro.runtime.kernel import ClusterRuntime
from repro.runtime.placement import make_placement


@pytest.fixture
def runtime():
    return ClusterRuntime(GPUPool(2), make_placement("partition"))


class TestCancel:
    def test_cancel_pending_job_releases_its_slot(self, runtime):
        jobs = [runtime.submit(0, m, gpu_time=4.0) for m in range(3)]
        runtime.step()
        runtime.step()
        runtime.step()  # all submitted: 2 running, 1 pending
        pending = runtime.pending_jobs
        assert pending
        assert runtime.cancel(pending[0].job_id, reason="lost")
        assert pending[0].state is JobState.FAILED
        assert pending[0].detail["failure_reason"] == "lost"
        assert pending[0] not in runtime.pending_jobs
        # Everyone else drains normally.
        runtime.run_until_idle()
        done = {j.job_id for j in runtime.finished_jobs()}
        assert done == {j.job_id for j in jobs} - {pending[0].job_id}

    def test_cancel_running_job_ignores_stale_completion(self, runtime):
        job = runtime.submit(0, 0, gpu_time=4.0)
        runtime.step()
        assert job.state is JobState.RUNNING
        assert runtime.cancel(job.job_id)
        assert job.state is JobState.FAILED
        # The queued JOB_FINISHED event for the torn-down slice must
        # not resurrect the job.
        runtime.run_until_idle()
        assert job.state is JobState.FAILED
        assert runtime.finished_jobs() == []

    def test_cancel_terminal_job_is_a_no_op(self, runtime):
        job = runtime.submit(0, 0, gpu_time=1.0)
        runtime.run_until_idle()
        assert job.state is JobState.FINISHED
        assert not runtime.cancel(job.job_id)
        assert job.state is JobState.FINISHED

    def test_cancel_before_admission_never_queues(self, runtime):
        job = runtime.submit(0, 0, gpu_time=1.0)
        # The JOB_SUBMITTED event has not been processed yet.
        assert runtime.cancel(job.job_id)
        runtime.run_until_idle()
        assert job.state is JobState.FAILED
        assert not runtime.pending_jobs
        assert not runtime.running_jobs

    def test_cancelled_job_frees_devices_for_successors(self, runtime):
        first = runtime.submit(0, 0, gpu_time=100.0)
        runtime.step()
        second = runtime.submit(0, 1, gpu_time=1.0)
        runtime.step()
        runtime.cancel(first.job_id)
        runtime.run_until_idle()
        assert second.state is JobState.FINISHED
