"""AsyncClusterOracle: sync fallback and genuinely concurrent runs."""

import numpy as np
import pytest

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.user_picking import GreedyPicker, HybridPicker, RoundRobinPicker
from repro.datasets import generate_syn
from repro.engine.cluster import GPUPool
from repro.engine.events import EventKind
from repro.engine.trainer import TraceTrainer
from repro.gp.covariance import empirical_model_covariance
from repro.runtime.oracle import AsyncClusterOracle
from repro.runtime.placement import (
    DedicatedDevicePlacement,
    DynamicPartitionPlacement,
    SingleDevicePlacement,
)


@pytest.fixture
def dataset():
    return generate_syn(0.5, 1.0, n_users=6, n_models=8, seed=0)


def build(dataset, policy, **kwargs):
    oracle = AsyncClusterOracle(
        TraceTrainer(dataset, seed=0),
        GPUPool(4, scaling_efficiency=1.0),
        policy,
        **kwargs,
    )
    return oracle


def pickers_for(dataset, oracle):
    cov = empirical_model_covariance(dataset.quality)
    return [
        GPUCBPicker(
            cov, AlgorithmOneBeta(dataset.n_models), oracle.costs(i),
            noise=0.05,
        )
        for i in range(dataset.n_users)
    ]


class TestRewardOracleInterface:
    def test_shapes(self, dataset):
        oracle = build(dataset, SingleDevicePlacement())
        assert oracle.n_users == dataset.n_users
        assert oracle.n_models(0) == dataset.n_models
        assert oracle.costs(0).shape == (dataset.n_models,)

    def test_costs_use_full_pool_speedup(self, dataset):
        oracle = build(dataset, SingleDevicePlacement())
        np.testing.assert_allclose(
            oracle.costs(2), dataset.cost[2] / oracle.pool.speedup()
        )

    def test_observe_runs_job_synchronously(self, dataset):
        oracle = build(dataset, SingleDevicePlacement())
        observation = oracle.observe(1, 3)
        assert observation.reward == pytest.approx(dataset.quality[1, 3])
        # Single-device on a perfect 4-GPU pool: gpu_time / 4.
        assert observation.cost == pytest.approx(dataset.cost[1, 3] / 4.0)
        assert len(oracle.finished_jobs()) == 1
        assert oracle.log.filter(EventKind.MODEL_RETURNED)

    def test_observe_validates_pair(self, dataset):
        oracle = build(dataset, SingleDevicePlacement())
        with pytest.raises(IndexError):
            oracle.observe(99, 0)

    def test_failed_training_logged(self, dataset):
        class ExplodingTrainer(TraceTrainer):
            def train(self, user, model):
                raise RuntimeError("OOM")

        oracle = AsyncClusterOracle(
            ExplodingTrainer(dataset), GPUPool(4), SingleDevicePlacement()
        )
        with pytest.raises(RuntimeError, match="OOM"):
            oracle.observe(0, 0)
        failed = oracle.log.filter(EventKind.JOB_FAILED)
        assert len(failed) == 1
        assert failed[0].payload["reason"] == "OOM"
        # Uniform payload schema: job_id is present (None — the
        # failure precedes job creation).
        assert failed[0].payload["job_id"] is None


class TestRunConcurrent:
    def test_scheduler_keeps_dispatching(self, dataset):
        oracle = build(dataset, DedicatedDevicePlacement())
        scheduler = MultiTenantScheduler(
            oracle, pickers_for(dataset, oracle), RoundRobinPicker()
        )
        result = oracle.run_concurrent(scheduler, max_jobs=24)
        assert result.n_steps == 24
        assert scheduler.step_count == 24
        # Dedicated placement on 4 GPUs with 6 users => genuinely
        # overlapping jobs: some job starts before an earlier one ends.
        jobs = oracle.finished_jobs()
        starts = sorted((j.start_time, j.end_time) for j in jobs)
        assert any(
            later_start < earlier_end
            for (_, earlier_end), (later_start, _) in zip(starts, starts[1:])
        )

    def test_out_of_order_completion_feeds_back(self, dataset):
        oracle = build(dataset, DedicatedDevicePlacement())
        scheduler = MultiTenantScheduler(
            oracle, pickers_for(dataset, oracle), RoundRobinPicker()
        )
        oracle.run_concurrent(scheduler, max_jobs=12)
        # Records land in completion order: their costs differ from the
        # dispatch order's, so user order in records need not be
        # round-robin's 0..5 cycle.
        jobs = oracle.finished_jobs()
        completion_users = [
            j.user for j in sorted(jobs, key=lambda j: (j.end_time, j.job_id))
        ]
        recorded_users = [r.user for r in scheduler.records]
        assert recorded_users == completion_users

    def test_greedy_measured_under_concurrency(self, dataset):
        oracle = build(dataset, DynamicPartitionPlacement())
        scheduler = MultiTenantScheduler(
            oracle, pickers_for(dataset, oracle), GreedyPicker(seed=0)
        )
        result = oracle.run_concurrent(scheduler, max_jobs=30)
        assert result.n_steps == 30
        # Warm-up must still reach every tenant.
        assert set(result.users()) == set(range(dataset.n_users))
        assert all(t.serves >= 1 for t in scheduler.tenants)

    def test_hybrid_with_cost_budget(self, dataset):
        oracle = build(dataset, SingleDevicePlacement())
        scheduler = MultiTenantScheduler(
            oracle, pickers_for(dataset, oracle), HybridPicker(seed=0)
        )
        result = oracle.run_concurrent(scheduler, cost_budget=2.0)
        assert result.n_steps >= 1
        assert scheduler.total_cost >= 2.0 or result.n_steps > 0

    def test_requires_budget(self, dataset):
        oracle = build(dataset, SingleDevicePlacement())
        scheduler = MultiTenantScheduler(
            oracle, pickers_for(dataset, oracle), RoundRobinPicker()
        )
        with pytest.raises(ValueError, match="max_jobs"):
            oracle.run_concurrent(scheduler)

    def test_rejects_foreign_scheduler(self, dataset):
        oracle = build(dataset, SingleDevicePlacement())
        other = build(dataset, SingleDevicePlacement())
        scheduler = MultiTenantScheduler(
            other, pickers_for(dataset, other), RoundRobinPicker()
        )
        with pytest.raises(ValueError, match="different oracle"):
            oracle.run_concurrent(scheduler, max_jobs=1)

    def test_tenant_state_consistent_with_records(self, dataset):
        oracle = build(dataset, DynamicPartitionPlacement())
        scheduler = MultiTenantScheduler(
            oracle, pickers_for(dataset, oracle), RoundRobinPicker()
        )
        oracle.run_concurrent(scheduler, max_jobs=18)
        serves = scheduler.tenants
        for user in range(dataset.n_users):
            user_records = [r for r in scheduler.records if r.user == user]
            assert serves[user].serves == len(user_records)
            if user_records:
                assert serves[user].best_observed == pytest.approx(
                    max(r.reward for r in user_records)
                )
        assert scheduler.total_cost == pytest.approx(
            sum(r.cost for r in scheduler.records)
        )

    def test_invalid_max_in_flight(self, dataset):
        with pytest.raises(ValueError, match="max_in_flight"):
            build(dataset, SingleDevicePlacement(), max_in_flight=0)

    def test_stalled_picks_are_deferred_not_discarded(self, dataset):
        # ROUNDROBIN's contract is "user t mod n" in dispatch order;
        # a stalled pick must be reused once the tenant frees, not
        # thrown away (which would skew the rotation).
        oracle = build(dataset, SingleDevicePlacement(), max_in_flight=3)
        scheduler = MultiTenantScheduler(
            oracle, pickers_for(dataset, oracle), RoundRobinPicker()
        )
        oracle.run_concurrent(scheduler, max_jobs=2 * dataset.n_users)
        dispatch_users = [j.user for j in oracle.runtime.jobs]
        expected = [
            t % dataset.n_users for t in range(2 * dataset.n_users)
        ]
        assert dispatch_users == expected
