"""ClusterRuntime: concurrency, preemption accounting, arrivals."""

import pytest

from repro.engine.cluster import GPUPool
from repro.engine.events import EventKind
from repro.engine.jobs import JobState
from repro.runtime.kernel import ClusterRuntime
from repro.runtime.placement import (
    DedicatedDevicePlacement,
    DynamicPartitionPlacement,
    PlacementPolicy,
    SingleDevicePlacement,
)


def perfect_pool(n):
    return GPUPool(n, scaling_efficiency=1.0)


class TestSingleDeviceDiscipline:
    def test_jobs_run_serially_on_whole_pool(self):
        rt = ClusterRuntime(perfect_pool(4), SingleDevicePlacement())
        a = rt.submit(0, 0, gpu_time=4.0, reward=0.5)
        b = rt.submit(1, 0, gpu_time=8.0, reward=0.7)
        rt.run_until_idle()
        # 4/4 = 1.0 for A, then 8/4 = 2.0 for B.
        assert a.end_time == pytest.approx(1.0)
        assert b.start_time == pytest.approx(1.0)
        assert b.end_time == pytest.approx(3.0)
        assert rt.preemption_count == 0

    def test_rewards_delivered(self):
        rt = ClusterRuntime(perfect_pool(2), SingleDevicePlacement())
        job = rt.submit(0, 3, gpu_time=1.0, reward=0.9)
        rt.run_until_idle()
        assert job.state is JobState.FINISHED
        assert job.reward == 0.9


class TestDedicatedConcurrency:
    def test_users_run_in_parallel(self):
        rt = ClusterRuntime(perfect_pool(2), DedicatedDevicePlacement())
        a = rt.submit(0, 0, gpu_time=2.0)
        b = rt.submit(1, 0, gpu_time=2.0)
        rt.run_until_idle()
        assert a.start_time == b.start_time == 0.0
        assert a.end_time == b.end_time == pytest.approx(2.0)

    def test_same_user_serialises(self):
        rt = ClusterRuntime(perfect_pool(4), DedicatedDevicePlacement())
        a = rt.submit(0, 0, gpu_time=2.0)
        b = rt.submit(0, 1, gpu_time=2.0)
        rt.run_until_idle()
        assert b.start_time == pytest.approx(a.end_time)


class TestPreemption:
    def test_partition_resizes_on_arrival_and_banks_progress(self):
        rt = ClusterRuntime(perfect_pool(4), DynamicPartitionPlacement())
        a = rt.submit(0, 0, gpu_time=8.0, time=0.0)
        b = rt.submit(1, 0, gpu_time=4.0, time=1.0)
        rt.run_until_idle()
        # A runs alone on 4 GPUs for 1 unit (4 work done), then shares
        # 2/2 with B.  Both have 4 work left at rate 2 => both at t=3.
        assert a.preemptions >= 1
        assert b.end_time == pytest.approx(3.0)
        assert a.end_time == pytest.approx(3.0)
        # Total GPU-time is conserved exactly.
        assert a.work_done == pytest.approx(8.0)
        assert b.work_done == pytest.approx(4.0)

    def test_preemption_events_logged(self):
        rt = ClusterRuntime(perfect_pool(2), DynamicPartitionPlacement())
        rt.submit(0, 0, gpu_time=4.0, time=0.0)
        rt.submit(1, 0, gpu_time=4.0, time=1.0)
        rt.run_until_idle()
        assert rt.log.filter(EventKind.JOB_PREEMPTED)
        resumed = [
            e for e in rt.log.filter(EventKind.JOB_STARTED)
            if e.payload["resumed"]
        ]
        assert resumed

    def test_requeue_when_dropped_to_zero(self):
        # 1 GPU, partition => only the FIFO head runs; a newly-submitted
        # job never preempts it, but a policy switch mid-run would.
        # Exercise requeue via max_parallel=1 with 2 jobs and a forced
        # reschedule: the second job waits in pending as PENDING, while
        # shrinking allocations requeue PREEMPTED jobs.
        rt = ClusterRuntime(
            perfect_pool(2), DynamicPartitionPlacement(max_parallel=1)
        )
        a = rt.submit(0, 0, gpu_time=4.0, time=0.0)
        b = rt.submit(1, 0, gpu_time=4.0, time=1.0)
        rt.run_until_idle()
        assert a.state is JobState.FINISHED
        assert b.state is JobState.FINISHED
        assert b.start_time >= a.end_time

    def test_gpu_time_conserved_under_heavy_churn(self):
        rt = ClusterRuntime(
            GPUPool(8, scaling_efficiency=0.7), DynamicPartitionPlacement()
        )
        jobs = [
            rt.submit(u, 0, gpu_time=1.0 + u, time=0.25 * u)
            for u in range(6)
        ]
        rt.run_until_idle()
        for job in jobs:
            assert job.state is JobState.FINISHED
            assert job.work_done == pytest.approx(job.gpu_time)


class TestPreemptionOverhead:
    def _run(self, overhead):
        rt = ClusterRuntime(
            perfect_pool(4),
            DynamicPartitionPlacement(),
            preemption_overhead=overhead,
        )
        a = rt.submit(0, 0, gpu_time=8.0, time=0.0)
        b = rt.submit(1, 0, gpu_time=4.0, time=1.0)
        rt.run_until_idle()
        return rt, a, b

    def test_free_preemption_is_the_default(self):
        rt, a, _ = self._run(0.0)
        assert a.end_time == pytest.approx(3.0)
        for event in rt.log.filter(EventKind.JOB_PREEMPTED):
            assert event.payload["overhead"] == 0.0

    def test_overhead_delays_completion(self):
        _, a_free, _ = self._run(0.0)
        rt, a_paid, _ = self._run(1.0)
        assert rt.preemption_count >= 1
        assert a_paid.end_time > a_free.end_time
        # The charged overhead lands in the event log.
        preempted = rt.log.filter(EventKind.JOB_PREEMPTED)
        assert any(e.payload["overhead"] > 0 for e in preempted)

    def test_overhead_never_unbanks_below_zero(self):
        # Overhead far larger than any banked work: jobs still finish.
        rt, a, b = self._run(100.0)
        assert a.state is JobState.FINISHED
        assert b.state is JobState.FINISHED

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="preemption_overhead"):
            ClusterRuntime(perfect_pool(2), preemption_overhead=-0.1)


class TestArrivalsAndDepartures:
    def test_departure_cancels_queued_jobs(self):
        rt = ClusterRuntime(perfect_pool(1), SingleDevicePlacement())
        rt.user_arrives(0, time=0.0)
        a = rt.submit(0, 0, gpu_time=5.0, time=0.0)
        b = rt.submit(1, 0, gpu_time=5.0, time=1.0)  # queued behind a
        rt.user_departs(1, time=2.0)
        rt.run_until_idle()
        assert a.state is JobState.FINISHED
        assert b.state is JobState.FAILED
        assert b.detail["failure_reason"] == "user departed"
        failed = rt.log.filter(EventKind.JOB_FAILED)
        assert len(failed) == 1 and failed[0].payload["job_id"] == b.job_id
        assert rt.log.filter(EventKind.USER_ARRIVED)
        assert rt.log.filter(EventKind.USER_DEPARTED)

    def test_running_jobs_drain_after_departure(self):
        rt = ClusterRuntime(perfect_pool(1), SingleDevicePlacement())
        a = rt.submit(0, 0, gpu_time=5.0, time=0.0)
        rt.user_departs(0, time=1.0)
        rt.run_until_idle()
        assert a.state is JobState.FINISHED


class TestKernelGuards:
    def test_overallocation_rejected(self):
        class Greedy(PlacementPolicy):
            name = "greedy-bad"

            def allocate(self, jobs, current, pool):
                return {job.job_id: pool.n_gpus for job in jobs}

        rt = ClusterRuntime(perfect_pool(2), Greedy())
        rt.submit(0, 0, gpu_time=1.0)
        rt.submit(1, 0, gpu_time=1.0)
        with pytest.raises(ValueError, match="allocated"):
            rt.run_until_idle()

    def test_unknown_job_allocation_rejected(self):
        class Phantom(PlacementPolicy):
            name = "phantom"

            def allocate(self, jobs, current, pool):
                return {999: 1}

        rt = ClusterRuntime(perfect_pool(2), Phantom())
        rt.submit(0, 0, gpu_time=1.0)
        with pytest.raises(ValueError, match="not schedulable"):
            rt.run_until_idle()

    def test_negative_gpu_time_rejected(self):
        rt = ClusterRuntime(perfect_pool(2))
        with pytest.raises(ValueError, match="gpu_time"):
            rt.submit(0, 0, gpu_time=-1.0)

    def test_zero_gpu_time_completes_instantly(self):
        rt = ClusterRuntime(perfect_pool(2))
        job = rt.submit(0, 0, gpu_time=0.0, reward=0.4)
        rt.run_until_idle()
        assert job.state is JobState.FINISHED
        assert job.end_time == job.start_time

    def test_run_until_horizon(self):
        rt = ClusterRuntime(perfect_pool(1), SingleDevicePlacement())
        a = rt.submit(0, 0, gpu_time=1.0, time=0.0)
        b = rt.submit(1, 0, gpu_time=1.0, time=5.0)
        completed = rt.run_until(2.0)
        assert completed == [a]
        assert rt.clock.now == 2.0
        assert b.state is JobState.PENDING
        rt.run_until_idle()
        assert b.state is JobState.FINISHED

    def test_completion_callbacks_fire(self):
        rt = ClusterRuntime(perfect_pool(1))
        seen = []
        rt.on_completion(lambda job: seen.append(job.job_id))
        rt.submit(0, 0, gpu_time=1.0)
        rt.submit(0, 1, gpu_time=1.0)
        rt.run_until_idle()
        assert seen == [0, 1]

    def test_is_idle(self):
        rt = ClusterRuntime(perfect_pool(1))
        assert rt.is_idle
        rt.submit(0, 0, gpu_time=1.0)
        assert not rt.is_idle
        rt.run_until_idle()
        assert rt.is_idle


class TestMembershipCallbacks:
    def test_arrival_and_departure_callbacks_fire(self):
        from repro.runtime.kernel import ClusterRuntime

        runtime = ClusterRuntime()
        seen = []
        runtime.on_arrival(lambda user: seen.append(("arrive", user)))
        runtime.on_departure(lambda user: seen.append(("depart", user)))
        runtime.user_arrives(3, time=1.0)
        runtime.user_departs(3, time=2.0)
        runtime.run_until_idle()
        assert seen == [("arrive", 3), ("depart", 3)]

    def test_departure_callback_fires_after_cancellations(self):
        from repro.engine.cluster import GPUPool
        from repro.engine.jobs import JobState
        from repro.runtime.kernel import ClusterRuntime
        from repro.runtime.placement import SingleDevicePlacement

        runtime = ClusterRuntime(GPUPool(1), SingleDevicePlacement())
        blocker = runtime.submit(0, 0, gpu_time=10.0)
        queued = runtime.submit(1, 0, gpu_time=1.0)
        states = []
        runtime.on_departure(
            lambda user: states.append(runtime.jobs[queued.job_id].state)
        )
        runtime.user_departs(1, time=0.5)
        runtime.run_until(0.5)
        # By the time the callback ran, the queued job was cancelled.
        assert states == [JobState.FAILED]
        assert blocker.state is JobState.RUNNING
