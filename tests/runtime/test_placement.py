"""Placement policies: desired allocations under each discipline."""

import pytest

from repro.engine.cluster import GPUPool
from repro.engine.jobs import Job
from repro.runtime.placement import (
    PLACEMENT_POLICIES,
    DedicatedDevicePlacement,
    DynamicPartitionPlacement,
    SingleDevicePlacement,
    make_placement,
)


def jobs_for(users):
    return [
        Job(job_id=i, user=u, model=0, submit_time=0.0, gpu_time=1.0)
        for i, u in enumerate(users)
    ]


class TestSingleDevice:
    def test_first_job_gets_whole_pool(self):
        pool = GPUPool(8)
        desired = SingleDevicePlacement().allocate(jobs_for([0, 1]), {}, pool)
        assert desired == {0: 8}

    def test_running_job_is_kept(self):
        pool = GPUPool(8)
        desired = SingleDevicePlacement().allocate(
            jobs_for([0, 1]), {1: 8}, pool
        )
        assert desired == {1: 8}

    def test_empty(self):
        assert SingleDevicePlacement().allocate([], {}, GPUPool(8)) == {}


class TestDedicated:
    def test_one_job_per_user(self):
        pool = GPUPool(8)
        desired = DedicatedDevicePlacement().allocate(
            jobs_for([0, 0, 1, 2]), {}, pool
        )
        assert desired == {0: 1, 2: 1, 3: 1}

    def test_pool_exhaustion(self):
        pool = GPUPool(2)
        desired = DedicatedDevicePlacement().allocate(
            jobs_for([0, 1, 2]), {}, pool
        )
        assert desired == {0: 1, 1: 1}

    def test_running_jobs_never_preempted(self):
        pool = GPUPool(2)
        desired = DedicatedDevicePlacement().allocate(
            jobs_for([0, 1, 2]), {1: 1, 2: 1}, pool
        )
        assert desired == {1: 1, 2: 1}

    def test_gpus_per_user(self):
        pool = GPUPool(8)
        desired = DedicatedDevicePlacement(gpus_per_user=4).allocate(
            jobs_for([0, 1, 2]), {}, pool
        )
        assert desired == {0: 4, 1: 4}

    def test_invalid_gpus_per_user(self):
        with pytest.raises(ValueError, match="gpus_per_user"):
            DedicatedDevicePlacement(gpus_per_user=0)


class TestDynamicPartition:
    def test_equal_share_with_remainder_to_earlier(self):
        pool = GPUPool(8)
        desired = DynamicPartitionPlacement().allocate(
            jobs_for([0, 1, 2]), {}, pool
        )
        assert desired == {0: 3, 1: 3, 2: 2}
        assert sum(desired.values()) == 8

    def test_more_jobs_than_gpus(self):
        pool = GPUPool(2)
        desired = DynamicPartitionPlacement().allocate(
            jobs_for([0, 1, 2, 3]), {}, pool
        )
        assert desired == {0: 1, 1: 1}

    def test_single_job_gets_everything(self):
        pool = GPUPool(24)
        desired = DynamicPartitionPlacement().allocate(
            jobs_for([5]), {}, pool
        )
        assert desired == {0: 24}

    def test_max_parallel_cap(self):
        pool = GPUPool(8)
        desired = DynamicPartitionPlacement(max_parallel=2).allocate(
            jobs_for([0, 1, 2]), {}, pool
        )
        assert desired == {0: 4, 1: 4}

    def test_invalid_max_parallel(self):
        with pytest.raises(ValueError, match="max_parallel"):
            DynamicPartitionPlacement(max_parallel=0)


class TestRegistry:
    def test_all_names_construct(self):
        for name in PLACEMENT_POLICIES:
            assert make_placement(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown placement"):
            make_placement("psychic")

    def test_kwargs_forwarded(self):
        policy = make_placement("dedicated", gpus_per_user=3)
        assert policy.gpus_per_user == 3
