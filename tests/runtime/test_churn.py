"""Dynamic tenant lifecycle on the concurrent runtime (ISSUE 3).

``AsyncClusterOracle.run_concurrent`` consumes a membership schedule
mid-run: arrivals admit tenants into the live scheduler (through the
kernel's ``USER_ARRIVED`` callback), departures retire them (cancelling
queued work, draining running jobs, releasing their partition), and the
whole thing replays deterministically — the same trace through the same
seeds yields a bit-for-bit identical event log.
"""

import numpy as np
import pytest

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.user_picking import HybridPicker, RoundRobinPicker
from repro.datasets import generate_syn
from repro.engine.cluster import GPUPool
from repro.engine.events import EventKind
from repro.engine.jobs import JobState
from repro.engine.trainer import TraceTrainer
from repro.runtime.oracle import AsyncClusterOracle
from repro.runtime.placement import DynamicPartitionPlacement
from repro.runtime.trace import diff_event_logs
from repro.runtime.workload import (
    WorkloadGenerator,
    WorkloadItem,
    WorkloadTrace,
)


@pytest.fixture
def dataset():
    return generate_syn(0.5, 1.0, n_users=6, n_models=8, seed=0)


def build_oracle(dataset, n_gpus=4):
    return AsyncClusterOracle(
        TraceTrainer(dataset, seed=0),
        GPUPool(n_gpus, scaling_efficiency=1.0),
        DynamicPartitionPlacement(),
    )


def factory_for(dataset, oracle, base_seed=0):
    def factory(user: int) -> GPUCBPicker:
        return GPUCBPicker(
            0.09 * np.eye(dataset.n_models),
            AlgorithmOneBeta(dataset.n_models),
            oracle.costs(user),
            noise=0.05,
            seed=base_seed * 1000 + user,
        )

    return factory


class TestArrivalSchedule:
    def test_arrivals_admit_tenants_mid_run(self, dataset):
        oracle = build_oracle(dataset)
        factory = factory_for(dataset, oracle)
        sched = MultiTenantScheduler(
            oracle, {0: factory(0)}, RoundRobinPicker()
        )
        trace = WorkloadTrace([
            WorkloadItem(time=0.5, action="arrive", user=1),
            WorkloadItem(time=1.0, action="arrive", user=2),
        ])
        result = oracle.run_concurrent(
            sched, max_jobs=18, arrivals=trace, picker_factory=factory
        )
        assert sched.active_ids() == [0, 1, 2]
        served = set(result.users())
        assert {1, 2} <= served
        arrived = oracle.log.filter(EventKind.USER_ARRIVED)
        assert [e.payload["user"] for e in arrived] == [1, 2]

    def test_can_start_with_empty_active_set(self, dataset):
        oracle = build_oracle(dataset)
        factory = factory_for(dataset, oracle)
        sched = MultiTenantScheduler(oracle, {}, RoundRobinPicker())
        trace = WorkloadTrace([
            WorkloadItem(time=1.0, action="arrive", user=3),
        ])
        result = oracle.run_concurrent(
            sched, max_jobs=4, arrivals=trace, picker_factory=factory
        )
        assert result.n_steps == 4
        assert set(result.users()) == {3}

    def test_departure_retires_and_cancels(self, dataset):
        oracle = build_oracle(dataset, n_gpus=2)
        factory = factory_for(dataset, oracle)
        sched = MultiTenantScheduler(
            oracle, {0: factory(0), 1: factory(1)}, RoundRobinPicker()
        )
        trace = WorkloadTrace([
            WorkloadItem(time=0.1, action="depart", user=1),
        ])
        result = oracle.run_concurrent(
            sched, max_jobs=10, arrivals=trace, picker_factory=factory
        )
        assert sched.active_ids() == [0]
        # After the departure lands, nobody dispatches for tenant 1.
        departed_at = oracle.log.filter(EventKind.USER_DEPARTED)[0].time
        late_submissions = [
            e for e in oracle.log.filter(EventKind.JOB_SUBMITTED, user=1)
            if e.time > departed_at
        ]
        assert late_submissions == []
        assert result.n_steps <= 10

    def test_departed_tenants_inflight_work_resolves(self, dataset):
        # 4 GPUs -> all four tenants dispatch at t=0, before the
        # departure event at t=0.01 lands.
        oracle = build_oracle(dataset, n_gpus=4)
        factory = factory_for(dataset, oracle)
        sched = MultiTenantScheduler(
            oracle,
            {u: factory(u) for u in range(4)},
            RoundRobinPicker(),
        )
        trace = WorkloadTrace([
            WorkloadItem(time=0.01, action="depart", user=2),
        ])
        oracle.run_concurrent(
            sched, max_jobs=12, arrivals=trace, picker_factory=factory
        )
        # Every job tenant 2 ever submitted reached a terminal state
        # (drained or cancelled) — nothing leaks in flight.
        jobs_2 = [j for j in oracle.runtime.jobs if j.user == 2]
        assert jobs_2, "tenant 2 dispatched before departing"
        assert all(
            j.state in (JobState.FINISHED, JobState.FAILED) for j in jobs_2
        )
        assert oracle.runtime.is_idle or sched.active_ids()

    def test_returning_tenant_resumes_history(self, dataset):
        oracle = build_oracle(dataset)
        factory = factory_for(dataset, oracle)
        sched = MultiTenantScheduler(
            oracle, {0: factory(0), 1: factory(1)}, RoundRobinPicker()
        )
        trace = WorkloadTrace([
            WorkloadItem(time=0.2, action="depart", user=1),
            WorkloadItem(time=1.0, action="arrive", user=1),
        ])
        oracle.run_concurrent(
            sched, max_jobs=12, arrivals=trace, picker_factory=factory
        )
        assert sched.active_ids() == [0, 1]
        # One TenantState throughout: serves accumulated across the gap.
        assert sched.tenants[1].serves >= 2

    def test_submit_items_rejected(self, dataset):
        oracle = build_oracle(dataset)
        factory = factory_for(dataset, oracle)
        sched = MultiTenantScheduler(
            oracle, {0: factory(0)}, RoundRobinPicker()
        )
        trace = WorkloadTrace([
            WorkloadItem(
                time=0.5, action="submit", user=0, model=1, gpu_time=1.0
            ),
        ])
        with pytest.raises(ValueError, match="membership-only"):
            oracle.run_concurrent(sched, max_jobs=2, arrivals=trace)

    def test_unknown_arrival_without_factory_fails(self, dataset):
        oracle = build_oracle(dataset)
        factory = factory_for(dataset, oracle)
        sched = MultiTenantScheduler(
            oracle, {0: factory(0)}, RoundRobinPicker()
        )
        trace = WorkloadTrace([
            WorkloadItem(time=0.1, action="arrive", user=4),
        ])
        with pytest.raises(RuntimeError, match="picker_factory"):
            oracle.run_concurrent(sched, max_jobs=8, arrivals=trace)


class TestDeterministicChurnReplay:
    """Record a churn workload, replay it, diff the event logs."""

    def _run_once(self, seed=0):
        dataset = generate_syn(0.5, 1.0, n_users=5, n_models=6, seed=0)
        generator = WorkloadGenerator(
            n_users=5, rate=3.0, departure_delay=2.0, seed=seed
        )
        membership = generator.generate(20).membership()
        oracle = build_oracle(dataset)
        factory = factory_for(dataset, oracle, base_seed=seed)
        sched = MultiTenantScheduler(
            oracle, {}, HybridPicker(seed=seed)
        )
        oracle.run_concurrent(
            sched,
            max_jobs=25,
            arrivals=membership,
            picker_factory=factory,
        )
        return oracle.log, membership

    def test_same_trace_same_log(self):
        log_a, trace_a = self._run_once(seed=3)
        log_b, trace_b = self._run_once(seed=3)
        assert trace_a == trace_b
        assert len(log_a) > 0
        # The determinism contract: replaying the same arrival/
        # departure schedule yields an empty trace diff.
        assert diff_event_logs(log_a, log_b) is None

    def test_different_schedules_diverge(self):
        log_a, _ = self._run_once(seed=3)
        log_b, _ = self._run_once(seed=4)
        assert diff_event_logs(log_a, log_b) is not None

    def test_trace_includes_churn(self):
        _, membership = self._run_once(seed=3)
        actions = {item.action for item in membership}
        assert actions == {"arrive", "depart"}
