"""Workload generation and JSONL trace record/replay."""

import pytest

from repro.datasets import generate_syn
from repro.engine.cluster import GPUPool
from repro.runtime.kernel import ClusterRuntime
from repro.runtime.placement import make_placement
from repro.runtime.trace import events_to_jsonl, makespan
from repro.runtime.workload import (
    WorkloadGenerator,
    WorkloadItem,
    WorkloadTrace,
    replay_trace,
)


class TestWorkloadItem:
    def test_submit_requires_model_and_gpu_time(self):
        with pytest.raises(ValueError, match="submit"):
            WorkloadItem(time=0.0, action="submit", user=0)

    def test_unknown_action(self):
        with pytest.raises(ValueError, match="action"):
            WorkloadItem(time=0.0, action="explode", user=0)

    def test_dict_round_trip(self):
        item = WorkloadItem(
            time=1.5, action="submit", user=2, model=3, gpu_time=0.5,
            reward=0.8,
        )
        assert WorkloadItem.from_dict(item.to_dict()) == item


class TestGenerator:
    def test_same_seed_same_trace(self):
        make = lambda: WorkloadGenerator(
            n_users=4, arrival="poisson", rate=2.0, seed=7
        ).generate(20)
        assert make() == make()
        assert make().dumps() == make().dumps()

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(n_users=4, seed=0).generate(20)
        b = WorkloadGenerator(n_users=4, seed=1).generate(20)
        assert a != b

    def test_deterministic_spacing(self):
        trace = WorkloadGenerator(
            n_users=2, arrival="deterministic", rate=4.0, seed=0
        ).generate(8)
        submits = [i.time for i in trace if i.action == "submit"]
        deltas = [b - a for a, b in zip(submits, submits[1:])]
        assert all(d == pytest.approx(0.25) for d in deltas)

    def test_arrivals_precede_first_submit(self):
        trace = WorkloadGenerator(n_users=3, seed=0).generate(15)
        arrived = set()
        for item in trace:
            if item.action == "submit":
                assert item.user in arrived
            elif item.action == "arrive":
                arrived.add(item.user)

    def test_departures_follow_last_submit(self):
        trace = WorkloadGenerator(
            n_users=3, seed=0, departure_delay=0.5
        ).generate(15)
        last_submit = {}
        for item in trace:
            if item.action == "submit":
                last_submit[item.user] = item.time
        for item in trace:
            if item.action == "depart":
                assert item.time == pytest.approx(
                    last_submit[item.user] + 0.5
                )
        assert sum(1 for i in trace if i.action == "depart") == len(
            last_submit
        )

    def test_dataset_backed_jobs(self):
        dataset = generate_syn(0.5, 1.0, seed=0)
        trace = WorkloadGenerator.from_dataset(dataset, seed=0).generate(25)
        for item in trace:
            if item.action == "submit":
                assert item.gpu_time == dataset.cost[item.user, item.model]
                assert item.reward == dataset.quality[item.user, item.model]

    def test_validation(self):
        with pytest.raises(ValueError, match="n_users"):
            WorkloadGenerator(n_users=0)
        with pytest.raises(ValueError, match="arrival"):
            WorkloadGenerator(n_users=1, arrival="bursty")
        with pytest.raises(ValueError, match="rate"):
            WorkloadGenerator(n_users=1, rate=0.0)
        with pytest.raises(ValueError, match="both"):
            WorkloadGenerator(n_users=1, quality=[[1.0]])
        with pytest.raises(ValueError, match="n_jobs"):
            WorkloadGenerator(n_users=1, seed=0).generate(0)


class TestTraceSerialisation:
    def test_jsonl_round_trip(self):
        trace = WorkloadGenerator(
            n_users=3, seed=0, departure_delay=1.0
        ).generate(12)
        assert WorkloadTrace.loads(trace.dumps()) == trace

    def test_file_round_trip(self, tmp_path):
        trace = WorkloadGenerator(n_users=3, seed=0).generate(12)
        path = trace.save(tmp_path / "trace.jsonl")
        assert WorkloadTrace.load(path) == trace

    def test_out_of_order_rejected(self):
        with pytest.raises(ValueError, match="out of order"):
            WorkloadTrace([
                WorkloadItem(time=2.0, action="arrive", user=0),
                WorkloadItem(time=1.0, action="arrive", user=1),
            ])

    def test_counts(self):
        trace = WorkloadGenerator(n_users=3, seed=0).generate(12)
        assert trace.n_jobs == 12
        assert set(trace.users()) <= set(range(3))


class TestDeterministicReplay:
    def run_once(self, trace, policy):
        runtime = ClusterRuntime(
            GPUPool(4, scaling_efficiency=0.9), make_placement(policy)
        )
        return replay_trace(trace, runtime)

    @pytest.mark.parametrize("policy", ["single", "dedicated", "partition"])
    def test_replay_is_bit_for_bit(self, policy):
        trace = WorkloadGenerator(n_users=4, rate=3.0, seed=3).generate(20)
        first = self.run_once(trace, policy)
        second = self.run_once(trace, policy)
        assert events_to_jsonl(first.log) == events_to_jsonl(second.log)
        assert makespan(first.log) == makespan(second.log)

    def test_replay_through_serialised_trace(self, tmp_path):
        trace = WorkloadGenerator(n_users=4, rate=3.0, seed=3).generate(20)
        reloaded = WorkloadTrace.load(trace.save(tmp_path / "w.jsonl"))
        direct = self.run_once(trace, "partition")
        replayed = self.run_once(reloaded, "partition")
        assert events_to_jsonl(direct.log) == events_to_jsonl(replayed.log)

    def test_departure_cancellations_replay(self):
        trace = WorkloadGenerator(
            n_users=4, rate=8.0, seed=5, departure_delay=0.01
        ).generate(30)
        first = self.run_once(trace, "single")
        second = self.run_once(trace, "single")
        assert events_to_jsonl(first.log) == events_to_jsonl(second.log)
