"""EventQueue invariants: ordering, FIFO ties, no time travel."""

import pytest

from repro.engine.events import EventKind
from repro.runtime.queue import EventQueue, ScheduledEvent


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EventKind.CUSTOM, i=3)
        queue.push(1.0, EventKind.CUSTOM, i=1)
        queue.push(2.0, EventKind.CUSTOM, i=2)
        assert [queue.pop().payload["i"] for _ in range(3)] == [1, 2, 3]

    def test_fifo_on_time_ties(self):
        queue = EventQueue()
        for i in range(10):
            queue.push(1.0, EventKind.CUSTOM, i=i)
        assert [queue.pop().payload["i"] for _ in range(10)] == list(range(10))

    def test_seq_is_global_not_per_time(self):
        queue = EventQueue()
        a = queue.push(5.0, EventKind.CUSTOM)
        b = queue.push(1.0, EventKind.CUSTOM)
        assert a.seq < b.seq
        assert queue.pop() is b

    def test_interleaved_push_pop_keeps_order(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.CUSTOM, i=0)
        queue.push(4.0, EventKind.CUSTOM, i=2)
        assert queue.pop().payload["i"] == 0
        queue.push(2.0, EventKind.CUSTOM, i=1)
        assert queue.pop().payload["i"] == 1
        assert queue.pop().payload["i"] == 2


class TestNoTimeTravel:
    def test_push_before_horizon_rejected(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.CUSTOM)
        queue.pop()
        with pytest.raises(ValueError, match="time travel"):
            queue.push(4.0, EventKind.CUSTOM)

    def test_push_at_horizon_allowed(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.CUSTOM)
        queue.pop()
        assert queue.push(5.0, EventKind.CUSTOM).time == 5.0

    def test_horizon_tracks_pops_not_pushes(self):
        queue = EventQueue()
        queue.push(9.0, EventKind.CUSTOM)
        assert queue.horizon == 0.0
        queue.push(1.0, EventKind.CUSTOM)
        queue.pop()
        assert queue.horizon == 1.0

    def test_start_offset(self):
        queue = EventQueue(start=10.0)
        with pytest.raises(ValueError, match="time travel"):
            queue.push(9.0, EventKind.CUSTOM)

    def test_non_finite_times_rejected(self):
        queue = EventQueue()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                queue.push(bad, EventKind.CUSTOM)
        with pytest.raises(ValueError, match="finite"):
            EventQueue(start=float("nan"))


class TestProtocol:
    def test_len_bool_peek(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        assert queue.peek() is None and queue.peek_time() is None
        event = queue.push(2.0, EventKind.CUSTOM)
        assert queue and len(queue) == 1
        assert queue.peek() is event
        assert queue.peek_time() == 2.0
        assert len(queue) == 1  # peek does not consume

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError, match="empty"):
            EventQueue().pop()

    def test_kind_coerced(self):
        event = EventQueue().push(0.0, "custom")
        assert isinstance(event, ScheduledEvent)
        assert event.kind is EventKind.CUSTOM
