"""Fixtures for the durable-control-plane tests (helpers:
persist_helpers.py)."""

import numpy as np
import pytest

from repro.ml.data import TaskSpec, make_task


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "state"


@pytest.fixture
def probe():
    X, _ = make_task(TaskSpec("moons", 60, 0.3, seed=0))
    return tuple(float(v) for v in np.asarray(X)[0])
