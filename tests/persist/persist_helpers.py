"""Shared helpers for the durable-control-plane tests.

Importable by name (unlike conftest, whose module name collides with
other test directories' conftests under subset pytest invocations).
"""

from repro.ml.data import TaskSpec, make_task

#: Small zoo + shapes shared across the persistence tests (kept in
#: sync with tests/service/service_helpers.py).
SMALL_ZOO = ["naive-bayes", "ridge", "tree-d4"]
MOONS_PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
BLOBS_PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[3]], []}}"


def gateway_kwargs(**overrides):
    """Keyword arguments for open_gateway's fresh-start path."""
    from repro.ml.zoo import default_zoo

    kwargs = dict(
        placement="partition",
        n_gpus=4,
        min_examples=10,
        seed=0,
        zoo=default_zoo().subset(SMALL_ZOO),
    )
    kwargs.update(overrides)
    return kwargs


def task_payload(kind, n=60, seed=0):
    X, y = make_task(TaskSpec(kind, n, 0.3, seed=seed))
    return (
        tuple(tuple(float(v) for v in row) for row in X),
        tuple(int(v) for v in y),
    )
