"""Snapshots: atomic publish, validation, fallback, compaction."""

import pytest

from repro.persist import (
    JournalRecord,
    Snapshot,
    SnapshotError,
    compact_records,
    list_snapshots,
    load_latest_snapshot,
    write_snapshot,
)


def _records(n=4, rtype="example_toggled"):
    return [
        JournalRecord(seq=i + 1, type=rtype, payload={"i": i})
        for i in range(n)
    ]


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path):
        records = _records()
        path = write_snapshot(tmp_path, 4, records, state_digest="abc")
        assert path.name == "snapshot-000000000004.json"
        snapshot = load_latest_snapshot(tmp_path)
        assert isinstance(snapshot, Snapshot)
        assert snapshot.seq == 4
        assert snapshot.state_digest == "abc"
        assert [r.payload for r in snapshot.records] == [
            {"i": i} for i in range(4)
        ]

    def test_no_snapshots_returns_none(self, tmp_path):
        assert load_latest_snapshot(tmp_path) is None
        assert load_latest_snapshot(tmp_path / "missing") is None

    def test_identical_records_write_identical_bytes(self, tmp_path):
        a = write_snapshot(tmp_path / "a", 4, _records(), state_digest="d")
        b = write_snapshot(tmp_path / "b", 4, _records(), state_digest="d")
        assert a.read_bytes() == b.read_bytes()

    def test_prune_keeps_newest_two(self, tmp_path):
        for seq in (2, 4, 6, 8):
            write_snapshot(tmp_path, seq, _records(seq))
        names = [p.name for p in list_snapshots(tmp_path)]
        assert names == [
            "snapshot-000000000006.json", "snapshot-000000000008.json",
        ]


class TestValidation:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        write_snapshot(tmp_path, 2, _records(2))
        newest = write_snapshot(tmp_path, 4, _records(4))
        newest.write_text(newest.read_text()[:-40], encoding="utf-8")
        snapshot = load_latest_snapshot(tmp_path)
        assert snapshot.seq == 2
        assert len(snapshot.skipped) == 1

    def test_all_corrupt_raises(self, tmp_path):
        path = write_snapshot(tmp_path, 2, _records(2))
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(SnapshotError, match="no snapshot"):
            load_latest_snapshot(tmp_path)

    def test_tampered_record_rejected(self, tmp_path):
        path = write_snapshot(tmp_path, 2, _records(2))
        text = path.read_text().replace('"i":0', '"i":7')
        path.write_text(text, encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_latest_snapshot(tmp_path)


class TestCompaction:
    def test_superseded_token_rotations_dropped(self):
        records = [
            JournalRecord(
                seq=1, type="tenant_created",
                payload={"name": "a", "token": "t0", "quota": {}},
            ),
            JournalRecord(
                seq=2, type="token_rotated",
                payload={"name": "a", "token": "t1"},
            ),
            JournalRecord(
                seq=3, type="examples_fed", payload={"app": "m"},
            ),
            JournalRecord(
                seq=4, type="token_rotated",
                payload={"name": "a", "token": "t2"},
            ),
            JournalRecord(
                seq=5, type="token_rotated",
                payload={"name": "b", "token": "u1"},
            ),
        ]
        compacted = compact_records(records)
        assert [r.seq for r in compacted] == [1, 3, 4, 5]

    def test_everything_else_kept_in_order(self):
        records = _records(5)
        assert compact_records(records) == records
