"""Crash recovery at the gateway level: replay, dispositions, tripwires."""

import json
import shutil

import pytest

from persist_helpers import (
    BLOBS_PROGRAM,
    MOONS_PROGRAM,
    gateway_kwargs,
    task_payload,
)

from repro.persist import (
    JournalError,
    RecoveryError,
    list_snapshots,
    open_gateway,
    read_journal,
    recover_gateway,
    state_digest,
)
from repro.persist.journal import record_checksum
from repro.service import ApiError, ApiErrorCode, ServiceGateway, TenantQuota
from repro.service.api import (
    AppStatusRequest,
    FeedRequest,
    InferRequest,
    JobStatusRequest,
    ListJobsRequest,
    RegisterAppRequest,
    SubmitTrainingRequest,
)


def _fresh(state_dir, **overrides):
    gateway, report = open_gateway(state_dir, **gateway_kwargs(**overrides))
    assert report is None
    return gateway


def _onboard(gateway, tenant="alice", app="moons", program=MOONS_PROGRAM,
             kind="moons", seed=0):
    token = gateway.create_tenant(tenant)
    gateway.handle(
        RegisterAppRequest(auth_token=token, app=app, program=program)
    )
    inputs, outputs = task_payload(kind, seed=seed)
    gateway.handle(
        FeedRequest(auth_token=token, app=app, inputs=inputs,
                    outputs=outputs)
    )
    return token


def _poll_to_done(gateway, token, handle_id):
    while True:
        status = gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle_id)
        )
        if status.done:
            return status


class TestRoundTrip:
    def test_everything_survives_a_restart(self, state_dir):
        gateway = _fresh(state_dir)
        token = _onboard(gateway)
        gateway.set_quota(
            "alice",
            TenantQuota(max_apps=7, max_pending_jobs=9,
                        max_store_bytes=1 << 22),
        )
        token = gateway.rotate_token("alice")
        response = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        )
        statuses = [
            _poll_to_done(gateway, token, h.job_id)
            for h in response.handles
        ]
        live_digest = state_digest(gateway)
        gateway.store.close()

        recovered, report = recover_gateway(state_dir)
        assert state_digest(recovered) == live_digest
        assert report.tenants == ["alice"]
        # The rotated token (not the original) authenticates.
        assert recovered.tenant_token("alice") == token
        tenant = recovered._tenant_names["alice"]
        assert tenant.quota.max_apps == 7
        # Terminal job results are intact, accuracy and all.
        for status in statuses:
            again = recovered.handle(
                JobStatusRequest(auth_token=token, job_id=status.job_id)
            )
            assert again.state == "finished"
            assert again.accuracy == status.accuracy
            assert again.disposition is None
        # The trained model still serves.
        app_status = recovered.handle(
            AppStatusRequest(auth_token=token, app="moons")
        )
        assert app_status.best_candidate is not None
        recovered.store.close()

    def test_two_tenants_interleaved(self, state_dir):
        gateway = _fresh(state_dir)
        alice = _onboard(gateway, "alice", "moons", MOONS_PROGRAM, "moons")
        bob = _onboard(
            gateway, "bob", "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        ha = gateway.handle(
            SubmitTrainingRequest(auth_token=alice, app="moons", steps=2)
        ).handles
        hb = gateway.handle(
            SubmitTrainingRequest(auth_token=bob, app="blobs", steps=2)
        ).handles
        for token, handles in ((alice, ha), (bob, hb)):
            for handle in handles:
                _poll_to_done(gateway, token, handle.job_id)
        live = state_digest(gateway)
        gateway.store.close()
        recovered, _ = recover_gateway(state_dir)
        assert state_digest(recovered) == live
        # Tenant isolation survives: bob cannot see alice's jobs.
        jobs = recovered.handle(ListJobsRequest(auth_token=bob))
        assert {h.app for h in jobs.jobs} == {"blobs"}
        recovered.store.close()


class TestDeterminism:
    def test_replaying_twice_yields_byte_identical_snapshots(
        self, state_dir, tmp_path
    ):
        gateway = _fresh(state_dir)
        token = _onboard(gateway)
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=3)
        ).handles
        _poll_to_done(gateway, token, handles[0].job_id)
        gateway.store.close()

        copies = []
        for name in ("one", "two"):
            copy = tmp_path / name
            shutil.copytree(state_dir, copy)
            recovered, _ = recover_gateway(copy)
            path = recovered.store.snapshot(state_digest(recovered))
            recovered.store.close()
            copies.append(path.read_bytes())
        assert copies[0] == copies[1]

    def test_snapshot_digest_tripwire(self, state_dir):
        gateway = _fresh(state_dir, snapshot_every=2)
        token = _onboard(gateway)  # >= 3 records: snapshot taken
        assert list_snapshots(state_dir)
        gateway.store.close()
        # Tamper with a snapshot record in a checksum-consistent way:
        # replay then diverges from the embedded state digest.
        path = list_snapshots(state_dir)[-1]
        document = json.loads(path.read_text())
        for record in document["records"]:
            if record["type"] == "quota_changed":  # pragma: no cover
                break
        record = next(
            r for r in document["records"] if r["type"] == "tenant_created"
        )
        record["payload"]["quota"]["max_apps"] = 99
        record["crc"] = record_checksum(
            record["seq"], record["type"], record["payload"]
        )
        import hashlib

        hasher = hashlib.sha256()
        from repro.persist import JournalRecord

        for r in document["records"]:
            hasher.update(
                JournalRecord(
                    seq=r["seq"], type=r["type"], payload=r["payload"]
                ).to_line().encode()
            )
            hasher.update(b"\n")
        document["checksum"] = hasher.hexdigest()
        from repro.persist import canonical_json

        path.write_text(canonical_json(document) + "\n")
        with pytest.raises(RecoveryError, match="digest"):
            recover_gateway(state_dir)

    def test_diverged_journal_record_refused(self, state_dir):
        gateway = _fresh(state_dir)
        token = _onboard(gateway)
        gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=1)
        )
        gateway.store.close()
        journal = state_dir / "journal.jsonl"
        lines = journal.read_text().splitlines()
        index, data = next(
            (i, json.loads(line))
            for i, line in enumerate(lines)
            if json.loads(line)["type"] == "job_submitted"
        )
        data["payload"]["handles"] = ["job-99999"]
        data["crc"] = record_checksum(
            data["seq"], data["type"], data["payload"]
        )
        lines[index] = json.dumps(data)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError, match="handles"):
            recover_gateway(state_dir)


class TestDispositions:
    def _crash_with_in_flight(self, state_dir):
        gateway = _fresh(state_dir)
        token = _onboard(gateway)
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=3)
        ).handles
        _poll_to_done(gateway, token, handles[0].job_id)
        in_flight = [
            h.job_id
            for h in gateway.handle(
                ListJobsRequest(auth_token=token)
            ).jobs
            if h.state in ("pending", "running", "preempted")
        ]
        assert in_flight, "scenario needs at least one in-flight job"
        gateway.store.close()
        return token, in_flight

    def test_requeue_recovers_and_completes(self, state_dir):
        token, in_flight = self._crash_with_in_flight(state_dir)
        recovered, report = recover_gateway(state_dir, in_flight="requeue")
        assert report.recovered == sorted(in_flight)
        assert report.lost == []
        for handle_id in in_flight:
            status = recovered.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.disposition == "recovered"
        # Requeued jobs complete on the rebuilt cluster.
        for handle_id in in_flight:
            status = _poll_to_done(recovered, token, handle_id)
            assert status.state == "finished"
            assert status.accuracy is not None
        recovered.store.close()

    def test_mark_lost_cancels_and_is_journaled(self, state_dir):
        token, in_flight = self._crash_with_in_flight(state_dir)
        recovered, report = recover_gateway(
            state_dir, in_flight="mark-lost"
        )
        assert report.lost == sorted(in_flight)
        for handle_id in in_flight:
            status = recovered.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.state == "cancelled"
            assert status.disposition == "lost"
            assert status.done
        recovered.store.close()
        # The cancellation was journaled: a SECOND recovery agrees
        # (state "cancelled"), instead of resurrecting the jobs.
        again, _ = recover_gateway(state_dir)
        for handle_id in in_flight:
            status = again.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.state == "cancelled"
        again.store.close()


class TestRecoveringGate:
    def test_requests_rejected_while_recovering(self, state_dir):
        gateway = _fresh(state_dir)
        gateway._recovering = True
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(ListJobsRequest(auth_token="whatever"))
        assert excinfo.value.code is ApiErrorCode.UNAVAILABLE_RECOVERING
        assert excinfo.value.http_status == 503
        gateway._recovering = False
        gateway.store.close()


class TestRetiredTenant:
    def test_poll_racing_retirement_returns_cancelled(self, state_dir):
        """The satellite fix: CANCELLED, never NOT_FOUND."""
        gateway = _fresh(state_dir)
        token = _onboard(gateway)
        # More jobs than devices (partition runs up to n_gpus=4
        # concurrently), so retirement finds genuinely queued jobs.
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=6)
        ).handles
        cancelled = gateway.retire_tenant("alice")
        assert cancelled, "retirement should cancel queued jobs"
        for handle_id in cancelled:
            status = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.state == "cancelled"
            assert status.done
        # Mutations are refused, reads still work.
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                SubmitTrainingRequest(auth_token=token, app="moons")
            )
        assert excinfo.value.code is ApiErrorCode.FAILED_PRECONDITION
        live_digest = state_digest(gateway)
        gateway.store.close()
        # Retirement (and the cancellations) survive a restart.
        recovered, _ = recover_gateway(state_dir)
        assert state_digest(recovered) == live_digest
        assert recovered._tenant_names["alice"].retired
        for handle_id in cancelled:
            status = recovered.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.state == "cancelled"
        assert handles  # the full submit batch stayed addressable
        recovered.store.close()


class TestGuards:
    def test_recover_missing_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(RecoveryError, match="config.json"):
            recover_gateway(tmp_path / "nothing")

    def test_external_server_cannot_be_made_durable(self, tmp_path):
        from repro.ml.zoo import default_zoo
        from repro.platform.server import EaseMLServer

        server = EaseMLServer(
            default_zoo().subset(["naive-bayes", "ridge"]),
            runtime_placement="partition",
        )
        with pytest.raises(RecoveryError, match="externally-built"):
            open_gateway(
                tmp_path / "state",
                gateway_factory=lambda _: ServiceGateway(server=server),
            )

    def test_adoption_refused_with_store(self, state_dir):
        gateway = _fresh(state_dir)
        with pytest.raises(ValueError, match="adopt"):
            gateway.create_tenant("eve", apps=["anything"])
        gateway.store.close()

    def test_recovered_config_overrides_kwargs(self, state_dir):
        gateway = _fresh(state_dir, n_gpus=2)
        gateway.create_tenant("alice")
        gateway.store.close()
        recovered, _ = open_gateway(state_dir, **gateway_kwargs(n_gpus=16))
        assert recovered.server.n_gpus == 2
        recovered.store.close()

    def test_bad_in_flight_policy(self, state_dir):
        gateway = _fresh(state_dir)
        gateway.store.close()
        with pytest.raises(ValueError, match="in_flight"):
            recover_gateway(state_dir, in_flight="psychic")

    def test_journal_hygiene_after_torn_tail(self, state_dir):
        gateway = _fresh(state_dir)
        _onboard(gateway)
        gateway.store.close()
        journal = state_dir / "journal.jsonl"
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 77, "typ')
        recovered, report = recover_gateway(state_dir)
        assert report.dropped_tail == 1
        # The torn line was shed: the file validates end to end again.
        records, dropped = read_journal(journal)
        assert dropped == 0
        recovered.store.close()

    def test_open_gateway_honours_journal_error_type(self, state_dir):
        gateway = _fresh(state_dir)
        gateway.store.close()
        (state_dir / "config.json").write_text("[1, 2]")
        with pytest.raises(JournalError):
            open_gateway(state_dir, **gateway_kwargs())

    def test_single_writer_lock(self, state_dir):
        gateway = _fresh(state_dir)
        gateway.create_tenant("alice")
        # A second opener (say, `repro state compact` against a live
        # server) must fail fast instead of interleaving seqs.
        with pytest.raises(JournalError, match="locked"):
            recover_gateway(state_dir)
        gateway.store.close()
        recovered, _ = recover_gateway(state_dir)  # lock released
        recovered.store.close()

    def test_torn_effect_record_does_not_poison_the_directory(
        self, state_dir
    ):
        """A torn-off *effect* record is re-journaled by recovery, so
        the directory stays recoverable forever after."""
        gateway = _fresh(state_dir)
        alice = _onboard(gateway)
        handle = gateway.handle(
            SubmitTrainingRequest(auth_token=alice, app="moons", steps=1)
        ).handles[0]
        _poll_to_done(gateway, alice, handle.job_id)
        # A second tenant joins the live run: its submit admits it as
        # a late arrival, which journals an app_admitted effect.
        bob = _onboard(gateway, "bob", "blobs", BLOBS_PROGRAM, "blobs",
                       seed=1)
        gateway.handle(
            SubmitTrainingRequest(auth_token=bob, app="blobs", steps=1)
        )
        gateway.store.close()
        journal = state_dir / "journal.jsonl"
        lines = journal.read_text().splitlines()
        from repro.persist import EFFECT_TYPES

        torn_type = json.loads(lines[-1])["type"]
        assert torn_type in EFFECT_TYPES
        # Crash window: the primary fsynced, its effect record did not.
        journal.write_text("\n".join(lines[:-1]) + "\n")
        first, _ = recover_gateway(state_dir)
        # The replayed effect is back on disk...
        types = [r.type for r in read_journal(journal)[0]]
        assert types[-1] == torn_type
        # ...so further mutations and further recoveries work.
        first.create_tenant("carol")
        digest = state_digest(first)
        first.store.close()
        second, _ = recover_gateway(state_dir)
        assert state_digest(second) == digest
        second.store.close()
