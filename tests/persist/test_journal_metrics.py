"""The offline journal-metrics helper behind ``repro state inspect``."""

from repro.obs import MetricsRegistry
from repro.persist import journal_metrics
from repro.persist.journal import JournalRecord


def make_record(seq, rtype="tenant_created", payload=None):
    payload = payload if payload is not None else {"name": f"t{seq}"}
    return JournalRecord(seq=seq, type=rtype, payload=payload)


class TestJournalMetrics:
    def test_counts_bytes_and_lag(self):
        records = [
            make_record(1),
            make_record(2, "app_registered", {"app": "m"}),
            make_record(3, "app_registered", {"app": "n"}),
        ]
        registry = journal_metrics(records, snapshot_seq=1)
        counts = registry.get("journal_records_total")
        by_type = {
            labels[0]: child.value
            for labels, child in counts.children()
        }
        assert by_type == {"tenant_created": 1.0, "app_registered": 2.0}
        expected_bytes = sum(
            len(r.to_line().encode("utf-8")) + 1 for r in records
        )
        assert registry.get("journal_bytes_total").value == expected_bytes
        assert registry.get("journal_commit_lag_records").value == 2.0

    def test_empty_basis(self):
        registry = journal_metrics([], snapshot_seq=5)
        assert registry.get("journal_records_total").children() == []
        assert registry.get("journal_bytes_total").value == 0.0
        assert registry.get("journal_commit_lag_records").value == 0.0

    def test_live_and_offline_bytes_agree_on_non_ascii(self, tmp_path):
        """``journal_bytes_total`` counts on-disk utf-8 bytes in both
        the live journal and the offline ``state inspect`` view — a
        character count would diverge for any non-ASCII payload."""
        from repro.persist.journal import Journal, read_journal

        path = tmp_path / "wal.jsonl"
        registry = MetricsRegistry()
        journal = Journal(path, sync="buffered")
        journal.bind_metrics(registry)
        journal.append("tenant_created", {"name": "café-über-☃"})
        journal.close()
        live = registry.get("journal_bytes_total").value
        records, dropped = read_journal(path)
        assert dropped == 0
        offline = journal_metrics(records).get("journal_bytes_total").value
        assert live == offline == path.stat().st_size

    def test_shares_families_with_a_live_registry(self):
        """Same names as the live journal: re-registration, no clash."""
        registry = MetricsRegistry()
        live = registry.counter(
            "journal_records_total",
            "Records appended to the journal, by type.",
            ["type"],
        )
        live.labels("tenant_created").inc()
        journal_metrics([make_record(1)], registry=registry)
        family = registry.get("journal_records_total")
        assert family is live
        assert dict(family.children())[("tenant_created",)].value == 2.0
