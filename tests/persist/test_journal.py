"""The write-ahead journal: format, checksums, crash tolerance."""

import json

import pytest

from repro.persist import (
    Journal,
    JournalCorruptionError,
    JournalError,
    JournalRecord,
    RECORD_TYPES,
    read_journal,
    record_checksum,
    rewrite_journal,
)


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.jsonl"


class TestAppendAndRead:
    def test_round_trip(self, journal_path):
        journal = Journal(journal_path, sync="buffered")
        first = journal.append("tenant_created", {"name": "a", "token": "t"})
        second = journal.append("app_registered", {"app": "m"})
        journal.close()
        assert (first.seq, second.seq) == (1, 2)
        records, dropped = read_journal(journal_path)
        assert dropped == 0
        assert [r.type for r in records] == [
            "tenant_created", "app_registered",
        ]
        assert records[0].payload == {"name": "a", "token": "t"}

    def test_sequencing_continues_from_start_seq(self, journal_path):
        journal = Journal(journal_path, sync="buffered", start_seq=41)
        assert journal.append("app_closed", {}).seq == 42

    def test_fsync_mode_appends(self, journal_path):
        journal = Journal(journal_path, sync="fsync")
        journal.append("quota_changed", {"name": "a"})
        journal.close()
        records, _ = read_journal(journal_path)
        assert len(records) == 1

    def test_missing_file_reads_empty(self, tmp_path):
        records, dropped = read_journal(tmp_path / "nope.jsonl")
        assert records == [] and dropped == 0

    def test_closed_registry_rejects_unknown_type(self, journal_path):
        journal = Journal(journal_path, sync="buffered")
        with pytest.raises(JournalError, match="closed"):
            journal.append("psychic_event", {})
        assert "psychic_event" not in RECORD_TYPES

    def test_invalid_sync_mode(self, journal_path):
        with pytest.raises(ValueError, match="sync"):
            Journal(journal_path, sync="psychic")

    def test_append_after_close_fails(self, journal_path):
        journal = Journal(journal_path, sync="buffered")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("app_closed", {})


class TestCrashTolerance:
    def _write(self, journal_path, n=3):
        journal = Journal(journal_path, sync="buffered")
        for i in range(n):
            journal.append("example_toggled", {"i": i})
        journal.close()

    def test_torn_tail_record_is_dropped(self, journal_path):
        self._write(journal_path)
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "type": "app_clo')
        records, dropped = read_journal(journal_path)
        assert dropped == 1
        assert [r.seq for r in records] == [1, 2, 3]

    def test_bad_checksum_refuses_to_load(self, journal_path):
        self._write(journal_path)
        lines = journal_path.read_text().splitlines()
        data = json.loads(lines[1])
        data["payload"]["i"] = 99  # tamper without fixing the crc
        lines[1] = json.dumps(data)
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError, match="checksum"):
            read_journal(journal_path)

    def test_mid_file_garbage_refuses_to_load(self, journal_path):
        self._write(journal_path)
        lines = journal_path.read_text().splitlines()
        lines[0] = "not json at all"
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError, match="not the final"):
            read_journal(journal_path)

    def test_sequence_gap_refuses_to_load(self, journal_path):
        self._write(journal_path)
        lines = journal_path.read_text().splitlines()
        data = json.loads(lines[2])
        data["seq"] = 9
        data["crc"] = record_checksum(9, data["type"], data["payload"])
        lines[2] = json.dumps(data)
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError, match="contiguous"):
            read_journal(journal_path)

    def test_unknown_type_on_disk_refuses_to_load(self, journal_path):
        self._write(journal_path, n=1)
        lines = journal_path.read_text().splitlines()
        data = json.loads(lines[0])
        data["type"] = "from_the_future"
        data["crc"] = record_checksum(
            data["seq"], data["type"], data["payload"]
        )
        lines[0] = json.dumps(data)
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError, match="unknown record"):
            read_journal(journal_path)


class TestRewrite:
    def test_rewrite_replaces_atomically(self, journal_path):
        journal = Journal(journal_path, sync="buffered")
        for i in range(4):
            journal.append("example_toggled", {"i": i})
        journal.close()
        records, _ = read_journal(journal_path)
        rewrite_journal(journal_path, records[2:])
        kept, dropped = read_journal(journal_path)
        assert dropped == 0
        assert [r.seq for r in kept] == [3, 4]

    def test_record_checksum_is_payload_sensitive(self):
        a = record_checksum(1, "app_closed", {"app": "x"})
        b = record_checksum(1, "app_closed", {"app": "y"})
        assert a != b
        record = JournalRecord(seq=1, type="app_closed", payload={"app": "x"})
        assert record.crc == a


class TestGroupCommit:
    """``sync="group"``: deferred fsync shared per commit convoy."""

    def test_records_land_and_commit_is_idempotent(self, journal_path):
        journal = Journal(journal_path, sync="group")
        journal.append("tenant_created", {"name": "a", "token": "t"})
        journal.append("app_registered", {"app": "m"})
        journal.commit()
        assert journal.flushed_seq == 2
        journal.commit()  # covered: must not fsync again
        journal.close()
        records, dropped = read_journal(journal_path)
        assert dropped == 0
        assert [r.seq for r in records] == [1, 2]

    def test_append_defers_fsync_to_commit(self, journal_path, monkeypatch):
        import os as os_module

        import repro.persist.journal as journal_module

        calls = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            journal_module.os, "fsync",
            lambda fd: (calls.append(fd), real_fsync(fd)),
        )
        journal = Journal(journal_path, sync="group")
        for i in range(5):
            journal.append("example_toggled", {"i": i})
        assert calls == []  # appends alone never touch the disk
        journal.commit()
        assert len(calls) == 1  # one fsync covers all five records
        assert journal.flushed_seq == 5

    def test_convoy_shares_one_fsync(self, journal_path, monkeypatch):
        """N concurrent append+commit cycles fsync far fewer than N times."""
        import threading

        import repro.persist.journal as journal_module

        fsyncs = []
        slow = threading.Event()

        def counting_fsync(fd):
            fsyncs.append(fd)
            slow.wait(0.05)  # stretch the leader so followers convoy

        monkeypatch.setattr(journal_module.os, "fsync", counting_fsync)
        journal = Journal(journal_path, sync="group")
        n = 16

        def mutate(i):
            record = journal.append("example_toggled", {"i": i})
            journal.commit(record.seq)

        threads = [
            threading.Thread(target=mutate, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert journal.flushed_seq == n
        # Every commit was covered by *some* fsync, but convoying means
        # far fewer fsyncs than mutations (the close adds one more).
        assert 1 <= len(fsyncs) < n
        monkeypatch.setattr(journal_module.os, "fsync", lambda fd: None)
        journal.close()
        records, dropped = read_journal(journal_path)
        assert dropped == 0
        assert len(records) == n

    def test_fsync_mode_tracks_flushed_seq_per_append(self, journal_path):
        journal = Journal(journal_path, sync="fsync")
        journal.append("app_closed", {})
        assert journal.flushed_seq == 1
        journal.commit()  # a no-op outside group mode
        journal.close()

    def test_commit_after_close_fails(self, journal_path):
        journal = Journal(journal_path, sync="group")
        journal.append("app_closed", {})
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.commit(99)
