"""Cross-module integration tests.

These exercise the full stack the way the paper's deployment does:
declare → feed → schedule → infer (live), and trace-driven multi-tenant
scheduling with regret/bound validation.
"""

import numpy as np
import pytest

from repro.core import (
    GPUCB,
    AlgorithmOneBeta,
    GPUCBPicker,
    HybridPicker,
    MatrixOracle,
    MultiTenantRegretTracker,
    MultiTenantScheduler,
    RoundRobinPicker,
    TheoremBeta,
)
from repro.core.theory import (
    theorem1_bound,
    theorem2_bound,
    theorem3_bound,
)
from repro.core.user_picking import GreedyPicker
from repro.datasets import load_deeplearning
from repro.engine import ClusterOracle, GPUPool, TraceTrainer
from repro.gp import FiniteArmGP, empirical_model_covariance
from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.platform import EaseMLServer, program_from_shapes


class TestTheoremBoundsHold:
    """Measured regret must stay below the theorem RHS on seeded runs."""

    def test_theorem1_single_tenant(self):
        ds = load_deeplearning(seed=0)
        user = 0
        costs = ds.cost[user]
        c_star = float(np.max(costs))
        cov = empirical_model_covariance(ds.quality)
        noise = 0.05
        ucb = GPUCB(
            FiniteArmGP(cov, noise=noise),
            TheoremBeta(ds.n_models, c_star=c_star),
            costs,
        )
        rng = np.random.default_rng(1)
        draw = lambda a: float(
            np.clip(ds.quality[user, a] + 0.02 * rng.normal(), 0, 1)
        )
        ucb.run(draw, 40)
        measured = sum(
            costs[a] * (ds.best_quality(user) - ds.quality[user, a])
            for a in ucb.arms_played
        )
        bound = theorem1_bound(
            ucb.selected_variances, ucb.betas_used[-1], noise, c_star
        )
        assert measured <= bound

    @pytest.mark.parametrize(
        "picker_cls,bound_fn",
        [
            (RoundRobinPicker, theorem2_bound),
            (GreedyPicker, theorem3_bound),
        ],
    )
    def test_multi_tenant_bounds(self, picker_cls, bound_fn):
        ds = load_deeplearning(seed=0).subset_users(range(5))
        cov = empirical_model_covariance(load_deeplearning(seed=0).quality)
        noise = 0.05
        c_star = float(np.max(ds.cost))
        c_lower = float(np.min(ds.cost))
        oracle = MatrixOracle(ds.quality, ds.cost, noise_std=0.02, seed=2)
        beta = TheoremBeta(
            ds.n_models, c_star=c_star, n_users=ds.n_users
        )
        pickers = [
            GPUCBPicker(cov, beta, oracle.costs(i), noise=noise)
            for i in range(ds.n_users)
        ]
        sched = MultiTenantScheduler(oracle, pickers, picker_cls())
        result = sched.run(max_steps=60)

        tracker = MultiTenantRegretTracker(
            [ds.quality[i] for i in range(ds.n_users)]
        )
        for record in result.records:
            tracker.record(record.user, record.arm, record.cost)

        per_user_vars = [
            t.picker.ucb.selected_variances for t in sched.tenants
        ]
        beta_star = beta(result.n_steps)
        if bound_fn is theorem2_bound:
            bound = bound_fn(
                per_user_vars, beta_star, [noise] * ds.n_users,
                c_star, c_lower,
            )
        else:
            bound = bound_fn(
                per_user_vars, beta_star, [noise] * ds.n_users, c_star
            )
        assert tracker.cumulative <= bound


class TestTraceDrivenPipeline:
    def test_scheduler_over_simulated_cluster(self):
        ds = load_deeplearning(seed=0)
        oracle = ClusterOracle(
            TraceTrainer(ds, noise_std=0.01, seed=3),
            GPUPool(24, 0.9),
        )
        cov = empirical_model_covariance(ds.quality)
        pickers = [
            GPUCBPicker(
                cov,
                AlgorithmOneBeta(ds.n_models),
                oracle.costs(i),
                noise=0.05,
            )
            for i in range(ds.n_users)
        ]
        sched = MultiTenantScheduler(oracle, pickers, HybridPicker())
        budget = 0.05 * ds.total_cost() / oracle.pool.speedup()
        result = sched.run(cost_budget=budget)
        assert result.n_steps > 0
        # Wall-clock bookkeeping is consistent across layers.
        assert oracle.clock.now == pytest.approx(result.total_cost)
        assert len(oracle.finished_jobs()) == result.n_steps
        # Every user the scheduler touched got a model back.
        served = set(result.users())
        for user in served:
            best = max(
                r.reward for r in result.records if r.user == user
            )
            assert best > 0.0


class TestLivePlatformPipeline:
    def test_declare_feed_schedule_infer(self):
        zoo = default_zoo().subset(
            ["naive-bayes", "ridge", "tree-d4", "knn-5", "logreg-fast"]
        )
        server = EaseMLServer(zoo, strategy="hybrid", seed=1)
        tasks = {
            "blobs": (3, TaskSpec("blobs", 150, 0.2, seed=0)),
            "moons": (2, TaskSpec("moons", 150, 0.3, seed=1)),
            "xor": (2, TaskSpec("xor", 150, 0.3, seed=2)),
        }
        apps = {}
        data = {}
        for name, (n_classes, spec) in tasks.items():
            app = server.register_app(
                program_from_shapes([2], [n_classes]), name
            )
            X, y = make_task(spec)
            app.feed(list(X), [int(v) for v in y])
            apps[name] = app
            data[name] = (X, y)

        server.run(max_steps=15)

        for name, app in apps.items():
            assert app.best_accuracy > 0.6, name
            X, y = data[name]
            # Infer agrees with the held model on training points most
            # of the time (sanity, not exact accuracy).
            predictions = [app.infer(x) for x in X[:30]]
            agreement = np.mean(np.array(predictions) == y[:30])
            assert agreement > 0.5, name

    def test_refine_changes_training_data(self):
        zoo = default_zoo().subset(["naive-bayes", "ridge"])
        server = EaseMLServer(zoo, strategy="round_robin", seed=0,
                              min_examples=5)
        app = server.register_app(program_from_shapes([1], [2]), "a")
        # Feed clean data plus corrupted labels, then disable the
        # corrupted half via refine.
        X_clean = np.linspace(-1, 1, 20).reshape(-1, 1)
        y_clean = (X_clean.ravel() > 0).astype(int)
        ids_clean = app.feed(list(X_clean), [int(v) for v in y_clean])
        ids_bad = app.feed(list(X_clean), [int(1 - v) for v in y_clean])
        for eid in ids_bad:
            app.set_example_enabled(eid, False)
        X, Y = app.store.enabled_arrays()
        assert X.shape[0] == len(ids_clean)
        server.run(max_steps=2)
        assert app.best_accuracy > 0.8
