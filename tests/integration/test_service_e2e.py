"""The acceptance scenario for the service API (ISSUE 2).

Starts the HTTP server, registers two tenant apps via the SDK, feeds
examples, submits training asynchronously, polls job handles to
completion, and gets correct infer answers — with every error path
returning a typed ApiError (no raw tracebacks across the wire).
"""

import pytest

from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.service import (
    ApiError,
    ApiErrorCode,
    EaseMLClient,
    ServiceGateway,
    serve_background,
)

MOONS = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
BLOBS = "{input: {[Tensor[2]], []}, output: {[Tensor[3]], []}}"


@pytest.fixture(scope="module", params=["threading", "asyncio"])
def stack(request):
    """The full service stack, parametrized over both HTTP frontends."""
    gateway = ServiceGateway(
        placement="partition",
        n_gpus=4,
        zoo=default_zoo().subset(["naive-bayes", "ridge", "tree-d4"]),
        seed=0,
    )
    server, _ = serve_background(gateway, frontend=request.param)
    yield gateway, server
    server.shutdown()
    server.server_close()


def test_service_end_to_end(stack):
    gateway, server = stack
    alice = EaseMLClient(server.url, gateway.create_tenant("alice"))
    bob = EaseMLClient(server.url, gateway.create_tenant("bob"))

    # --- two tenants declare apps and feed labelled examples --------
    assert alice.register_app("moons", MOONS).n_candidates == 3
    assert bob.register_app("blobs", BLOBS).workload_kind == (
        "general classification"
    )
    Xa, ya = make_task(TaskSpec("moons", 80, 0.3, seed=0))
    Xb, yb = make_task(TaskSpec("blobs", 80, 0.3, seed=1))
    assert alice.feed(
        "moons", Xa.tolist(), [int(v) for v in ya]
    ).n_enabled == 80
    assert bob.feed(
        "blobs", Xb.tolist(), [int(v) for v in yb]
    ).n_enabled == 80

    # --- async training: handles come back immediately --------------
    handles_a = alice.submit_training("moons", steps=3)
    handles_b = bob.submit_training("blobs", steps=3)
    assert [h.state for h in handles_a + handles_b] == ["pending"] * 6

    # --- poll handles to completion; completions interleave ----------
    statuses = list(alice.wait_all(handles_a)) + list(
        bob.wait_all(handles_b)
    )
    assert all(s.state == "finished" for s in statuses)
    assert all(0.0 <= s.accuracy <= 1.0 for s in statuses)

    jobs = gateway.server._runtime_oracle.finished_jobs()
    assert len(jobs) == 6
    spans = sorted((j.start_time, j.end_time) for j in jobs)
    assert any(
        later < end for (_, end), (later, _) in zip(spans, spans[1:])
    ), "expected overlapping training jobs on the shared cluster"

    # --- correct inference through the best model so far -------------
    correct_a = sum(
        alice.infer("moons", x.tolist()).prediction == int(label)
        for x, label in zip(Xa[:20], ya[:20])
    )
    assert correct_a >= 14  # well above the 50% chance level
    correct_b = sum(
        bob.infer("blobs", x.tolist()).prediction == int(label)
        for x, label in zip(Xb[:20], yb[:20])
    )
    assert correct_b >= 12  # well above the 33% chance level

    # --- infer answers are stamped with the run that trained them ---
    stamped = alice.infer("moons", Xa[0].tolist())
    assert stamped.model_version is not None
    assert stamped.model_version in {h.job_id for h in handles_a}

    # --- dynamic membership: a tenant joins the live run -------------
    late = EaseMLClient(server.url, gateway.create_tenant("carol"))
    assert late.register_app("late", MOONS).n_candidates == 3
    Xl, yl = make_task(TaskSpec("moons", 60, 0.3, seed=2))
    late.feed("late", Xl.tolist(), [int(v) for v in yl])
    late_handles = late.submit_training("late", steps=2)
    late_statuses = late.wait_all(late_handles)
    assert all(s.state == "finished" for s in late_statuses)
    arrived = late.events(kinds=["user_arrived"]).events
    assert len(arrived) == 1  # the USER_ARRIVED of carol's admission

    # --- and departs mid-run, draining its in-flight work ------------
    closing = late.submit_training("late", steps=2)
    closed = late.close_app("late")
    assert closed.was_admitted
    final = late.wait_all(closing)
    assert all(s.state in ("finished", "failed") for s in final)
    departed = late.events(kinds=["user_departed"]).events
    assert len(departed) == 1
    with pytest.raises(ApiError) as excinfo:
        late.submit_training("late")
    assert excinfo.value.code is ApiErrorCode.FAILED_PRECONDITION
    # A closed app keeps serving infer from its best model.
    assert late.infer("late", Xl[0].tolist()).prediction in (0, 1)

    # --- every error path is a typed ApiError ------------------------
    cases = [
        (lambda: alice.app_status("ghost"), ApiErrorCode.NOT_FOUND),
        (lambda: bob.refine("moons"), ApiErrorCode.NOT_FOUND),
        (
            lambda: late.close_app("late"),
            ApiErrorCode.CONFLICT,
        ),
        (
            lambda: alice.feed("moons", [[1.0, 2.0, 3.0]], [0]),
            ApiErrorCode.INVALID_ARGUMENT,
        ),
        (
            lambda: alice.set_example_enabled("moons", 10_000, True),
            ApiErrorCode.NOT_FOUND,
        ),
        (
            lambda: EaseMLClient(server.url, "bogus").list_apps(),
            ApiErrorCode.UNAUTHORIZED,
        ),
        (lambda: alice.job_status("job-777777"), ApiErrorCode.NOT_FOUND),
    ]
    for trigger, expected_code in cases:
        with pytest.raises(ApiError) as excinfo:
            trigger()
        assert excinfo.value.code is expected_code
        assert "Traceback" not in excinfo.value.message

    # --- the event log records the story, scoped to each tenant ------
    finished_a = alice.events(kinds=["job_finished"]).events
    finished_b = bob.events(kinds=["job_finished"]).events
    assert len(finished_a) == 3  # alice sees only her own jobs
    assert len(finished_b) == 3
    assert all("reward" in e["payload"] for e in finished_a + finished_b)
