"""The acceptance scenario for the durable control plane (ISSUE 4).

Runs the HTTP service against a state directory, does real multi-
tenant work through the SDK, kills the process state (server shut
down, gateway dropped), restarts from the same ``--state-dir``, and
proves that tenants, tokens, quotas, apps, and terminal job results
all survive — plus the journal-corruption behaviours: a truncated
tail record is dropped, a bad checksum refuses to load loudly.
"""

import json

import pytest

from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.persist import (
    JournalCorruptionError,
    open_gateway,
    state_digest,
)
from repro.persist.journal import record_checksum
from repro.service import (
    ApiError,
    ApiErrorCode,
    EaseMLClient,
    TenantQuota,
    serve_background,
)

MOONS = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
BLOBS = "{input: {[Tensor[2]], []}, output: {[Tensor[3]], []}}"
ZOO = ["naive-bayes", "ridge", "tree-d4"]


def _open(state_dir, sync=None):
    return open_gateway(
        state_dir,
        sync=sync,
        placement="partition",
        n_gpus=4,
        min_examples=10,
        seed=0,
        zoo=default_zoo().subset(ZOO),
        default_quota=TenantQuota(
            max_apps=2, max_pending_jobs=8, max_store_bytes=1 << 22
        ),
    )


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "state"


@pytest.mark.parametrize("sync", ["fsync", "group"])
def test_kill_and_restart_end_to_end(state_dir, sync):
    # ---------------- first life: real work over HTTP ----------------
    # ``group`` runs the identical scenario under group-commit
    # journaling: every ack still happens only after a covering fsync,
    # so the restart must recover exactly the same state.
    gateway, report = _open(state_dir, sync=sync)
    assert report is None
    server, _ = serve_background(gateway)
    alice_token = gateway.create_tenant("alice")
    bob_token = gateway.create_tenant("bob")
    alice = EaseMLClient(server.url, alice_token)
    bob = EaseMLClient(server.url, bob_token)

    alice.register_app("moons", MOONS)
    bob.register_app("blobs", BLOBS)
    Xa, ya = make_task(TaskSpec("moons", 80, 0.3, seed=0))
    Xb, yb = make_task(TaskSpec("blobs", 80, 0.3, seed=1))
    alice.feed("moons", Xa.tolist(), [int(v) for v in ya])
    bob.feed("blobs", Xb.tolist(), [int(v) for v in yb])
    handles_a = alice.submit_training("moons", steps=3)
    handles_b = bob.submit_training("blobs", steps=2)
    first_life = {
        s.job_id: s
        for s in list(alice.wait_all(handles_a)) + list(
            bob.wait_all(handles_b)
        )
    }
    assert all(s.state == "finished" for s in first_life.values())
    predictions = [
        alice.infer("moons", x.tolist()).prediction for x in Xa[:10]
    ]
    # One more submit left in flight across the "crash".
    in_flight = alice.submit_training("moons", steps=1)[0]

    live_digest = state_digest(gateway)
    server.shutdown()
    server.server_close()
    gateway.store.close()
    del gateway  # the process is gone; only the state dir remains

    # ---------------- second life: recover and keep serving ----------
    recovered, report = _open(state_dir)
    assert report is not None
    assert report.tenants == ["alice", "bob"]
    assert report.recovered == [in_flight.job_id]
    assert state_digest(recovered) == live_digest
    server2, _ = serve_background(recovered)
    alice2 = EaseMLClient(server2.url, alice_token)  # same tokens work
    bob2 = EaseMLClient(server2.url, bob_token)

    # Terminal job results survived, accuracy and all.
    for job_id, before in first_life.items():
        client = alice2 if before.app == "moons" else bob2
        after = client.job_status(job_id)
        assert after.state == "finished"
        assert after.accuracy == before.accuracy
        assert after.candidate == before.candidate
    # The trained models survived: identical predictions.
    assert [
        alice2.infer("moons", x.tolist()).prediction for x in Xa[:10]
    ] == predictions
    # Batch inference agrees with the single-row path (satellite).
    batch = alice2.infer_batch("moons", [x.tolist() for x in Xa[:10]])
    assert list(batch.predictions) == predictions
    assert batch.model_version is not None
    # The in-flight job was requeued and completes post-restart.
    status = alice2.wait(in_flight.job_id)
    assert status.state == "finished"
    assert status.accuracy is not None
    # Quotas survived: alice (max_apps=2) can register exactly one
    # more app, then hits the recovered ceiling.
    alice2.register_app("moons2", MOONS)
    with pytest.raises(ApiError) as excinfo:
        alice2.register_app("moons3", MOONS)
    assert excinfo.value.code is ApiErrorCode.QUOTA_EXCEEDED

    server2.shutdown()
    server2.server_close()
    recovered.store.close()


def test_truncated_tail_record_is_dropped(state_dir):
    gateway, _ = _open(state_dir)
    token = gateway.create_tenant("alice")
    client_less_register(gateway, token)
    gateway.store.close()
    journal = state_dir / "journal.jsonl"
    intact = journal.read_text()
    journal.write_text(intact + '{"seq": 99, "type": "app_clo')
    recovered, report = _open(state_dir)
    assert report.dropped_tail == 1
    assert recovered.tenant_names() == ["alice"]
    recovered.store.close()


def test_bad_checksum_refuses_to_load_with_clear_error(state_dir):
    gateway, _ = _open(state_dir)
    token = gateway.create_tenant("alice")
    client_less_register(gateway, token)
    gateway.store.close()
    journal = state_dir / "journal.jsonl"
    lines = journal.read_text().splitlines()
    data = json.loads(lines[0])
    data["payload"]["name"] = "mallory"  # tamper, keep the stale crc
    lines[0] = json.dumps(data)
    journal.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalCorruptionError) as excinfo:
        _open(state_dir)
    message = str(excinfo.value)
    assert "checksum" in message and "seq 1" in message


def test_checksum_fixed_tamper_is_caught_as_divergence(state_dir):
    """Even a crc-consistent edit cannot smuggle state past replay."""
    gateway, _ = _open(state_dir)
    token = gateway.create_tenant("alice")
    client_less_register(gateway, token)
    X, y = make_task(TaskSpec("moons", 60, 0.3, seed=0))
    from repro.service.api import FeedRequest, SubmitTrainingRequest

    gateway.handle(
        FeedRequest(
            auth_token=token,
            app="moons",
            inputs=tuple(map(tuple, X.tolist())),
            outputs=tuple(int(v) for v in y),
        )
    )
    gateway.handle(
        SubmitTrainingRequest(auth_token=token, app="moons", steps=1)
    )
    gateway.store.close()
    journal = state_dir / "journal.jsonl"
    lines = journal.read_text().splitlines()
    index, data = next(
        (i, json.loads(line))
        for i, line in enumerate(lines)
        if json.loads(line)["type"] == "job_submitted"
    )
    data["payload"]["handles"] = ["job-31337"]
    data["crc"] = record_checksum(data["seq"], data["type"], data["payload"])
    lines[index] = json.dumps(data)
    journal.write_text("\n".join(lines) + "\n")
    from repro.persist import RecoveryError

    with pytest.raises(RecoveryError):
        _open(state_dir)


def client_less_register(gateway, token):
    """Register alice's app without spinning up HTTP (corruption tests)."""
    from repro.service.api import RegisterAppRequest

    gateway.handle(
        RegisterAppRequest(auth_token=token, app="moons", program=MOONS)
    )
