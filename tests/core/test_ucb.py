"""Tests for single-tenant GP-UCB and the classic UCB1 baseline."""

import math

import numpy as np
import pytest

from repro.core.beta import AlgorithmOneBeta, ConstantBeta
from repro.core.ucb import UCB1, GPUCB
from repro.gp.regression import FiniteArmGP


def make_ucb(n_arms=5, noise=0.05, costs=None, beta=None):
    gp = FiniteArmGP(0.09 * np.eye(n_arms), noise=noise)
    return GPUCB(gp, beta or AlgorithmOneBeta(n_arms), costs)


class TestGPUCBSelection:
    def test_initial_scores_symmetric(self):
        ucb = make_ucb()
        scores = ucb.ucb_scores()
        assert np.allclose(scores, scores[0])

    def test_selects_argmax(self):
        ucb = make_ucb()
        ucb.observe(2, 0.9)  # lifts arm 2's mean, shrinks its variance
        scores = ucb.ucb_scores()
        assert ucb.select() == int(np.argmax(scores))

    def test_cost_scaling_downweights_expensive_arms(self):
        cheap_first = make_ucb(costs=np.array([1.0, 100.0, 1.0, 1.0, 1.0]))
        # All else equal, the expensive arm must not be chosen first.
        assert cheap_first.select() != 1

    def test_cost_aware_formula(self):
        costs = np.array([1.0, 4.0])
        gp = FiniteArmGP(np.eye(2), noise=0.1)
        ucb = GPUCB(gp, ConstantBeta(1.0), costs)
        mean, var = gp.posterior()
        expected = mean + np.sqrt(1.0 / costs) * np.sqrt(var)
        assert np.allclose(ucb.ucb_scores(), expected)

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_ucb(costs=np.array([1.0, 0.0, 1.0, 1.0, 1.0]))
        with pytest.raises(ValueError, match="shape"):
            make_ucb(costs=np.array([1.0, 1.0]))

    def test_random_tie_break(self):
        gp = FiniteArmGP(np.eye(3), noise=0.1)
        ucb = GPUCB(gp, ConstantBeta(1.0), tie_break="random", seed=0)
        picks = {ucb.select() for _ in range(50)}
        assert picks == {0, 1, 2}

    def test_unknown_tie_break_rejected(self):
        gp = FiniteArmGP(np.eye(3))
        with pytest.raises(ValueError, match="tie_break"):
            GPUCB(gp, tie_break="weird")


class TestGPUCBLoop:
    def test_finds_best_arm(self, rng):
        means = np.array([0.3, 0.5, 0.9, 0.4, 0.6])
        ucb = make_ucb()
        draw = lambda a: means[a] + 0.05 * rng.normal()
        ucb.run(draw, 60)
        assert ucb.recommend() == 2

    def test_records_lengths_consistent(self, rng):
        ucb = make_ucb()
        ucb.run(lambda a: rng.normal(0.5, 0.1), 20)
        assert len(ucb.arms_played) == 20
        assert len(ucb.selected_variances) == 20
        assert len(ucb.selected_costs) == 20
        assert len(ucb.betas_used) == 20
        assert len(ucb.rewards_seen) == 20

    def test_selected_variance_is_preupdate(self):
        ucb = make_ucb()
        prior_var = ucb.gp.posterior_variance(0)
        ucb.observe(0, 0.5)
        assert ucb.selected_variances[0] == pytest.approx(prior_var)

    def test_best_observed(self):
        ucb = make_ucb()
        assert ucb.best_observed == -math.inf
        ucb.observe(0, 0.4)
        ucb.observe(1, 0.8)
        ucb.observe(2, 0.6)
        assert ucb.best_observed == 0.8

    def test_best_ucb_upper_bounds_scores(self):
        ucb = make_ucb()
        ucb.observe(0, 0.7)
        assert ucb.best_ucb() == pytest.approx(np.max(ucb.ucb_scores()))

    def test_negative_rounds_rejected(self):
        ucb = make_ucb()
        with pytest.raises(ValueError):
            ucb.run(lambda a: 0.5, -1)

    def test_posterior_variance_of_played_arms_decreases(self, rng):
        ucb = make_ucb()
        ucb.run(lambda a: rng.normal(0.5, 0.05), 30)
        variances = ucb.selected_variances
        # Re-selected arms have smrunk variance: the running minimum of
        # selected variances should trend down.
        assert min(variances[-5:]) < max(variances[:5])


class TestUCB1:
    def test_plays_every_arm_once_first(self, rng):
        ucb = UCB1(4)
        arms = [ucb.step(lambda a: rng.normal())[0] for _ in range(4)]
        assert sorted(arms) == [0, 1, 2, 3]

    def test_converges_to_best_arm(self, rng):
        means = np.array([0.2, 0.8, 0.5])
        ucb = UCB1(3)
        for _ in range(300):
            ucb.step(lambda a: means[a] + 0.1 * rng.normal())
        assert np.argmax(ucb.counts) == 1

    def test_cost_scaling_shrinks_bonus(self):
        ucb = UCB1(2, costs=np.array([1.0, 100.0]))
        ucb.observe(0, 0.5)
        ucb.observe(1, 0.5)
        # Equal means: the cheap arm has the bigger bonus.
        assert ucb.select() == 0

    def test_rejects_bad_arm(self):
        ucb = UCB1(2)
        with pytest.raises(IndexError):
            ucb.observe(5, 1.0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            UCB1(0)
        with pytest.raises(ValueError):
            UCB1(2, costs=np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            UCB1(2, costs=np.array([1.0]))

    def test_best_observed_tracking(self):
        ucb = UCB1(2)
        assert ucb.best_observed == -math.inf
        ucb.observe(0, 0.3)
        ucb.observe(1, 0.7)
        assert ucb.best_observed == 0.7
