"""Tests for per-tenant model-picking policies."""

import math

import numpy as np
import pytest

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import (
    FixedOrderPicker,
    GPUCBPicker,
    MostCitedPicker,
    MostRecentPicker,
    RandomModelPicker,
    Selection,
)


class TestGPUCBPicker:
    def make(self, costs=None):
        return GPUCBPicker(
            0.09 * np.eye(4), AlgorithmOneBeta(4), costs, noise=0.05
        )

    def test_selection_fields_consistent(self):
        picker = self.make()
        picker.observe(1, 0.8)
        sel = picker.select()
        assert isinstance(sel, Selection)
        assert 0 <= sel.arm < 4
        assert sel.ucb_value >= sel.mean  # bonus is non-negative
        assert sel.std >= 0.0

    def test_observe_advances_count(self):
        picker = self.make()
        assert picker.n_observations == 0
        picker.observe(0, 0.5)
        assert picker.n_observations == 1

    def test_best_ucb_matches_wrapped(self):
        picker = self.make()
        picker.observe(2, 0.9)
        assert picker.best_ucb() == pytest.approx(picker.ucb.best_ucb())

    def test_exhausted_after_all_arms(self):
        picker = self.make()
        assert not picker.exhausted
        for arm in range(4):
            picker.observe(arm, 0.5)
        assert picker.exhausted

    def test_cost_aware_prefers_cheap(self):
        picker = self.make(costs=np.array([1.0, 1.0, 1.0, 50.0]))
        assert picker.select().arm != 3


class TestHeuristicPickers:
    def test_most_cited_order(self):
        picker = MostCitedPicker([10, 500, 50, 300])
        order = []
        for _ in range(4):
            sel = picker.select()
            picker.observe(sel.arm, 0.5)
            order.append(sel.arm)
        assert order == [1, 3, 2, 0]

    def test_most_recent_order(self):
        picker = MostRecentPicker([2012, 2016, 2014, 2013])
        order = []
        for _ in range(4):
            sel = picker.select()
            picker.observe(sel.arm, 0.5)
            order.append(sel.arm)
        assert order == [1, 2, 3, 0]

    def test_stable_tie_break(self):
        picker = MostCitedPicker([100, 100, 100])
        order = []
        for _ in range(3):
            sel = picker.select()
            picker.observe(sel.arm, 0.5)
            order.append(sel.arm)
        assert order == [0, 1, 2]

    def test_exhausted_picker_repeats_best(self):
        picker = MostCitedPicker([3, 2, 1])
        rewards = {0: 0.4, 1: 0.9, 2: 0.6}
        for _ in range(3):
            sel = picker.select()
            picker.observe(sel.arm, rewards[sel.arm])
        assert picker.exhausted
        assert picker.select().arm == 1  # re-validates the best

    def test_heuristic_reports_infinite_ucb(self):
        picker = MostCitedPicker([1, 2])
        assert math.isinf(picker.select().ucb_value)
        assert math.isinf(picker.best_ucb())

    def test_off_order_observation_does_not_advance(self):
        picker = MostCitedPicker([10, 5])
        # The scheduler trains arm 1 although the heuristic wanted 0.
        picker.observe(1, 0.6)
        assert picker.select().arm == 0  # still wants its first choice

    def test_fixed_order(self):
        picker = FixedOrderPicker([2, 0, 1])
        order = []
        for _ in range(3):
            sel = picker.select()
            picker.observe(sel.arm, 0.1)
            order.append(sel.arm)
        assert order == [2, 0, 1]

    def test_fixed_order_validates_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            FixedOrderPicker([0, 0, 1])

    def test_observe_bounds_checked(self):
        picker = MostCitedPicker([1, 2])
        with pytest.raises(IndexError):
            picker.observe(5, 0.5)


class TestRandomModelPicker:
    def test_covers_all_arms(self):
        picker = RandomModelPicker(4, seed=0)
        arms = {picker.select().arm for _ in range(100)}
        assert arms == {0, 1, 2, 3}

    def test_seeded_reproducibility(self):
        a = RandomModelPicker(5, seed=7)
        b = RandomModelPicker(5, seed=7)
        assert [a.select().arm for _ in range(10)] == [
            b.select().arm for _ in range(10)
        ]

    def test_exhausted_tracking(self):
        picker = RandomModelPicker(2, seed=0)
        picker.observe(0, 0.5)
        assert not picker.exhausted
        picker.observe(1, 0.5)
        assert picker.exhausted

    def test_rejects_zero_arms(self):
        with pytest.raises(ValueError):
            RandomModelPicker(0)
