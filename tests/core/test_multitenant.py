"""Tests for the multi-tenant scheduler loop."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker, Selection
from repro.core.multitenant import (
    MultiTenantScheduler,
    StepRecord,
    TenantState,
)
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import RoundRobinPicker


def make_sched(quality, cost=None, *, noise_std=0.0, clamp=False):
    quality = np.asarray(quality, dtype=float)
    oracle = MatrixOracle(quality, cost, noise_std=noise_std, seed=0)
    n_users, n_models = quality.shape
    pickers = [
        GPUCBPicker(
            0.09 * np.eye(n_models),
            AlgorithmOneBeta(n_models),
            oracle.costs(i) if cost is not None else None,
            noise=0.05,
        )
        for i in range(n_users)
    ]
    return MultiTenantScheduler(
        oracle, pickers, RoundRobinPicker(), clamp_potential=clamp
    )


QUALITY = [[0.5, 0.9], [0.8, 0.4]]


class TestConstruction:
    def test_picker_count_validated(self):
        oracle = MatrixOracle(np.asarray(QUALITY, dtype=float))
        picker = GPUCBPicker(np.eye(2), AlgorithmOneBeta(2))
        with pytest.raises(ValueError, match="one picker per"):
            MultiTenantScheduler(oracle, [picker], RoundRobinPicker())

    def test_arm_count_validated(self):
        oracle = MatrixOracle(np.asarray(QUALITY, dtype=float))
        bad = GPUCBPicker(np.eye(3), AlgorithmOneBeta(3))
        good = GPUCBPicker(np.eye(2), AlgorithmOneBeta(2))
        with pytest.raises(ValueError, match="arms"):
            MultiTenantScheduler(oracle, [bad, good], RoundRobinPicker())


class TestStepAccounting:
    def test_exactly_one_user_per_step(self):
        sched = make_sched(QUALITY)
        record = sched.step()
        assert isinstance(record, StepRecord)
        assert sched.step_count == 1
        assert sum(t.serves for t in sched.tenants) == 1

    def test_cost_accounting_sums(self):
        cost = np.array([[1.0, 2.0], [3.0, 4.0]])
        sched = make_sched(QUALITY, cost)
        result = sched.run(max_steps=6)
        assert result.total_cost == pytest.approx(np.sum(result.costs()))
        assert sched.total_cost == pytest.approx(result.total_cost)

    def test_cumulative_cost_monotone(self):
        cost = np.array([[1.0, 2.0], [3.0, 4.0]])
        sched = make_sched(QUALITY, cost)
        result = sched.run(max_steps=8)
        cumulative = result.cumulative_costs()
        assert np.all(np.diff(cumulative) > 0)

    def test_records_match_tenant_state(self):
        sched = make_sched(QUALITY)
        result = sched.run(max_steps=6)
        serves = result.serves_per_user()
        for tenant in sched.tenants:
            assert tenant.serves == serves[tenant.index]

    def test_best_observed_tracks_maximum(self):
        sched = make_sched(QUALITY)
        sched.run(max_steps=10)
        for tenant in sched.tenants:
            assert tenant.best_observed == pytest.approx(
                max(tenant.rewards)
            )


class TestRunBudgets:
    def test_max_steps(self):
        sched = make_sched(QUALITY)
        result = sched.run(max_steps=5)
        assert result.n_steps == 5

    def test_cost_budget_overshoot_at_most_one_job(self):
        cost = np.full((2, 2), 2.0)
        sched = make_sched(QUALITY, cost)
        result = sched.run(cost_budget=5.0)
        assert result.total_cost >= 5.0
        assert result.total_cost <= 5.0 + 2.0

    def test_stop_predicate(self):
        sched = make_sched(QUALITY)
        result = sched.run(stop=lambda s: s.step_count >= 3)
        assert result.n_steps == 3

    def test_requires_some_budget(self):
        sched = make_sched(QUALITY)
        with pytest.raises(ValueError):
            sched.run()


class TestEmpiricalConfidenceRecurrence:
    """Algorithm 2 line 6: the σ̃ recurrence."""

    def make_tenant(self):
        picker = GPUCBPicker(
            0.09 * np.eye(2), AlgorithmOneBeta(2), noise=0.05
        )
        return TenantState(index=0, picker=picker, costs=np.ones(2))

    def test_first_serve_sets_bound(self):
        tenant = self.make_tenant()
        tenant.absorb(Selection(0, ucb_value=0.8, mean=0.4, std=0.2),
                      reward=0.5, cost=1.0)
        assert tenant.ecb_min == pytest.approx(0.8)
        assert tenant.sigma_tilde == pytest.approx(0.3)

    def test_running_minimum(self):
        tenant = self.make_tenant()
        tenant.absorb(Selection(0, 0.8, 0.4, 0.2), reward=0.5, cost=1.0)
        # A looser bound later does not raise the running minimum.
        tenant.absorb(Selection(1, 1.5, 0.4, 0.2), reward=0.6, cost=1.0)
        assert tenant.ecb_min == pytest.approx(0.8)
        assert tenant.sigma_tilde == pytest.approx(0.2)

    def test_tighter_bound_replaces(self):
        tenant = self.make_tenant()
        tenant.absorb(Selection(0, 0.8, 0.4, 0.2), reward=0.5, cost=1.0)
        tenant.absorb(Selection(1, 0.7, 0.4, 0.2), reward=0.6, cost=1.0)
        assert tenant.ecb_min == pytest.approx(0.7)
        assert tenant.sigma_tilde == pytest.approx(0.1)

    def test_unclamped_can_go_negative(self):
        tenant = self.make_tenant()
        tenant.absorb(Selection(0, 0.6, 0.4, 0.1), reward=0.9, cost=1.0,
                      clamp_potential=False)
        assert tenant.sigma_tilde == pytest.approx(-0.3)

    def test_clamped_stays_nonnegative(self):
        tenant = self.make_tenant()
        tenant.absorb(Selection(0, 0.6, 0.4, 0.1), reward=0.9, cost=1.0,
                      clamp_potential=True)
        assert tenant.sigma_tilde == 0.0
        assert tenant.ecb_min == pytest.approx(0.6)

    def test_infinite_bound_from_heuristic_picker(self):
        tenant = self.make_tenant()
        tenant.absorb(Selection(0, math.inf, math.nan, math.nan),
                      reward=0.7, cost=1.0)
        assert math.isinf(tenant.ecb_min)
        assert tenant.sigma_tilde == pytest.approx(0.3)  # 1 - reward

    def test_potential_gap(self):
        tenant = self.make_tenant()
        tenant.absorb(Selection(0, 0.9, 0.4, 0.2), reward=0.6, cost=1.0)
        expected = tenant.picker.best_ucb() - 0.6
        assert tenant.potential_gap() == pytest.approx(expected)


class TestRunResult:
    def test_arrays_consistent(self):
        sched = make_sched(QUALITY)
        result = sched.run(max_steps=7)
        assert len(result.users()) == 7
        assert len(result.arms()) == 7
        assert len(result.rewards()) == 7
        assert result.records[0].t == 1
        assert result.records[-1].t == 7

    def test_empty_result(self):
        sched = make_sched(QUALITY)
        result = sched.run(max_steps=0)
        assert result.n_steps == 0
        assert result.total_cost == 0.0

    @settings(max_examples=20, deadline=None)
    @given(steps=st.integers(1, 25))
    def test_property_conservation(self, steps):
        sched = make_sched(QUALITY)
        result = sched.run(max_steps=steps)
        # Every step serves exactly one user; serve counts sum to steps.
        assert int(np.sum(result.serves_per_user())) == steps
        # Rewards recorded by tenants match the run records.
        total_rewards = sum(len(t.rewards) for t in sched.tenants)
        assert total_rewards == steps


def make_picker(n_models=2, seed=None):
    return GPUCBPicker(
        0.09 * np.eye(n_models), AlgorithmOneBeta(n_models),
        noise=0.05, seed=seed,
    )


class TestDynamicMembership:
    """The tenant registry: stable ids, arrivals, retirements."""

    def test_subset_start_via_mapping(self):
        oracle = MatrixOracle(np.asarray(QUALITY, dtype=float))
        sched = MultiTenantScheduler(
            oracle, {1: make_picker()}, RoundRobinPicker()
        )
        assert sched.active_ids() == [1]
        record = sched.step()
        assert record.user == 1

    def test_add_tenant_joins_rotation(self):
        oracle = MatrixOracle(np.asarray(QUALITY, dtype=float))
        sched = MultiTenantScheduler(
            oracle, {0: make_picker()}, RoundRobinPicker()
        )
        sched.run(max_steps=2)
        sched.add_tenant(make_picker(), tenant_id=1)
        assert sched.active_ids() == [0, 1]
        result = sched.run(max_steps=6)
        assert set(result.users()) == {0, 1}

    def test_retire_tenant_preserves_history(self):
        sched = make_sched(QUALITY)
        sched.run(max_steps=4)
        state = sched.retire_tenant(0)
        assert state.serves == 2
        assert sched.active_ids() == [1]
        # Retired state stays reachable by id; records keep its rounds.
        assert sched.tenants[0].serves == 2
        result = sched.run(max_steps=8)
        assert all(r.user == 1 for r in sched.records[4:])
        assert result.serves_per_user()[0] == 2

    def test_reactivation_keeps_state(self):
        sched = make_sched(QUALITY)
        sched.run(max_steps=4)
        before = sched.tenants[0]
        sched.retire_tenant(0)
        state = sched.add_tenant(tenant_id=0)  # no picker: resume
        assert state is before
        assert state.serves == 2
        assert sched.active_ids() == [0, 1]

    def test_new_tenant_without_picker_rejected(self):
        oracle = MatrixOracle(np.asarray(QUALITY, dtype=float))
        sched = MultiTenantScheduler(
            oracle, {0: make_picker()}, RoundRobinPicker()
        )
        with pytest.raises(ValueError, match="picker is required"):
            sched.add_tenant(tenant_id=1)

    def test_add_without_oracle_row_rejected(self):
        sched = make_sched(QUALITY)
        with pytest.raises(ValueError, match="oracle row"):
            sched.add_tenant(make_picker(), tenant_id=5)

    def test_oracle_add_user_unlocks_new_id(self):
        quality = np.asarray(QUALITY, dtype=float)
        oracle = MatrixOracle(quality)
        sched = MultiTenantScheduler(
            oracle, [make_picker(), make_picker()], RoundRobinPicker()
        )
        new_id = oracle.add_user([0.3, 0.7])
        assert new_id == 2
        state = sched.add_tenant(make_picker())
        assert state.index == 2
        result = sched.run(max_steps=6)
        assert set(result.users()) == {0, 1, 2}

    def test_double_activation_rejected(self):
        sched = make_sched(QUALITY)
        with pytest.raises(ValueError, match="already active"):
            sched.add_tenant(make_picker(), tenant_id=0)

    def test_retire_unknown_rejected(self):
        sched = make_sched(QUALITY)
        with pytest.raises(KeyError):
            sched.retire_tenant(9)

    def test_step_with_no_active_tenants_rejected(self):
        sched = make_sched(QUALITY)
        sched.retire_tenant(0)
        sched.retire_tenant(1)
        with pytest.raises(RuntimeError, match="no active tenants"):
            sched.step()

    def test_serves_per_user_sized_to_max_id(self):
        quality = np.asarray(QUALITY, dtype=float)
        oracle = MatrixOracle(quality)
        sched = MultiTenantScheduler(
            oracle, {1: make_picker()}, RoundRobinPicker()
        )
        result = sched.run(max_steps=3)
        counts = result.serves_per_user()
        assert counts.shape == (2,)
        assert counts[1] == 3
        assert result.serves_by_tenant() == {1: 3}

    def test_n_users_tracks_active_set(self):
        sched = make_sched(QUALITY)
        assert sched.n_users == 2
        sched.retire_tenant(1)
        assert sched.n_users == 1
        assert sched.n_known == 2


class TestTenantRegistry:
    def test_iteration_is_active_only_in_id_order(self):
        sched = make_sched(QUALITY)
        sched.retire_tenant(0)
        assert [t.index for t in sched.tenants] == [1]
        assert sched.tenants.known_ids() == [0, 1]
        assert [t.index for t in sched.tenants.all_states()] == [0, 1]

    def test_contains_means_active(self):
        sched = make_sched(QUALITY)
        assert 0 in sched.tenants
        sched.retire_tenant(0)
        assert 0 not in sched.tenants
        assert sched.tenants.is_known(0)

    def test_next_id_never_recycles(self):
        sched = make_sched(QUALITY)
        sched.retire_tenant(1)
        assert sched.tenants.next_id() == 2
