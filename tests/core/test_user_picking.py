"""Tests for user-picking policies (FCFS, RR, RANDOM, GREEDY, HYBRID)."""

import numpy as np
import pytest

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import (
    FCFSPicker,
    GreedyPicker,
    HybridPicker,
    RandomUserPicker,
    RoundRobinPicker,
)


def make_scheduler(quality, picker, *, noise_std=0.0, seed=0,
                   clamp=False):
    quality = np.asarray(quality, dtype=float)
    oracle = MatrixOracle(quality, noise_std=noise_std, seed=seed)
    n_users, n_models = quality.shape
    pickers = [
        GPUCBPicker(
            0.09 * np.eye(n_models),
            AlgorithmOneBeta(n_models),
            noise=0.05,
            seed=i,
        )
        for i in range(n_users)
    ]
    return MultiTenantScheduler(oracle, pickers, picker,
                                clamp_potential=clamp)


QUALITY = [
    [0.5, 0.9, 0.6],
    [0.8, 0.4, 0.7],
    [0.3, 0.5, 0.95],
]


class TestRoundRobin:
    def test_cycles_in_order(self):
        sched = make_scheduler(QUALITY, RoundRobinPicker())
        result = sched.run(max_steps=7)
        assert list(result.users()) == [0, 1, 2, 0, 1, 2, 0]

    def test_serves_equally(self):
        sched = make_scheduler(QUALITY, RoundRobinPicker())
        result = sched.run(max_steps=9)
        assert list(result.serves_per_user()) == [3, 3, 3]


class TestRandomUser:
    def test_covers_all_users(self):
        sched = make_scheduler(QUALITY, RandomUserPicker(seed=0))
        result = sched.run(max_steps=60)
        assert set(result.users()) == {0, 1, 2}

    def test_seeded(self):
        a = make_scheduler(QUALITY, RandomUserPicker(seed=3)).run(
            max_steps=10
        )
        b = make_scheduler(QUALITY, RandomUserPicker(seed=3)).run(
            max_steps=10
        )
        assert list(a.users()) == list(b.users())


class TestFCFS:
    def test_serves_first_user_until_exhausted(self):
        sched = make_scheduler(QUALITY, FCFSPicker())
        result = sched.run(max_steps=6)
        users = list(result.users())
        # 3 models per user: user 0 occupies the first 3 rounds.
        assert users[:3] == [0, 0, 0]
        assert users[3:6] == [1, 1, 1]

    def test_cycles_after_everyone_exhausted(self):
        sched = make_scheduler(QUALITY, FCFSPicker())
        result = sched.run(max_steps=12)
        assert set(result.users()[9:]) <= {0, 1, 2}


class TestGreedy:
    def test_warmup_serves_everyone_once_first(self):
        sched = make_scheduler(QUALITY, GreedyPicker())
        result = sched.run(max_steps=3)
        assert sorted(result.users()) == [0, 1, 2]

    def test_candidate_set_above_average(self):
        sched = make_scheduler(QUALITY, GreedyPicker())
        sched.run(max_steps=3)
        picker = sched.user_picker
        candidates = picker.candidate_set(sched)
        potentials = sched.potentials()
        threshold = np.mean(potentials[np.isfinite(potentials)])
        for i in candidates:
            assert potentials[i] >= threshold or not np.isfinite(
                potentials[i]
            )

    def test_rules_accepted(self):
        for rule in ("max_gap", "max_potential", "random"):
            sched = make_scheduler(QUALITY, GreedyPicker(rule, seed=0))
            sched.run(max_steps=6)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="rule"):
            GreedyPicker("fanciest")

    def test_prioritizes_user_with_room_to_improve(self):
        # User 0 has a flat landscape (no potential); user 1 has a big
        # spread.  After warm-up greedy should lean toward user 1.
        quality = [
            [0.70, 0.70, 0.70, 0.70],
            [0.10, 0.30, 0.60, 0.95],
        ]
        sched = make_scheduler(quality, GreedyPicker(), noise_std=0.0)
        result = sched.run(max_steps=8)
        serves = result.serves_per_user()
        assert serves[1] >= serves[0]


class TestHybrid:
    def test_behaves_like_greedy_before_switch(self):
        g = make_scheduler(QUALITY, GreedyPicker())
        h = make_scheduler(QUALITY, HybridPicker(s=10**6))
        ru = g.run(max_steps=6).users()
        hu = h.run(max_steps=6).users()
        assert list(ru) == list(hu)

    def test_switches_to_round_robin_when_frozen(self):
        # Noiseless flat rewards freeze the candidate set quickly.
        quality = [[0.5] * 3, [0.5] * 3, [0.5] * 3]
        picker = HybridPicker(s=4)
        sched = make_scheduler(quality, picker)
        sched.run(max_steps=25)
        assert picker.switched
        assert picker.switch_step is not None
        # Post-switch serves follow the round-robin pattern.
        post = [r.user for r in sched.records if r.t > picker.switch_step]
        if len(post) >= 3:
            expected = [(post[0] + k) % 3 for k in range(len(post))]
            assert post == expected

    def test_progress_resets_stall_counter(self):
        quality = [
            [0.2, 0.4, 0.6, 0.8, 0.9, 0.95],
            [0.1, 0.3, 0.5, 0.7, 0.85, 0.9],
        ]
        picker = HybridPicker(s=50)
        sched = make_scheduler(quality, picker, noise_std=0.01, seed=1)
        sched.run(max_steps=10)
        assert not picker.switched

    def test_reset_clears_state(self):
        picker = HybridPicker(s=2)
        sched = make_scheduler([[0.5] * 2] * 2, picker)
        sched.run(max_steps=10)
        assert picker.switched
        # Attaching to a new scheduler resets the freeze detector.
        make_scheduler([[0.5] * 2] * 2, picker)
        assert not picker.switched

    def test_invalid_s_rejected(self):
        with pytest.raises(ValueError):
            HybridPicker(s=0)


class TestMembershipChurn:
    """Pickers range over the live active set, not range(n_users)."""

    def test_round_robin_skips_retired(self):
        sched = make_scheduler(QUALITY, RoundRobinPicker())
        sched.run(max_steps=3)
        sched.retire_tenant(1)
        result = sched.run(max_steps=7)
        assert set(result.users()[3:]) == {0, 2}

    def test_round_robin_includes_arrival(self):
        sched = make_scheduler(QUALITY, RoundRobinPicker())
        sched.run(max_steps=3)
        sched.oracle.add_user([0.2, 0.5, 0.9])
        sched.add_tenant(
            GPUCBPicker(
                0.09 * np.eye(3), AlgorithmOneBeta(3), noise=0.05, seed=9
            )
        )
        result = sched.run(max_steps=11)
        assert 3 in set(result.users())

    def test_random_only_picks_active(self):
        sched = make_scheduler(QUALITY, RandomUserPicker(seed=0))
        sched.retire_tenant(0)
        result = sched.run(max_steps=40)
        assert set(result.users()) == {1, 2}

    def test_fcfs_survives_departure_of_current(self):
        sched = make_scheduler(QUALITY, FCFSPicker())
        sched.run(max_steps=2)  # serving tenant 0
        sched.retire_tenant(0)
        result = sched.run(max_steps=5)
        assert set(result.users()[2:]) <= {1, 2}

    def test_greedy_warm_starts_arrival(self):
        sched = make_scheduler(QUALITY, GreedyPicker())
        sched.run(max_steps=6)
        sched.oracle.add_user([0.1, 0.5, 0.8])
        sched.add_tenant(
            GPUCBPicker(
                0.09 * np.eye(3), AlgorithmOneBeta(3), noise=0.05, seed=4
            )
        )
        # The newcomer has never been served: warm-up picks it next.
        assert sched.step().user == 3

    def test_hybrid_reenters_greedy_on_arrival(self):
        quality = [[0.5] * 3, [0.5] * 3, [0.5] * 3]
        picker = HybridPicker(s=4)
        sched = make_scheduler(quality, picker)
        sched.run(max_steps=20)
        assert picker.switched
        sched.oracle.add_user([0.2, 0.9, 0.4])
        sched.add_tenant(
            GPUCBPicker(
                0.09 * np.eye(3), AlgorithmOneBeta(3), noise=0.05, seed=5
            )
        )
        assert not picker.switched  # newcomer gets an exploration phase
        assert sched.step().user == 3  # greedy warm-up serves it first

    def test_candidate_set_uses_stable_ids(self):
        sched = make_scheduler(QUALITY, GreedyPicker())
        sched.run(max_steps=6)
        sched.retire_tenant(0)
        picker = sched.user_picker
        candidates = picker.candidate_set(sched)
        assert candidates
        assert set(candidates) <= {1, 2}
