"""Tests for the GP-EI / GP-PI model pickers (§4.5 future work)."""

import math

import numpy as np
import pytest

from repro.core.acquisitions import GPEIPicker, GPPIPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import GreedyPicker, HybridPicker


PICKER_CLASSES = [GPEIPicker, GPPIPicker]


def make_picker(cls, n_arms=5, costs=None, **kwargs):
    return cls(0.09 * np.eye(n_arms), costs, noise=0.05, **kwargs)


@pytest.mark.parametrize("cls", PICKER_CLASSES, ids=lambda c: c.__name__)
class TestAcquisitionPickers:
    def test_selection_interface(self, cls):
        picker = make_picker(cls)
        sel = picker.select()
        assert 0 <= sel.arm < 5
        assert math.isfinite(sel.ucb_value)
        assert sel.ucb_value >= sel.mean

    def test_finds_best_arm(self, cls, rng):
        means = np.array([0.3, 0.5, 0.9, 0.4, 0.6])
        picker = make_picker(cls)
        for _ in range(60):
            sel = picker.select()
            picker.observe(sel.arm, means[sel.arm] + 0.03 * rng.normal())
        assert picker.best_observed > 0.85

    def test_cost_scaling_prefers_cheap(self, cls):
        costs = np.array([1.0, 1.0, 1.0, 1.0, 500.0])
        picker = make_picker(cls, costs=costs)
        picker.observe(0, 0.5)  # give the acquisition a baseline
        for _ in range(5):
            assert picker.select().arm != 4

    def test_best_observed_tracking(self, cls):
        picker = make_picker(cls)
        assert picker.best_observed == 0.0
        picker.observe(1, 0.4)
        picker.observe(2, 0.7)
        assert picker.best_observed == 0.7

    def test_cost_validation(self, cls):
        with pytest.raises(ValueError, match="positive"):
            make_picker(cls, costs=np.array([1.0, 0.0, 1.0, 1.0, 1.0]))
        with pytest.raises(ValueError, match="shape"):
            make_picker(cls, costs=np.array([1.0]))
        with pytest.raises(ValueError, match="xi"):
            make_picker(cls, xi=-0.1)

    def test_composes_with_greedy_user_picking(self, cls):
        """The §4.5 integration: acquisition pickers run under the
        multi-tenant GREEDY/HYBRID user-picking phase unchanged."""
        quality = np.array(
            [[0.4, 0.9, 0.5], [0.8, 0.3, 0.6], [0.2, 0.5, 0.95]]
        )
        oracle = MatrixOracle(quality, noise_std=0.02, seed=0)
        pickers = [make_picker(cls, n_arms=3) for _ in range(3)]
        sched = MultiTenantScheduler(oracle, pickers, HybridPicker())
        result = sched.run(max_steps=18)
        assert result.n_steps == 18
        for user in range(3):
            rewards = [
                r.reward for r in result.records if r.user == user
            ]
            assert rewards, f"user {user} never served"
            assert max(rewards) > 0.3


class TestAcquisitionValues:
    def test_ei_collapses_on_saturated_arm(self):
        picker = GPEIPicker(
            0.09 * np.eye(2),
            noise=0.05,
            prior_mean=np.array([0.9, 0.9]),
        )
        # Saturate arm 0 at a high value: its variance collapses, so
        # its headroom over the best observation vanishes, while the
        # untouched arm keeps both prior mean and prior variance.
        for _ in range(30):
            picker.observe(0, 0.99)
        ei = picker._acquisition()
        assert ei[0] < ei[1]

    def test_pi_is_probability(self):
        picker = make_picker(GPPIPicker, n_arms=4)
        picker.observe(0, 0.5)
        pi = picker._acquisition()
        assert np.all((pi >= 0.0) & (pi <= 1.0))

    def test_xi_raises_exploration_bar(self):
        eager = make_picker(GPPIPicker, n_arms=2, xi=0.0)
        picky = make_picker(GPPIPicker, n_arms=2, xi=0.3)
        for picker in (eager, picky):
            picker.observe(0, 0.5)
        assert np.all(
            picky._acquisition() <= eager._acquisition() + 1e-12
        )
