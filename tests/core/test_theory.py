"""Tests for the Theorem 1–3 bound calculators."""

import math

import numpy as np
import pytest

from repro.core.theory import (
    asymptotic_rate,
    information_gain_term,
    theorem1_bound,
    theorem1_simple_regret_bound,
    theorem2_bound,
    theorem3_bound,
)


class TestInformationGain:
    def test_formula(self):
        value = information_gain_term([0.04, 0.01], noise=0.1)
        expected = math.log1p(0.04 / 0.01) + math.log1p(0.01 / 0.01)
        assert value == pytest.approx(expected)

    def test_zero_variances_give_zero(self):
        assert information_gain_term([0.0, 0.0], 0.1) == 0.0

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            information_gain_term([-0.1], 0.1)

    def test_monotone_in_variance(self):
        small = information_gain_term([0.01], 0.1)
        large = information_gain_term([0.04], 0.1)
        assert large > small


class TestTheorem1:
    def test_empty_run_zero(self):
        assert theorem1_bound([], 1.0, 0.1, 1.0) == 0.0

    def test_scaling_with_t(self):
        variances = [0.04] * 10
        short = theorem1_bound(variances[:5], 2.0, 0.1, 1.0)
        long = theorem1_bound(variances, 2.0, 0.1, 1.0)
        assert long > short

    def test_cost_increases_bound(self):
        variances = [0.04] * 10
        cheap = theorem1_bound(variances, 2.0, 0.1, 1.0)
        costly = theorem1_bound(variances, 2.0, 0.1, 4.0)
        assert costly == pytest.approx(2.0 * cheap)

    def test_simple_regret_decreases_with_cost_spent(self):
        variances = [0.04] * 20
        few = theorem1_simple_regret_bound(
            variances[:5], [1.0] * 5, 2.0, 0.1, 1.0
        )
        # Same total info but more cost paid => tighter simple regret.
        many = theorem1_simple_regret_bound(
            variances[:5], [10.0] * 5, 2.0, 0.1, 1.0
        )
        assert many < few

    def test_simple_regret_validates_lengths(self):
        with pytest.raises(ValueError):
            theorem1_simple_regret_bound([0.1], [1.0, 2.0], 1.0, 0.1, 1.0)


class TestMultiTenantBounds:
    def test_empty_runs_zero(self):
        assert theorem2_bound([], 1.0, [], 1.0, 1.0) == 0.0
        assert theorem3_bound([], 1.0, [], 1.0) == 0.0

    def test_noise_count_validated(self):
        with pytest.raises(ValueError, match="noise"):
            theorem2_bound([[0.1]], 1.0, [0.1, 0.1], 1.0, 1.0)
        with pytest.raises(ValueError, match="noise"):
            theorem3_bound([[0.1]], 1.0, [0.1, 0.1], 1.0)

    def test_theorem3_grows_with_users(self):
        per_user = [[0.04] * 10]
        one = theorem3_bound(per_user, 2.0, [0.1], 1.0)
        three = theorem3_bound(per_user * 3, 2.0, [0.1] * 3, 1.0)
        assert three > one

    def test_theorem2_cost_ratio_dependence(self):
        per_user = [[0.04] * 5] * 2
        balanced = theorem2_bound(per_user, 2.0, [0.1, 0.1], 1.0, 1.0)
        skewed = theorem2_bound(per_user, 2.0, [0.1, 0.1], 4.0, 1.0)
        assert skewed > balanced

    def test_bounds_positive(self):
        per_user = [[0.02, 0.01], [0.03]]
        assert theorem2_bound(per_user, 1.5, [0.1, 0.1], 2.0, 0.5) > 0
        assert theorem3_bound(per_user, 1.5, [0.1, 0.1], 2.0) > 0


class TestAsymptoticRate:
    def test_formula(self):
        value = asymptotic_rate(4, 100, 2.0)
        expected = 4**1.5 * math.sqrt(2.0 * 100 * math.log(25))
        assert value == pytest.approx(expected)

    def test_regret_free_property(self):
        """R_T / T -> 0: the rate divided by T vanishes."""
        rates = [asymptotic_rate(4, T, 2.0) / T for T in (10**3, 10**5, 10**7)]
        assert rates[0] > rates[1] > rates[2]
        assert rates[2] < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            asymptotic_rate(0, 10, 1.0)
        with pytest.raises(ValueError):
            asymptotic_rate(1, 0, 1.0)
