"""Tests for regret accounting (Sections 3, 4.1, Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regret import (
    MultiTenantRegretTracker,
    SingleTenantRegretTracker,
    accuracy_loss_curve,
)


class TestSingleTenant:
    def test_instantaneous_regret(self):
        tracker = SingleTenantRegretTracker([0.5, 0.9, 0.7])
        assert tracker.record(0) == pytest.approx(0.4)
        assert tracker.record(1) == pytest.approx(0.0)
        assert tracker.cumulative == pytest.approx(0.4)

    def test_cost_aware_regret(self):
        tracker = SingleTenantRegretTracker([0.5, 1.0])
        tracker.record(0, cost=3.0)
        tracker.record(1, cost=2.0)
        assert tracker.cost_aware == pytest.approx(3.0 * 0.5)

    def test_easeml_regret_uses_best_so_far(self):
        tracker = SingleTenantRegretTracker([0.5, 0.9, 0.7])
        tracker.record(1)  # best found immediately
        tracker.record(0)  # regression in played arm
        # classic regret counts the bad replay; ease.ml regret does not
        assert tracker.cumulative == pytest.approx(0.4)
        assert tracker.easeml == pytest.approx(0.0)

    def test_easeml_bounded_by_classic(self):
        rng = np.random.default_rng(0)
        tracker = SingleTenantRegretTracker(rng.uniform(0, 1, 6))
        for _ in range(30):
            tracker.record(int(rng.integers(6)))
        assert tracker.easeml <= tracker.cumulative + 1e-12

    def test_accuracy_loss(self):
        tracker = SingleTenantRegretTracker([0.5, 0.9])
        assert tracker.accuracy_loss == pytest.approx(0.9)  # no model yet
        tracker.record(0)
        assert tracker.accuracy_loss == pytest.approx(0.4)
        tracker.record(1)
        assert tracker.accuracy_loss == pytest.approx(0.0)

    def test_minimum_instantaneous(self):
        tracker = SingleTenantRegretTracker([0.5, 0.9])
        assert tracker.minimum_instantaneous == float("inf")
        tracker.record(0)
        assert tracker.minimum_instantaneous == pytest.approx(0.4)

    def test_invalid_inputs(self):
        tracker = SingleTenantRegretTracker([0.5, 0.9])
        with pytest.raises(IndexError):
            tracker.record(2)
        with pytest.raises(ValueError):
            tracker.record(0, cost=0.0)


class TestMultiTenant:
    def test_unserved_users_keep_paying(self):
        tracker = MultiTenantRegretTracker([[0.5, 1.0], [0.3, 0.8]])
        # Serve user 0 with its best arm: user 1 still pays mu*_1.
        contribution = tracker.record(0, 1, cost=1.0)
        assert contribution == pytest.approx(0.0 + 0.8)

    def test_cost_multiplies_whole_round(self):
        tracker = MultiTenantRegretTracker([[0.5, 1.0], [0.3, 0.8]])
        contribution = tracker.record(0, 0, cost=2.0)
        # r_0 = 0.5, r_1 = 0.8, C_t = 2.
        assert contribution == pytest.approx(2.0 * 1.3)

    def test_easeml_bounded_by_classic(self):
        rng = np.random.default_rng(1)
        means = [rng.uniform(0, 1, 4) for _ in range(3)]
        tracker = MultiTenantRegretTracker(means)
        for _ in range(40):
            tracker.record(
                int(rng.integers(3)), int(rng.integers(4)),
                cost=float(rng.uniform(0.5, 2.0)),
            )
        assert tracker.cumulative_easeml <= tracker.cumulative + 1e-9

    def test_regret_monotone_nondecreasing(self):
        rng = np.random.default_rng(2)
        tracker = MultiTenantRegretTracker([rng.uniform(0, 1, 3)] * 2)
        history = []
        for _ in range(20):
            tracker.record(int(rng.integers(2)), int(rng.integers(3)))
            history.append(tracker.cumulative)
        assert all(b >= a - 1e-12 for a, b in zip(history, history[1:]))

    def test_accuracy_loss_reaches_zero_when_best_found(self):
        tracker = MultiTenantRegretTracker([[0.5, 1.0], [0.3, 0.8]])
        tracker.record(0, 1)
        tracker.record(1, 1)
        assert tracker.average_accuracy_loss() == pytest.approx(0.0)
        assert tracker.max_accuracy_loss() == pytest.approx(0.0)

    def test_accuracy_loss_before_any_serve(self):
        tracker = MultiTenantRegretTracker([[0.5, 1.0], [0.3, 0.8]])
        assert tracker.average_accuracy_loss() == pytest.approx(0.9)

    def test_fcfs_example_from_paper(self):
        """The Section 4.1 worked example, verbatim.

        U1 = {90, 95, 100}, U2 = {70, 95, 100}; serving U1 twice gives
        total regret 215 after round 2; alternating gives 150.
        """
        means = [[90.0 / 100, 95.0 / 100, 100.0 / 100],
                 [70.0 / 100, 95.0 / 100, 100.0 / 100]]

        fcfs = MultiTenantRegretTracker(means)
        fcfs.record(0, 0)  # U1 tries M1 (90): r1=10, r2=100
        fcfs.record(0, 1)  # U1 tries M2 (95): r1=5, r2=100
        assert fcfs.cumulative * 100 == pytest.approx(215.0)

        fair = MultiTenantRegretTracker(means)
        fair.record(0, 0)  # round 1 identical: 110
        fair.record(1, 0)  # U2 tries M1 (70): r1=10, r2=30
        assert fair.cumulative * 100 == pytest.approx(150.0)

    def test_validation(self):
        tracker = MultiTenantRegretTracker([[0.5], [0.6]])
        with pytest.raises(IndexError):
            tracker.record(2, 0)
        with pytest.raises(IndexError):
            tracker.record(0, 1)
        with pytest.raises(ValueError):
            tracker.record(0, 0, cost=-1.0)
        with pytest.raises(ValueError):
            MultiTenantRegretTracker([])

    @settings(max_examples=25, deadline=None)
    @given(
        serves=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 3)),
            min_size=1,
            max_size=40,
        ),
        seed=st.integers(0, 50),
    )
    def test_property_loss_bounded_by_instantaneous_regret(
        self, serves, seed
    ):
        """Appendix A: l_{i,T} <= r_{i,T} for each user at all times."""
        rng = np.random.default_rng(seed)
        means = [rng.uniform(0, 1, 4) for _ in range(3)]
        tracker = MultiTenantRegretTracker(means)
        for user, arm in serves:
            tracker.record(user, arm)
            losses = tracker.accuracy_loss_per_user()
            current = tracker.mu_star - tracker._last_reward
            assert np.all(losses <= current + 1e-12)


class TestAccuracyLossCurve:
    def test_step_function_sampling(self):
        grid = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        steps = np.array([1.5, 3.0])
        losses = np.array([0.5, 0.2])
        curve = accuracy_loss_curve(grid, steps, losses, initial_loss=0.9)
        assert np.allclose(curve, [0.9, 0.9, 0.5, 0.2, 0.2])

    def test_default_initial_loss(self):
        curve = accuracy_loss_curve(
            np.array([0.0, 2.0]), np.array([1.0]), np.array([0.4])
        )
        assert curve[0] == pytest.approx(0.4)

    def test_rejects_decreasing_steps(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            accuracy_loss_curve(
                np.array([0.0]), np.array([2.0, 1.0]), np.array([0.5, 0.4])
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_loss_curve(
                np.array([0.0]), np.array([1.0]), np.array([0.5, 0.4])
            )

    def test_exact_checkpoint_inclusive(self):
        curve = accuracy_loss_curve(
            np.array([1.0]), np.array([1.0]), np.array([0.3]),
            initial_loss=0.9,
        )
        assert curve[0] == pytest.approx(0.3)
