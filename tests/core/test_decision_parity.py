"""Pick-sequence parity: vectorized decision path vs the seed stack.

The vectorization PR (contiguous-buffer GP, memoized scores, scheduler
decision cache, vectorized GREEDY) must not change a single scheduling
decision.  These tests run the frozen pre-PR implementations (kept in
``benchmarks/legacy_decision.py``) and the current stack through
identical scenarios and diff the traces with the runtime's
:func:`first_divergence` determinism tool.
"""

import sys
from dataclasses import asdict
from pathlib import Path

import numpy as np

sys.path.insert(
    0, str(Path(__file__).resolve().parents[2] / "benchmarks")
)
import legacy_decision  # noqa: E402

from repro.core.beta import AlgorithmOneBeta
from repro.core.model_picking import GPUCBPicker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import GreedyPicker, HybridPicker
from repro.runtime import first_divergence

N_USERS, N_ARMS = 12, 8


def _rbf_cov(rng, k):
    X = rng.normal(size=(k, 3))
    sq = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
    return np.exp(-0.5 * sq / 1.5**2) + 1e-6 * np.eye(k)


def _run(user_picker, picker_cls, *, churn=False, steps=400, seed=0):
    """One scheduler run; returns the records as plain dicts."""
    rng = np.random.default_rng(seed)
    quality = rng.uniform(0.2, 0.95, size=(N_USERS, N_ARMS))
    cov = _rbf_cov(rng, N_ARMS)
    oracle = MatrixOracle(quality, noise_std=0.05, seed=seed + 1)

    def make_picker():
        return picker_cls(cov, AlgorithmOneBeta(N_ARMS), noise=0.1)

    if churn:
        initial = {u: make_picker() for u in range(N_USERS - 2)}
    else:
        initial = [make_picker() for _ in range(N_USERS)]
    sched = MultiTenantScheduler(oracle, initial, user_picker)
    for step in range(steps):
        if churn:
            if step == 120:
                sched.add_tenant(make_picker(), tenant_id=N_USERS - 2)
            if step == 160:
                sched.retire_tenant(3)
            if step == 220:
                sched.add_tenant(make_picker(), tenant_id=N_USERS - 1)
            if step == 260:
                sched.add_tenant(tenant_id=3)  # reactivate, picker kept
        sched.step()
    return [asdict(r) for r in sched.records]


# The decision trace: every field here is exactly determined by the
# pick sequence (rewards/costs come from the oracle's rng, which both
# runs consume in the same order iff every pick matches), so we require
# bit-equality.  ucb_value / sigma_tilde are diagnostics whose last
# couple of ulps depend on floating-point summation order (the
# vectorized GP reads the forward-substitution vector out of its
# maintained V matrix instead of re-solving), so they get a 1e-9 bound
# instead.
DECISION_FIELDS = ("t", "user", "arm", "reward", "cost", "cumulative_cost")


def _assert_identical(legacy_records, new_records):
    left = [{k: r[k] for k in DECISION_FIELDS} for r in legacy_records]
    right = [{k: r[k] for k in DECISION_FIELDS} for r in new_records]
    divergence = first_divergence(left, right)
    assert divergence is None, f"pick traces diverge: {divergence}"
    for field in ("ucb_value", "sigma_tilde"):
        a = np.array([r[field] for r in legacy_records])
        b = np.array([r[field] for r in new_records])
        finite = np.isfinite(a)
        np.testing.assert_array_equal(finite, np.isfinite(b))
        np.testing.assert_allclose(
            a[finite], b[finite], rtol=1e-9, atol=1e-9
        )


class TestPickSequenceParity:
    def test_greedy_trace_identical(self):
        legacy = _run(
            legacy_decision.LegacyGreedyPicker(),
            legacy_decision.LegacyGPUCBPicker,
        )
        new = _run(GreedyPicker(), GPUCBPicker)
        _assert_identical(legacy, new)

    def test_greedy_max_potential_trace_identical(self):
        legacy = _run(
            legacy_decision.LegacyGreedyPicker("max_potential"),
            legacy_decision.LegacyGPUCBPicker,
            seed=5,
        )
        new = _run(GreedyPicker("max_potential"), GPUCBPicker, seed=5)
        _assert_identical(legacy, new)

    def test_hybrid_trace_identical(self):
        legacy = _run(
            legacy_decision.LegacyHybridPicker(s=8),
            legacy_decision.LegacyGPUCBPicker,
            steps=600,
            seed=2,
        )
        new = _run(HybridPicker(s=8), GPUCBPicker, steps=600, seed=2)
        _assert_identical(legacy, new)

    def test_greedy_trace_identical_under_churn(self):
        legacy = _run(
            legacy_decision.LegacyGreedyPicker(),
            legacy_decision.LegacyGPUCBPicker,
            churn=True,
            seed=3,
        )
        new = _run(GreedyPicker(), GPUCBPicker, churn=True, seed=3)
        _assert_identical(legacy, new)

    def test_hybrid_trace_identical_under_churn(self):
        legacy = _run(
            legacy_decision.LegacyHybridPicker(s=8),
            legacy_decision.LegacyGPUCBPicker,
            churn=True,
            steps=500,
            seed=7,
        )
        new = _run(HybridPicker(s=8), GPUCBPicker, churn=True, steps=500, seed=7)
        _assert_identical(legacy, new)


class TestScoreMemoization:
    def test_scores_shared_within_round(self):
        rng = np.random.default_rng(0)
        cov = _rbf_cov(rng, N_ARMS)
        picker = GPUCBPicker(cov, AlgorithmOneBeta(N_ARMS), noise=0.1)
        first = picker._ucb.ucb_scores()
        again = picker._ucb.ucb_scores()
        assert first is again  # one evaluation per (t, beta) round
        assert not first.flags.writeable

    def test_memo_invalidated_by_observation(self):
        rng = np.random.default_rng(1)
        cov = _rbf_cov(rng, N_ARMS)
        picker = GPUCBPicker(cov, AlgorithmOneBeta(N_ARMS), noise=0.1)
        before = picker._ucb.ucb_scores()
        picker.observe(0, 0.6)
        after = picker._ucb.ucb_scores()
        assert after is not before
        assert not np.array_equal(after, before)
