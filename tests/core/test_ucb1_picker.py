"""Tests for the UCB1-based model picker (Section 3.1 baseline)."""

import math

import numpy as np
import pytest

from repro.core.model_picking import UCB1Picker
from repro.core.multitenant import MultiTenantScheduler
from repro.core.oracles import MatrixOracle
from repro.core.user_picking import RoundRobinPicker


class TestUCB1Picker:
    def test_plays_every_arm_first(self):
        picker = UCB1Picker(3)
        arms = []
        for _ in range(3):
            sel = picker.select()
            picker.observe(sel.arm, 0.5)
            arms.append(sel.arm)
        assert sorted(arms) == [0, 1, 2]
        assert picker.exhausted

    def test_unplayed_arm_has_infinite_ucb(self):
        picker = UCB1Picker(2)
        sel = picker.select()
        assert math.isinf(sel.ucb_value)
        assert math.isinf(picker.best_ucb())

    def test_finite_ucb_after_warmup(self):
        picker = UCB1Picker(2)
        picker.observe(0, 0.5)
        picker.observe(1, 0.7)
        sel = picker.select()
        assert math.isfinite(sel.ucb_value)
        assert sel.ucb_value == pytest.approx(sel.mean + sel.std)
        assert math.isfinite(picker.best_ucb())

    def test_converges_to_best_arm(self, rng):
        means = np.array([0.3, 0.9, 0.5])
        picker = UCB1Picker(3, seed=0)
        for _ in range(200):
            sel = picker.select()
            picker.observe(sel.arm, means[sel.arm] + 0.05 * rng.normal())
        counts = picker._ucb1.counts
        assert int(np.argmax(counts)) == 1

    def test_cost_aware_bonus_shrinks(self):
        picker = UCB1Picker(2, costs=np.array([1.0, 100.0]))
        picker.observe(0, 0.5)
        picker.observe(1, 0.5)
        assert picker.select().arm == 0

    def test_integrates_with_scheduler(self):
        quality = np.array([[0.4, 0.9], [0.8, 0.3]])
        oracle = MatrixOracle(quality)
        pickers = [UCB1Picker(2, seed=i) for i in range(2)]
        sched = MultiTenantScheduler(oracle, pickers, RoundRobinPicker())
        result = sched.run(max_steps=12)
        assert result.n_steps == 12
        # Both users eventually find their best arm.
        for user in range(2):
            rewards = [
                r.reward for r in result.records if r.user == user
            ]
            assert max(rewards) == quality[user].max()


class TestGPUCBBeatsUCB1OnCorrelatedArms:
    """The paper's §3.1 point: GP-UCB exploits arm correlations and
    need not pull every arm, so with many correlated arms and a short
    horizon it beats UCB1."""

    def test_short_horizon_advantage(self):
        from repro.core.beta import AlgorithmOneBeta
        from repro.core.ucb import GPUCB, UCB1
        from repro.gp.covariance import empirical_model_covariance
        from repro.gp.regression import FiniteArmGP
        from repro.datasets.synthetic import generate_syn

        ds = generate_syn(0.5, 1.0, n_users=40, n_models=30, seed=2)
        cov = empirical_model_covariance(ds.quality[:30])
        horizon = 12  # < number of arms: UCB1 can't even warm up
        gp_losses = []
        ucb1_losses = []
        rng = np.random.default_rng(0)
        for user in range(30, 40):
            truth = ds.quality[user]
            gp = GPUCB(
                FiniteArmGP(cov, noise=0.05),
                AlgorithmOneBeta(30),
            )
            ucb1 = UCB1(30)
            for _ in range(horizon):
                gp.step(lambda a: truth[a] + 0.02 * rng.normal())
                ucb1.step(lambda a: truth[a] + 0.02 * rng.normal())
            gp_losses.append(truth.max() - max(gp.rewards_seen))
            ucb1_losses.append(truth.max() - max(ucb1.rewards_seen))
        assert np.mean(gp_losses) <= np.mean(ucb1_losses) + 1e-9
