"""Tests for exploration schedules."""

import math

import pytest

from repro.core.beta import AlgorithmOneBeta, BetaSchedule, ConstantBeta, TheoremBeta


class TestConstantBeta:
    def test_constant(self):
        beta = ConstantBeta(2.5)
        assert beta(1) == 2.5
        assert beta(1000) == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantBeta(-1.0)

    def test_rejects_t_zero(self):
        with pytest.raises(ValueError, match="t must be >= 1"):
            ConstantBeta(1.0)(0)


class TestAlgorithmOneBeta:
    def test_formula(self):
        beta = AlgorithmOneBeta(n_arms=8, delta=0.1)
        assert beta(3) == pytest.approx(math.log(8 * 9 / 0.1))

    def test_monotone_in_t(self):
        beta = AlgorithmOneBeta(n_arms=5, delta=0.1)
        values = [beta(t) for t in range(1, 50)]
        assert all(b2 >= b1 for b1, b2 in zip(values, values[1:]))

    def test_never_negative(self):
        # K=1, t=1, delta close to 1 would make the raw log negative.
        beta = AlgorithmOneBeta(n_arms=1, delta=0.999)
        assert beta(1) >= 0.0

    def test_rejects_zero_delta(self):
        with pytest.raises(ValueError):
            AlgorithmOneBeta(5, delta=0.0)

    def test_rejects_zero_arms(self):
        with pytest.raises(ValueError):
            AlgorithmOneBeta(0)

    def test_smaller_delta_means_more_exploration(self):
        loose = AlgorithmOneBeta(4, delta=0.5)
        tight = AlgorithmOneBeta(4, delta=0.01)
        assert tight(10) > loose(10)


class TestTheoremBeta:
    def test_formula(self):
        beta = TheoremBeta(n_arms=4, delta=0.1, c_star=2.0, n_users=3)
        t = 5
        expected = 2.0 * 2.0 * math.log(
            math.pi**2 / 6.0 * 3 * 4 * t * t / 0.1
        )
        assert beta(t) == pytest.approx(expected)

    def test_single_tenant_reduction(self):
        """n_users=1 recovers Theorem 1's schedule."""
        beta = TheoremBeta(n_arms=4, delta=0.1, c_star=1.0, n_users=1)
        expected = 2.0 * math.log(math.pi**2 * 4 * 9 / (6 * 0.1))
        assert beta(3) == pytest.approx(expected)

    def test_cost_scales_linearly(self):
        small = TheoremBeta(4, c_star=1.0)
        large = TheoremBeta(4, c_star=3.0)
        assert large(10) == pytest.approx(3.0 * small(10))

    def test_rejects_bad_cost(self):
        with pytest.raises(ValueError):
            TheoremBeta(4, c_star=0.0)

    def test_is_schedule(self):
        assert isinstance(TheoremBeta(4), BetaSchedule)
