"""Tests for the trace-replay oracle."""

import numpy as np
import pytest

from repro.core.oracles import MatrixOracle, Observation


@pytest.fixture
def quality():
    return np.array([[0.5, 0.9], [0.7, 0.3]])


class TestConstruction:
    def test_default_costs_are_ones(self, quality):
        oracle = MatrixOracle(quality)
        assert np.allclose(oracle.costs(0), 1.0)

    def test_cost_vector_broadcast(self, quality):
        oracle = MatrixOracle(quality, np.array([1.0, 2.0]))
        assert np.allclose(oracle.costs(1), [1.0, 2.0])

    def test_full_cost_matrix(self, quality):
        cost = np.array([[1.0, 2.0], [3.0, 4.0]])
        oracle = MatrixOracle(quality, cost)
        assert np.allclose(oracle.costs(1), [3.0, 4.0])

    def test_rejects_nonpositive_costs(self, quality):
        with pytest.raises(ValueError, match="positive"):
            MatrixOracle(quality, np.array([0.0, 1.0]))

    def test_rejects_wrong_cost_length(self, quality):
        with pytest.raises(ValueError, match="length"):
            MatrixOracle(quality, np.array([1.0, 2.0, 3.0]))

    def test_rejects_negative_noise(self, quality):
        with pytest.raises(ValueError):
            MatrixOracle(quality, noise_std=-0.1)


class TestObserve:
    def test_noiseless_returns_matrix_value(self, quality):
        oracle = MatrixOracle(quality)
        obs = oracle.observe(0, 1)
        assert obs == Observation(0.9, 1.0)

    def test_noise_is_seeded(self, quality):
        a = MatrixOracle(quality, noise_std=0.1, seed=5).observe(0, 0)
        b = MatrixOracle(quality, noise_std=0.1, seed=5).observe(0, 0)
        assert a == b

    def test_noise_perturbs(self, quality):
        oracle = MatrixOracle(quality, noise_std=0.1, seed=1)
        rewards = {oracle.observe(0, 0).reward for _ in range(10)}
        assert len(rewards) > 1

    def test_clipping(self, quality):
        oracle = MatrixOracle(quality, noise_std=5.0, seed=0)
        for _ in range(50):
            reward = oracle.observe(0, 1).reward
            assert 0.0 <= reward <= 1.0

    def test_no_clipping_when_disabled(self, quality):
        oracle = MatrixOracle(quality, noise_std=5.0, clip=False, seed=0)
        rewards = [oracle.observe(0, 1).reward for _ in range(50)]
        assert any(r < 0.0 or r > 1.0 for r in rewards)

    def test_observation_count(self, quality):
        oracle = MatrixOracle(quality)
        oracle.observe(0, 0)
        oracle.observe(1, 1)
        assert oracle.observation_count == 2

    def test_bounds_checked(self, quality):
        oracle = MatrixOracle(quality)
        with pytest.raises(IndexError):
            oracle.observe(2, 0)
        with pytest.raises(IndexError):
            oracle.observe(0, 2)


class TestGroundTruth:
    def test_best_quality(self, quality):
        oracle = MatrixOracle(quality)
        assert oracle.best_quality(0) == 0.9
        assert oracle.best_quality(1) == 0.7

    def test_true_mean_ignores_noise(self, quality):
        oracle = MatrixOracle(quality, noise_std=0.5, seed=0)
        assert oracle.true_mean(1, 0) == 0.7

    def test_total_cost(self, quality):
        cost = np.array([[1.0, 2.0], [3.0, 4.0]])
        oracle = MatrixOracle(quality, cost)
        assert oracle.total_cost() == 10.0
        assert oracle.total_cost(0) == 3.0
