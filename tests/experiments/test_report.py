"""Tests for experiment-result serialisation."""

import csv
import json

import numpy as np
import pytest

from repro.datasets.synthetic import generate_syn
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.report import (
    load_result_json,
    result_from_dict,
    result_to_dict,
    save_curves_csv,
    save_result_json,
)


@pytest.fixture(scope="module")
def small_result():
    dataset = generate_syn(0.5, 0.5, n_users=12, n_models=6, seed=0)
    config = ExperimentConfig(
        n_test_users=3, n_trials=2, budget_fraction=0.4,
        n_checkpoints=7, base_seed=0,
    )
    return run_experiment(dataset, ["easeml", "random"], config)


class TestDictRoundTrip:
    def test_roundtrip_preserves_curves(self, small_result):
        clone = result_from_dict(result_to_dict(small_result))
        assert clone.dataset_name == small_result.dataset_name
        assert set(clone.strategies) == set(small_result.strategies)
        for name in clone.strategies:
            assert np.allclose(
                clone.strategies[name].trial_curves,
                small_result.strategies[name].trial_curves,
            )

    def test_roundtrip_preserves_config(self, small_result):
        clone = result_from_dict(result_to_dict(small_result))
        assert clone.config == small_result.config

    def test_dict_is_json_safe(self, small_result):
        json.dumps(result_to_dict(small_result))  # must not raise


class TestFiles:
    def test_json_file_roundtrip(self, small_result, tmp_path):
        path = save_result_json(small_result, tmp_path / "r.json")
        clone = load_result_json(path)
        assert np.allclose(clone.grid, small_result.grid)
        # Derived metrics identical after the round trip.
        assert clone.speedups("easeml").keys() == {"random"}

    def test_csv_structure(self, small_result, tmp_path):
        path = save_curves_csv(small_result, tmp_path / "curves.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == [
            "budget_fraction", "strategy", "mean_loss", "worst_loss"
        ]
        # one row per (checkpoint, strategy)
        assert len(rows) - 1 == 7 * 2
        strategies = {row[1] for row in rows[1:]}
        assert strategies == {"easeml", "random"}
        for row in rows[1:]:
            assert 0.0 <= float(row[2]) <= 1.0
