"""Smoke tests for the per-figure drivers (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments.figures import (
    FigureReport,
    figure6b,
    figure8,
    figure9,
    figure13,
    figure14,
    figure15,
)


class TestFigure8:
    def test_headline_table(self):
        report = figure8(seed=0)
        assert report.headline["DEEPLEARNING users"] == 22
        assert report.headline["179CLASSIFIER models"] == 179
        assert "provenance" in report.notes[0]

    def test_render(self):
        out = figure8(seed=0).render()
        assert "Figure 8" in out


class TestFigure9:
    @pytest.fixture(scope="class")
    def report(self):
        return figure9(n_trials=3, seed=0)

    def test_structure(self, report):
        assert isinstance(report, FigureReport)
        assert set(report.results) == {"DEEPLEARNING"}
        result = report.results["DEEPLEARNING"]
        assert set(result.strategies) == {
            "easeml", "most_cited", "most_recent"
        }

    def test_headline_keys(self, report):
        assert "avg speedup vs most_cited" in report.headline
        assert "worst-case speedup vs most_recent" in report.headline

    def test_render_contains_series(self, report):
        out = report.render()
        assert "% of total cost" in out
        assert "easeml" in out


class TestLesionFigures:
    def test_figure13_strategies(self):
        report = figure13(n_trials=3, seed=0)
        result = report.results["DEEPLEARNING"]
        assert set(result.strategies) == {"easeml", "easeml_no_cost"}
        assert "easeml final" in report.headline

    def test_figure14_fractions(self):
        report = figure14(n_trials=2, seed=0, fractions=(0.5, 1.0))
        assert set(report.results) == {"train=50%", "train=100%"}
        assert "final loss (train=50%)" in report.headline

    def test_figure15_headline(self):
        report = figure15(n_trials=2, seed=0)
        for key in ("greedy final", "round_robin final", "hybrid final"):
            assert key in report.headline

    def test_figure6b_headline(self):
        report = figure6b(n_trials=2, seed=0)
        assert "greedy final loss" in report.headline
        # Losses are probabilities of accuracy mass: finite, in range.
        for value in report.headline.values():
            assert np.isfinite(value)
            assert 0.0 <= value <= 1.0
