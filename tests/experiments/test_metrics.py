"""Tests for curve metrics (time-to-threshold, speedups, AUC)."""

import math

import numpy as np
import pytest

from repro.experiments.metrics import (
    area_under_loss,
    max_speedup,
    speedup_at,
    summarize_speedups,
    time_to_threshold,
)

GRID = np.linspace(0.0, 1.0, 11)
FAST = np.array([0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.02, 0.02, 0.02, 0.02, 0.02])
SLOW = np.array([0.5, 0.48, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2, 0.1, 0.05, 0.02])


class TestTimeToThreshold:
    def test_first_crossing(self):
        assert time_to_threshold(GRID, FAST, 0.1) == pytest.approx(0.4)
        assert time_to_threshold(GRID, SLOW, 0.1) == pytest.approx(0.8)

    def test_unreached_is_inf(self):
        assert time_to_threshold(GRID, SLOW, 0.001) == math.inf

    def test_already_below_at_zero(self):
        assert time_to_threshold(GRID, FAST, 0.9) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            time_to_threshold(GRID, FAST[:5], 0.1)


class TestSpeedupAt:
    def test_ratio(self):
        assert speedup_at(GRID, FAST, SLOW, 0.1) == pytest.approx(2.0)

    def test_both_reach_the_floor(self):
        # FAST bottoms at 0.02 (t=0.6), SLOW reaches 0.02 at t=1.0.
        assert speedup_at(GRID, FAST, SLOW, 0.02) == pytest.approx(
            1.0 / 0.6
        )

    def test_only_slow_fails_below_floor(self):
        slow_floor = np.where(SLOW < 0.05, 0.05, SLOW)
        assert speedup_at(GRID, FAST, slow_floor, 0.02) == math.inf

    def test_neither_reaches_nan(self):
        assert math.isnan(speedup_at(GRID, FAST, SLOW, 0.001))

    def test_slow_never_reaches_inf(self):
        slow = np.full_like(FAST, 0.5)
        assert speedup_at(GRID, FAST, slow, 0.1) == math.inf

    def test_both_instant(self):
        assert speedup_at(GRID, FAST, SLOW, 0.6) == 1.0


class TestMaxSpeedup:
    def test_finds_band_maximum(self):
        ratio, threshold = max_speedup(
            GRID, FAST, SLOW, thresholds=[0.3, 0.1, 0.02]
        )
        # 0.3: 0.5/0.2=... t_fast(0.3)=0.2, t_slow(0.3)=0.5 -> 2.5
        # 0.1: 0.8/0.4 = 2.0 ; 0.02: 1.0/0.6 = 1.67
        assert ratio == pytest.approx(2.5)
        assert threshold == pytest.approx(0.3)

    def test_default_band_is_finite(self):
        ratio, threshold = max_speedup(GRID, FAST, SLOW)
        assert math.isfinite(ratio)
        assert ratio >= 1.0

    def test_identical_curves_speedup_one(self):
        ratio, _ = max_speedup(GRID, FAST, FAST, thresholds=[0.1, 0.05])
        assert ratio == pytest.approx(1.0)


class TestAreaUnderLoss:
    def test_lower_is_better(self):
        assert area_under_loss(GRID, FAST) < area_under_loss(GRID, SLOW)

    def test_constant_curve(self):
        assert area_under_loss(GRID, np.full(11, 0.2)) == pytest.approx(
            0.2
        )

    def test_degenerate_grid(self):
        assert area_under_loss([0.0], [0.5]) == 0.0


class TestSummarize:
    def test_reference_excluded(self):
        out = summarize_speedups(
            GRID,
            {"easeml": FAST, "rr": SLOW},
            "easeml",
            thresholds=[0.1],
        )
        assert set(out) == {"rr"}
        assert out["rr"][0] == pytest.approx(2.0)

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            summarize_speedups(GRID, {"a": FAST}, "z")
