"""Tests for the experiment protocol and harness."""

import numpy as np
import pytest

from repro.core.model_picking import (
    GPUCBPicker,
    MostCitedPicker,
    MostRecentPicker,
    RandomModelPicker,
)
from repro.core.user_picking import (
    FCFSPicker,
    GreedyPicker,
    HybridPicker,
    RandomUserPicker,
    RoundRobinPicker,
)
from repro.datasets.synthetic import generate_syn
from repro.experiments.harness import run_experiment, run_trial
from repro.experiments.protocol import (
    STRATEGY_NAMES,
    ExperimentConfig,
    build_prior,
    make_model_picker,
    make_user_picker,
)


@pytest.fixture(scope="module")
def small_syn():
    return generate_syn(0.5, 0.5, n_users=16, n_models=8, seed=0)


class TestConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.n_test_users == 10
        assert config.n_trials == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(kernel_mode="psychic")
        with pytest.raises(ValueError):
            ExperimentConfig(budget_fraction=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(train_fraction=1.5)

    def test_with_changes(self):
        config = ExperimentConfig()
        changed = config.with_changes(n_trials=3)
        assert changed.n_trials == 3
        assert config.n_trials == 50  # frozen original


class TestBuildPrior:
    def test_empirical_prior_shapes(self, small_syn):
        config = ExperimentConfig(kernel_mode="empirical")
        cov, mean, noise = build_prior(small_syn.quality, config, seed=0)
        assert cov.shape == (8, 8)
        assert mean.shape == (8,)
        assert noise == config.gp_noise
        assert np.all(np.linalg.eigvalsh(cov) > -1e-9)

    def test_lml_prior_shapes(self, small_syn):
        config = ExperimentConfig(
            kernel_mode="lml", lml_max_targets=4, lml_restarts=0
        )
        cov, mean, noise = build_prior(small_syn.quality, config, seed=0)
        assert cov.shape == (8, 8)
        assert noise > 0

    def test_prior_mean_optional(self, small_syn):
        config = ExperimentConfig(use_prior_mean=False)
        _, mean, _ = build_prior(small_syn.quality, config, seed=0)
        assert mean is None

    def test_train_fraction_subsamples(self, small_syn):
        config = ExperimentConfig(train_fraction=0.2)
        cov_small, _, _ = build_prior(small_syn.quality, config, seed=0)
        cov_full, _, _ = build_prior(
            small_syn.quality, config.with_changes(train_fraction=1.0),
            seed=0,
        )
        assert not np.allclose(cov_small, cov_full)


class TestStrategyFactories:
    def test_user_picker_types(self):
        config = ExperimentConfig()
        assert isinstance(
            make_user_picker("easeml", config), HybridPicker
        )
        assert isinstance(
            make_user_picker("greedy", config), GreedyPicker
        )
        assert isinstance(
            make_user_picker("round_robin", config), RoundRobinPicker
        )
        assert isinstance(
            make_user_picker("random", config), RandomUserPicker
        )
        assert isinstance(make_user_picker("fcfs", config), FCFSPicker)
        assert isinstance(
            make_user_picker("most_cited", config), RoundRobinPicker
        )

    def test_unknown_strategy_rejected(self):
        config = ExperimentConfig()
        with pytest.raises(ValueError):
            make_user_picker("oracle", config)

    def test_model_picker_types(self, small_syn):
        config = ExperimentConfig(cost_aware=True)
        cov = np.eye(8) * 0.09
        kwargs = dict(
            dataset=small_syn, user=0, prior_cov=cov,
            prior_mean=None, gp_noise=0.05, config=config,
        )
        assert isinstance(
            make_model_picker("easeml", **kwargs), GPUCBPicker
        )
        assert isinstance(
            make_model_picker("most_cited", **kwargs), MostCitedPicker
        )
        assert isinstance(
            make_model_picker("most_recent", **kwargs), MostRecentPicker
        )
        assert isinstance(
            make_model_picker("random_model", **kwargs),
            RandomModelPicker,
        )

    def test_no_cost_variant_ignores_costs(self, small_syn):
        config = ExperimentConfig(cost_aware=True)
        cov = np.eye(8) * 0.09
        picker = make_model_picker(
            "easeml_no_cost", small_syn, 0, cov, None, 0.05, config
        )
        assert np.allclose(picker.ucb.costs, 1.0)

    def test_cost_variant_uses_dataset_costs(self, small_syn):
        config = ExperimentConfig(cost_aware=True)
        cov = np.eye(8) * 0.09
        picker = make_model_picker(
            "easeml", small_syn, 2, cov, None, 0.05, config
        )
        assert np.allclose(picker.ucb.costs, small_syn.cost[2])


class TestRunTrial:
    def test_returns_curve_per_strategy(self, small_syn):
        config = ExperimentConfig(
            n_test_users=4, n_trials=1, budget_fraction=0.5,
            n_checkpoints=11, base_seed=0,
        )
        curves = run_trial(
            small_syn, ["easeml", "round_robin"], config, 0
        )
        assert set(curves) == {"easeml", "round_robin"}
        for curve in curves.values():
            assert curve.shape == (11,)
            assert np.all(np.diff(curve) <= 1e-12)  # loss non-increasing

    def test_deterministic_per_trial_index(self, small_syn):
        config = ExperimentConfig(
            n_test_users=4, budget_fraction=0.4, n_checkpoints=9,
            base_seed=3,
        )
        a = run_trial(small_syn, ["easeml"], config, 5)
        b = run_trial(small_syn, ["easeml"], config, 5)
        assert np.allclose(a["easeml"], b["easeml"])

    def test_different_trials_differ(self, small_syn):
        config = ExperimentConfig(
            n_test_users=4, budget_fraction=0.4, n_checkpoints=9,
            base_seed=3, noise_std=0.05,
        )
        a = run_trial(small_syn, ["random"], config, 0)
        b = run_trial(small_syn, ["random"], config, 1)
        assert not np.allclose(a["random"], b["random"])

    def test_cost_aware_budget_axis(self, small_syn):
        config = ExperimentConfig(
            n_test_users=4, budget_fraction=0.2, cost_aware=True,
            n_checkpoints=9, base_seed=1,
        )
        curves = run_trial(small_syn, ["easeml"], config, 0)
        assert curves["easeml"].shape == (9,)


class TestRunExperiment:
    def test_aggregation_shapes(self, small_syn):
        config = ExperimentConfig(
            n_test_users=4, n_trials=3, budget_fraction=0.4,
            n_checkpoints=9, base_seed=0,
        )
        result = run_experiment(
            small_syn, ["easeml", "random"], config
        )
        strategy = result.strategies["easeml"]
        assert strategy.trial_curves.shape == (3, 9)
        assert strategy.mean_curve.shape == (9,)
        assert np.all(
            strategy.worst_curve >= strategy.mean_curve - 1e-12
        )

    def test_render_includes_strategies(self, small_syn):
        config = ExperimentConfig(
            n_test_users=4, n_trials=2, budget_fraction=0.4,
            n_checkpoints=9,
        )
        result = run_experiment(small_syn, ["easeml"], config)
        out = result.render()
        assert "easeml" in out
        assert "% of runs" in out

    def test_x_label_cost_aware(self, small_syn):
        config = ExperimentConfig(
            n_test_users=4, n_trials=1, budget_fraction=0.2,
            cost_aware=True, n_checkpoints=5,
        )
        result = run_experiment(small_syn, ["easeml"], config)
        assert result.x_label == "% of total cost"

    def test_requires_strategy(self, small_syn):
        with pytest.raises(ValueError):
            run_experiment(small_syn, [], ExperimentConfig())

    def test_all_registry_strategies_run(self, small_syn):
        config = ExperimentConfig(
            n_test_users=3, n_trials=1, budget_fraction=0.3,
            n_checkpoints=5, base_seed=0, cost_aware=True,
        )
        result = run_experiment(small_syn, list(STRATEGY_NAMES), config)
        assert set(result.strategies) == set(STRATEGY_NAMES)
