"""The coalescing queue and its adaptive controller."""

import threading

import numpy as np
import pytest

from repro.infer import AdaptiveBatchController, BatchQueue


def echo_execute(calls):
    """An execute that predicts row sums and records each flush."""

    def execute(X):
        calls.append(np.array(X))
        return X.sum(axis=1).astype(np.int64), {
            "model": "m", "model_version": "v1",
        }

    return execute


def submit_concurrently(queue, matrices):
    """Run one submit per thread; returns results in matrix order."""
    results = [None] * len(matrices)
    errors = []
    barrier = threading.Barrier(len(matrices))

    def worker(i, X):
        barrier.wait()
        try:
            results[i] = queue.submit(X)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i, X))
        for i, X in enumerate(matrices)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, errors


class TestBatchQueue:
    def test_single_submit_flushes_alone(self):
        calls = []
        queue = BatchQueue(echo_execute(calls), window=0.0)
        predictions, meta = queue.submit(
            np.array([[1.0, 2.0], [3.0, 4.0]])
        )
        assert predictions.tolist() == [3, 7]
        assert meta["batch_rows"] == 2
        assert meta["batch_requests"] == 1
        assert len(calls) == 1

    def test_concurrent_submits_coalesce(self):
        calls = []
        queue = BatchQueue(echo_execute(calls), window=0.05)
        matrices = [
            np.array([[float(i), 1.0]]) for i in range(8)
        ]
        results, errors = submit_concurrently(queue, matrices)
        assert not errors
        for i, (predictions, _) in enumerate(results):
            assert predictions.tolist() == [i + 1]
        # Fewer flushes than requests: the window did its job.
        assert len(calls) < 8
        assert sum(len(c) for c in calls) == 8

    def test_full_batch_flushes_early(self):
        calls = []
        queue = BatchQueue(
            echo_execute(calls), window=10.0, max_batch=4
        )
        matrices = [np.array([[float(i), 0.0]]) for i in range(8)]
        # A 10-second window would time the test out unless the row
        # target ends it early.
        results, errors = submit_concurrently(queue, matrices)
        assert not errors
        assert sum(len(c) for c in calls) == 8

    def test_slices_match_request_order(self):
        calls = []
        queue = BatchQueue(echo_execute(calls), window=0.05)
        matrices = [
            np.array([[10.0 * i + j, 0.0] for j in range(3)])
            for i in range(4)
        ]
        results, errors = submit_concurrently(queue, matrices)
        assert not errors
        for i, (predictions, _) in enumerate(results):
            assert predictions.tolist() == [
                10 * i, 10 * i + 1, 10 * i + 2
            ]

    def test_execute_failure_reaches_every_request(self):
        def explode(X):
            raise RuntimeError("model fell over")

        queue = BatchQueue(explode, window=0.05)
        matrices = [np.array([[1.0, 2.0]]) for _ in range(4)]
        results, errors = submit_concurrently(queue, matrices)
        assert all(r is None for r in results)
        assert len(errors) == 4
        assert all("model fell over" in str(e) for e in errors)

    def test_fixed_knobs_without_controller(self):
        queue = BatchQueue(lambda X: (X, {}), window=0.003, max_batch=32)
        assert queue.window == 0.003
        assert queue.max_batch == 32

    def test_controller_supplies_knobs(self):
        controller = AdaptiveBatchController(window=0.008, max_batch=16)
        queue = BatchQueue(
            lambda X: (X, {}), window=0.001, controller=controller
        )
        assert queue.window == 0.008
        assert queue.max_batch == 16


class TestAdaptiveBatchController:
    def feed(self, controller, seconds, requests, n=None):
        for _ in range(n or controller.period):
            controller.observe(seconds, requests)

    def test_shrinks_when_p99_eats_the_budget(self):
        controller = AdaptiveBatchController(
            objective_ms=100.0, window=0.008, max_batch=64
        )
        self.feed(controller, 0.09, 4)  # 90ms flushes vs 100ms bound
        assert controller.adjustments[-1][0] == "shrink"
        assert controller.window < 0.008
        assert controller.max_batch == 32

    def test_grows_with_headroom_and_coalescing(self):
        controller = AdaptiveBatchController(
            objective_ms=1000.0, window=0.002, max_batch=64
        )
        self.feed(controller, 0.001, 8)  # fast flushes, real batches
        assert controller.adjustments[-1][0] == "grow"
        assert controller.window == 0.003
        assert controller.max_batch == 128

    def test_decays_window_on_singleton_flushes(self):
        controller = AdaptiveBatchController(
            objective_ms=1000.0, window=0.002, max_batch=64
        )
        self.feed(controller, 0.001, 1)  # nothing coalesces
        assert controller.adjustments[-1][0] == "decay"
        assert controller.window < 0.002
        assert controller.max_batch == 64  # decay leaves the cap alone

    def test_window_decays_to_zero_not_below_floor(self):
        controller = AdaptiveBatchController(
            objective_ms=1000.0, window=0.0001, max_batch=64
        )
        self.feed(controller, 0.001, 1)  # 0.0001 -> 5e-5 (the floor)
        self.feed(controller, 0.001, 1)  # halving again would sink
        assert controller.window == 0.0  # below the floor: snap to 0

    def test_regrows_from_zero(self):
        controller = AdaptiveBatchController(
            objective_ms=1000.0, window=0.0, max_batch=64
        )
        self.feed(controller, 0.001, 8)
        assert controller.window == pytest.approx(0.0005)

    def test_window_capped_at_max(self):
        controller = AdaptiveBatchController(
            objective_ms=1000.0, window=0.015, max_window=0.02,
            max_batch=64,
        )
        self.feed(controller, 0.001, 8)
        assert controller.window == 0.02

    def test_batch_floor_and_cap(self):
        controller = AdaptiveBatchController(
            objective_ms=100.0, window=0.001, max_batch=8, min_batch=8
        )
        self.feed(controller, 0.09, 4)
        assert controller.max_batch == 8  # respects min_batch
        controller = AdaptiveBatchController(
            objective_ms=1000.0, window=0.001, max_batch=512,
            max_batch_cap=512,
        )
        self.feed(controller, 0.001, 8)
        assert controller.max_batch == 512  # respects the cap

    def test_adjusts_only_every_period(self):
        controller = AdaptiveBatchController(
            objective_ms=1000.0, window=0.002, max_batch=64, period=16
        )
        self.feed(controller, 0.001, 8, n=15)
        assert not controller.adjustments
        controller.observe(0.001, 8)
        assert controller.adjustments
