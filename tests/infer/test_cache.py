"""The prediction cache: canonical keys, LRU pressure, invalidation."""

import numpy as np

from repro.infer import PredictionCache, canonical_row_bytes
from repro.obs import MetricsRegistry


def rows(*values):
    return np.asarray(values, dtype=float)


class TestCanonicalKey:
    def test_same_point_same_bytes(self):
        a = canonical_row_bytes(np.array([1.0, 2.0]))
        b = canonical_row_bytes(np.array([1, 2], dtype=np.int64))
        assert a == b

    def test_negative_zero_collapses(self):
        assert canonical_row_bytes(
            np.array([-0.0, 1.0])
        ) == canonical_row_bytes(np.array([0.0, 1.0]))

    def test_distinct_points_distinct_bytes(self):
        assert canonical_row_bytes(
            np.array([1.0, 2.0])
        ) != canonical_row_bytes(np.array([2.0, 1.0]))


class TestLookupStore:
    def test_round_trip_splits_hits_and_misses(self):
        cache = PredictionCache(8)
        X = rows([1.0, 2.0], [3.0, 4.0])
        hits, misses, keys = cache.lookup("app", "v1", X)
        assert hits == {} and misses == [0, 1] and len(keys) == 2
        cache.store("app", "v1", keys, misses, [7, 9])
        hits, misses, _ = cache.lookup("app", "v1", X)
        assert hits == {0: 7, 1: 9} and misses == []

    def test_partial_hit(self):
        cache = PredictionCache(8)
        X = rows([1.0, 2.0])
        _, misses, keys = cache.lookup("app", "v1", X)
        cache.store("app", "v1", keys, misses, [5])
        X2 = rows([9.0, 9.0], [1.0, 2.0])
        hits, misses, _ = cache.lookup("app", "v1", X2)
        assert hits == {1: 5} and misses == [0]

    def test_version_isolates_entries(self):
        cache = PredictionCache(8)
        X = rows([1.0, 2.0])
        _, misses, keys = cache.lookup("app", "v1", X)
        cache.store("app", "v1", keys, misses, [5])
        hits, misses, _ = cache.lookup("app", "v2", X)
        assert hits == {} and misses == [0]

    def test_capacity_zero_disables(self):
        cache = PredictionCache(0)
        X = rows([1.0, 2.0])
        hits, misses, keys = cache.lookup("app", "v1", X)
        assert hits == {} and misses == [0] and keys == []
        cache.store("app", "v1", keys, misses, [5])
        assert len(cache) == 0


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = PredictionCache(2)
        for i in range(3):
            X = rows([float(i), 0.0])
            _, misses, keys = cache.lookup("app", "v1", X)
            cache.store("app", "v1", keys, misses, [i])
        assert len(cache) == 2
        hits, _, _ = cache.lookup("app", "v1", rows([0.0, 0.0]))
        assert hits == {}  # the first row was evicted
        hits, _, _ = cache.lookup("app", "v1", rows([2.0, 0.0]))
        assert hits == {0: 2}

    def test_hit_refreshes_recency(self):
        cache = PredictionCache(2)
        for i in range(2):
            X = rows([float(i), 0.0])
            _, misses, keys = cache.lookup("app", "v1", X)
            cache.store("app", "v1", keys, misses, [i])
        cache.lookup("app", "v1", rows([0.0, 0.0]))  # refresh row 0
        X = rows([9.0, 0.0])
        _, misses, keys = cache.lookup("app", "v1", X)
        cache.store("app", "v1", keys, misses, [9])
        hits, _, _ = cache.lookup("app", "v1", rows([0.0, 0.0]))
        assert hits == {0: 0}  # survived; row 1 was evicted instead


class TestInvalidation:
    def test_invalidate_app_drops_only_that_app(self):
        cache = PredictionCache(8)
        for app in ("a", "b"):
            X = rows([1.0, 2.0])
            _, misses, keys = cache.lookup(app, "v1", X)
            cache.store(app, "v1", keys, misses, [1])
        assert cache.invalidate_app("a") == 1
        assert len(cache) == 1
        hits, _, _ = cache.lookup("b", "v1", rows([1.0, 2.0]))
        assert hits == {0: 1}

    def test_clear(self):
        cache = PredictionCache(8)
        X = rows([1.0, 2.0])
        _, misses, keys = cache.lookup("a", "v1", X)
        cache.store("a", "v1", keys, misses, [1])
        cache.clear()
        assert len(cache) == 0


class TestMetrics:
    def test_counters_and_gauge(self):
        registry = MetricsRegistry()
        cache = PredictionCache(8, metrics=registry)
        X = rows([1.0, 2.0], [3.0, 4.0])
        _, misses, keys = cache.lookup("app", "v1", X)
        cache.store("app", "v1", keys, misses, [1, 2])
        cache.lookup("app", "v1", X)
        hits = registry.get("infer_cache_hits_total")
        assert hits.labels("app").value == 2
        misses_family = registry.get("infer_cache_misses_total")
        assert misses_family.labels("app").value == 2
        assert registry.get("infer_cache_size").value == 2
        cache.invalidate_app("app")
        assert (
            registry.get("infer_cache_invalidations_total").value == 2
        )
        assert registry.get("infer_cache_size").value == 0
