"""The per-tenant token bucket: grants, refusals, refill math."""

import pytest

from repro.infer import TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestAcquire:
    def test_burst_grants_then_refuses(self, clock):
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        assert bucket.try_acquire(5) == 0.0
        assert bucket.try_acquire(1) > 0.0

    def test_retry_hint_is_deficit_over_rate(self, clock):
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        bucket.try_acquire(5)
        # Empty bucket, asking for 3 rows at 10 rows/s: 0.3 seconds.
        assert bucket.try_acquire(3) == pytest.approx(0.3)

    def test_refill_restores_tokens(self, clock):
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        bucket.try_acquire(5)
        clock.now = 0.5  # 5 tokens refill
        assert bucket.try_acquire(5) == 0.0

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        clock.now = 100.0
        assert bucket.tokens == 5.0

    def test_zero_rows_counts_as_one(self, clock):
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        assert bucket.try_acquire(0) == 0.0
        assert bucket.tokens == 4.0

    def test_oversized_request_hint(self, clock):
        bucket = TokenBucket(10.0, burst=5.0, clock=clock)
        # 50 rows can never fit a burst of 5; the hint covers the
        # full shortfall, and the caller should split the batch.
        assert bucket.try_acquire(50) == pytest.approx(4.5)


class TestConstruction:
    def test_default_burst_is_one_second(self):
        assert TokenBucket(20.0).burst == 20.0

    def test_default_burst_floor_one_row(self):
        assert TokenBucket(0.5).burst == 1.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(0.0)

    def test_rejects_sub_row_burst(self):
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(10.0, burst=0.5)
