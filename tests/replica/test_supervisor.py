"""ServingPlane end to end: spawn, tail, SIGKILL the writer, promote.

One deliberately small multiprocess scenario (spawn startup on this
class of host is seconds per child); the fine-grained promotion and
staleness semantics live in the in-process suites next door.
"""

import os
import signal
import time

from replica_helpers import MOONS_PROGRAM
from repro.replica import CLUSTER_NAME, ServingPlane, read_cluster
from repro.service.client import EaseMLClient


def wait_until(predicate, timeout, interval=0.2):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestServingPlane:
    def test_failover_end_to_end(self, state_dir):
        plane = ServingPlane(
            state_dir,
            replicas=1,
            tenants=["acme"],
            sync="buffered",
            heartbeat_interval=0.2,
        )
        plane.start()
        try:
            token = plane.tokens["acme"]
            writer = EaseMLClient(plane.writer_url, token)
            writer.register_app("moons", MOONS_PROGRAM)

            # The replica tails the WAL and serves the read.
            replica_url = plane.replica_urls()[0]
            replica = EaseMLClient(replica_url, token)
            assert wait_until(
                lambda: "moons" in replica.list_apps().apps, timeout=30
            ), "replica never caught up"
            assert replica.last_replica_lag == 0

            # Topology is published for operators and the CLI.
            cluster = read_cluster(state_dir)
            assert cluster["writer_url"] == plane.writer_url
            assert (state_dir / CLUSTER_NAME).exists()

            # SIGKILL the writer: the supervisor promotes the replica.
            old_writer_url = plane.writer_url
            os.kill(cluster["writer_pid"], signal.SIGKILL)
            assert wait_until(
                lambda: plane.promotions == 1, timeout=60
            ), "writer death did not trigger a promotion"
            assert plane.writer_url == replica_url != old_writer_url

            # The promoted member serves reads AND writes.
            promoted = EaseMLClient(plane.writer_url, token)
            assert "moons" in promoted.list_apps().apps
            promoted.register_app("after-failover", MOONS_PROGRAM)
            assert "after-failover" in promoted.list_apps().apps

            # The published topology reflects the new writer.
            cluster = read_cluster(state_dir)
            assert cluster["writer_url"] == plane.writer_url
            assert cluster["promotions"] == 1
        finally:
            plane.stop()
