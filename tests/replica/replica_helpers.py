"""Shared helpers for the scale-out serving (replica) tests."""

from repro.ml.zoo import default_zoo

SMALL_ZOO = ["naive-bayes", "ridge", "tree-d4"]
MOONS_PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"


def writer_kwargs(**overrides):
    """Gateway keyword arguments for open_gateway's fresh path."""
    kwargs = dict(
        placement="partition",
        n_gpus=4,
        min_examples=10,
        seed=0,
        zoo=default_zoo().subset(SMALL_ZOO),
    )
    kwargs.update(overrides)
    return kwargs


def open_writer(state_dir, *, sync="buffered", snapshot_every=0, **over):
    """A durable writer gateway with one tenant; (gateway, token)."""
    from repro.persist import open_gateway

    gateway, _ = open_gateway(
        state_dir,
        sync=sync,
        snapshot_every=snapshot_every,
        **writer_kwargs(**over),
    )
    token = gateway.create_tenant("acme")
    return gateway, token


def task_payload(kind, n=60, seed=0):
    from repro.ml.data import TaskSpec, make_task

    X, y = make_task(TaskSpec(kind, n, 0.3, seed=seed))
    return (
        tuple(tuple(float(v) for v in row) for row in X),
        tuple(int(v) for v in y),
    )


def onboard(gateway, token, app="moons"):
    """Register an app and feed it enough examples to train."""
    from repro.service.api import FeedRequest, RegisterAppRequest

    gateway.handle(
        RegisterAppRequest(auth_token=token, app=app, program=MOONS_PROGRAM)
    )
    inputs, outputs = task_payload("moons")
    gateway.handle(
        FeedRequest(auth_token=token, app=app, inputs=inputs, outputs=outputs)
    )
