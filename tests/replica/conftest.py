"""Fixtures for the replica tests (helpers: replica_helpers.py)."""

import pytest


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "state"
