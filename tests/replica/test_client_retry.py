"""EaseMLClient retry discipline: idempotent reads retry, ambiguous
mutations surface instead of being silently replayed."""

import socket
import threading

import pytest

from repro.service.client import AmbiguousMutationError, EaseMLClient


class FlakyServer:
    """Accepts connections and drops them after reading the request.

    From the client's point of view every exchange is "bytes sent, no
    response" — the worst case for retry safety. Counts connections so
    tests can assert how many attempts the client made.
    """

    def __init__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.connections = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        self.sock.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            try:
                conn.settimeout(1.0)
                conn.recv(65536)  # read the request, answer nothing
            except OSError:
                pass
            finally:
                conn.close()

    def close(self):
        self._stop.set()
        self._thread.join(timeout=2)
        self.sock.close()


@pytest.fixture
def flaky():
    server = FlakyServer()
    yield server
    server.close()


class TestRetryDiscipline:
    def test_idempotent_read_is_retried(self, flaky):
        client = EaseMLClient(f"http://127.0.0.1:{flaky.port}", "t")
        with pytest.raises(ConnectionError):
            client.list_apps()
        # Three attempts for a GET: the read is safe to replay.
        assert flaky.connections == 3
        client.close()

    def test_mutation_on_fresh_connection_is_ambiguous(self, flaky):
        client = EaseMLClient(f"http://127.0.0.1:{flaky.port}", "t")
        with pytest.raises(AmbiguousMutationError):
            client.register_app("x", "{input: {[], []}, output: {[], []}}")
        # Exactly one attempt: the bytes may have been applied, so the
        # client must NOT replay the mutation blindly.
        assert flaky.connections == 1
        client.close()

    def test_ambiguous_is_a_connection_error(self):
        # Callers with existing ConnectionError handling still catch it.
        assert issubclass(AmbiguousMutationError, ConnectionError)
