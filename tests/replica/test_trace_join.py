"""Replica apply spans join the writer's trace by WAL request_id."""

from replica_helpers import MOONS_PROGRAM, open_writer
from repro.obs.context import (
    RequestContext,
    bind_request,
    clear_request,
)
from repro.replica import ReadReplica
from repro.service.api import RegisterAppRequest


def write_as_request(gateway, token, request_id):
    """One HTTP-shaped mutation: the ambient request id reaches the
    journal record exactly as the frontend's dispatch would stamp it."""
    bind_request(RequestContext(request_id=request_id))
    try:
        gateway.handle(
            RegisterAppRequest(
                auth_token=token, app="moons", program=MOONS_PROGRAM
            )
        )
    finally:
        clear_request()


class TestCrossProcessJoin:
    def test_apply_span_lands_under_the_writers_trace_id(self, state_dir):
        gateway, token = open_writer(state_dir)
        try:
            write_as_request(gateway, token, "req-join-42")
        finally:
            gateway.store.close()

        # A separate follower (the cross-process seam: only the WAL
        # connects them) tails and applies the history.
        replica = ReadReplica(state_dir)
        replica._apply(replica.tailer.seed())
        tracer = replica.gateway.tracer
        entries = tracer.get("req-join-42")
        assert entries, "replica kept no trace for the writer's id"
        (entry,) = entries
        assert entry["kept"] == "remote"
        assert entry["frontend"] == "replica"
        (span,) = entry["spans"]
        assert span["name"] == "replica.apply"
        assert span["attrs"]["type"] == "app_registered"
        assert span["attrs"]["batch"] >= 1
        assert span["duration_ms"] > 0.0

    def test_records_without_request_id_do_not_join(self, state_dir):
        gateway, token = open_writer(state_dir)
        gateway.store.close()  # tenant_created only, no ambient request

        replica = ReadReplica(state_dir)
        replica._apply(replica.tailer.seed())
        assert len(replica.gateway.tracer) == 0
