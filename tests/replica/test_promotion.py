"""Replica promotion: lock arbitration, dispositions, tripwires."""

import threading
import time

import pytest

from replica_helpers import MOONS_PROGRAM, onboard, open_writer
from repro.persist import (
    JOURNAL_NAME,
    JournalError,
    read_journal,
    recover_gateway,
    state_digest,
)
from repro.service.api import (
    JobStatusRequest,
    ListJobsRequest,
    RegisterAppRequest,
    SubmitTrainingRequest,
)
from repro.replica import ReadReplica, ReplicaGateway


def follow(state_dir):
    """A caught-up replica, stepped manually (no tail thread)."""
    replica = ReadReplica(state_dir)
    replica._apply(replica.tailer.seed())
    while replica.step():
        pass
    return replica


def poll_to_done(gateway, token, handle_id):
    while True:
        status = gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle_id)
        )
        if status.done:
            return status


def live_handles(gateway, token):
    return sorted(
        h.job_id
        for h in gateway.handle(ListJobsRequest(auth_token=token)).jobs
        if h.state in ("pending", "running", "preempted")
    )


class TestPromotionBasics:
    def test_promote_preserves_state_and_accepts_writes(self, state_dir):
        gateway, token = open_writer(state_dir)
        onboard(gateway, token)
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        ).handles
        for handle in handles:
            poll_to_done(gateway, token, handle.job_id)
        pre_kill = state_digest(gateway)
        gateway.store.close()  # writer dies; flock released

        replica = follow(state_dir)
        report = replica.promote()
        assert replica.promoted
        assert report.final_seq == replica.applied_seq
        assert report.recovered == [] and report.lost == []
        assert state_digest(replica.gateway) == pre_kill

        # The promoted replica is a writer: mutations persist.
        facade = ReplicaGateway(replica)
        facade.handle(
            RegisterAppRequest(
                auth_token=token, app="after", program=MOONS_PROGRAM
            )
        )
        promoted_digest = state_digest(replica.gateway)
        replica.gateway.store.close()

        # No double-applied records: the rewritten journal is strictly
        # increasing, and a plain recovery agrees with the promoted
        # state byte for byte (the digest tripwire).
        seqs = [r.seq for r in read_journal(state_dir / JOURNAL_NAME)[0]]
        assert seqs == sorted(set(seqs))
        recovered, _ = recover_gateway(state_dir)
        assert state_digest(recovered) == promoted_digest
        recovered.store.close()

    def test_promote_while_writer_alive_is_refused(self, state_dir):
        gateway, token = open_writer(state_dir)
        replica = follow(state_dir)
        with pytest.raises(JournalError, match="lock"):
            replica.promote(lock_timeout=0.2)
        assert not replica.promoted
        gateway.store.close()

    def test_promote_drains_unread_tail(self, state_dir):
        """Records appended after the last poll survive promotion."""
        gateway, token = open_writer(state_dir)
        replica = follow(state_dir)
        # The writer races ahead of the tailer, then dies.
        onboard(gateway, token)
        final = gateway.store.last_seq
        gateway.store.close()
        report = replica.promote()
        assert report.drained_records > 0
        assert replica.applied_seq == final


class TestDispositions:
    def _kill_with_in_flight(self, state_dir):
        gateway, token = open_writer(state_dir)
        onboard(gateway, token)
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=3)
        ).handles
        poll_to_done(gateway, token, handles[0].job_id)
        in_flight = live_handles(gateway, token)
        assert in_flight, "scenario needs at least one in-flight job"
        gateway.store.close()
        return token, in_flight

    def test_requeue_recovers_and_completes(self, state_dir):
        token, in_flight = self._kill_with_in_flight(state_dir)
        replica = follow(state_dir)
        report = replica.promote(in_flight="requeue")
        assert report.recovered == in_flight
        assert report.lost == []
        facade = ReplicaGateway(replica)
        for handle_id in in_flight:
            status = facade.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.disposition == "recovered"
        # Requeued jobs run to completion on the promoted cluster.
        for handle_id in in_flight:
            status = poll_to_done(facade, token, handle_id)
            assert status.state == "finished"
        replica.gateway.store.close()

    def test_mark_lost_is_journaled(self, state_dir):
        token, in_flight = self._kill_with_in_flight(state_dir)
        replica = follow(state_dir)
        report = replica.promote(in_flight="mark-lost")
        assert report.lost == in_flight
        facade = ReplicaGateway(replica)
        for handle_id in in_flight:
            status = facade.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.state == "cancelled"
            assert status.disposition == "lost"
        replica.gateway.store.close()
        # The cancellations were journaled: a later recovery agrees
        # instead of resurrecting the jobs.
        again, _ = recover_gateway(state_dir)
        for handle_id in in_flight:
            status = again.handle(
                JobStatusRequest(auth_token=token, job_id=handle_id)
            )
            assert status.state == "cancelled"
        again.store.close()

    def test_bad_policy_rejected(self, state_dir):
        gateway, token = open_writer(state_dir)
        gateway.store.close()
        replica = follow(state_dir)
        with pytest.raises(ValueError, match="in_flight"):
            replica.promote(in_flight="psychic")


class TestParkedWaiters:
    def test_waiter_rides_over_failover(self, state_dir):
        """A long-poll parked on the dying writer is released by the
        frontend's wait-abort, and the re-issued wait completes on the
        promoted replica."""
        gateway, token = open_writer(state_dir)
        onboard(gateway, token)
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=6)
        ).handles
        target = handles[-1].job_id
        # Freeze the writer's cluster so the waiter genuinely parks.
        runtime = gateway.server._runtime_oracle.runtime
        runtime.run_until_next_completion = lambda: []
        abort = threading.Event()
        gateway.add_wait_abort(abort)
        results = {}

        def park():
            results["status"] = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=target, wait=20)
            )

        waiter = threading.Thread(target=park)
        waiter.start()
        time.sleep(0.15)  # let it park on the done event
        # The writer dies: the frontend aborts parked waiters on the
        # way down rather than hanging them for the full wait.
        abort.set()
        waiter.join(timeout=5)
        assert not waiter.is_alive(), "abort did not wake the waiter"
        assert not results["status"].done  # released mid-flight
        gateway.store.close()

        # The client re-issues the same wait against the promoted
        # replica and rides it to a terminal state.
        replica = follow(state_dir)
        replica.promote(in_flight="requeue")
        facade = ReplicaGateway(replica)
        status = facade.handle(
            JobStatusRequest(auth_token=token, job_id=target, wait=30)
        )
        assert status.done
        assert status.state == "finished"
        assert status.disposition == "recovered"
        replica.gateway.store.close()
