"""ReadReplica + ReplicaGateway: reads, redirects, staleness, HTTP."""

import pytest

from replica_helpers import MOONS_PROGRAM, open_writer
from repro.errors import ApiError, ApiErrorCode
from repro.replica import ReadReplica, ReplicaGateway
from repro.service.api import (
    AppStatusRequest,
    ListAppsRequest,
    RegisterAppRequest,
)
from repro.service.client import EaseMLClient
from repro.service.http import serve_background


@pytest.fixture
def plane(state_dir):
    """In-process writer + caught-up replica; manual stepping."""
    gateway, token = open_writer(state_dir)
    gateway.handle(
        RegisterAppRequest(
            auth_token=token, app="moons", program=MOONS_PROGRAM
        )
    )
    replica = ReadReplica(state_dir)
    replica._apply(replica.tailer.seed())
    facade = ReplicaGateway(
        replica, max_lag_records=100, writer_url="http://writer:1"
    )
    yield gateway, token, replica, facade
    gateway.store.close()


class TestReplicaReads:
    def test_reads_match_the_writer(self, plane):
        gateway, token, replica, facade = plane
        mine = facade.handle(ListAppsRequest(auth_token=token))
        theirs = gateway.handle(ListAppsRequest(auth_token=token))
        assert mine.apps == theirs.apps == ("moons",)
        status = facade.handle(
            AppStatusRequest(auth_token=token, app="moons")
        )
        assert status.app == "moons"

    def test_new_writes_appear_after_step(self, plane):
        gateway, token, replica, facade = plane
        gateway.handle(
            RegisterAppRequest(
                auth_token=token, app="blobs", program=MOONS_PROGRAM
            )
        )
        assert replica.step() > 0
        assert facade.handle(
            ListAppsRequest(auth_token=token)
        ).apps == ("blobs", "moons")
        assert replica.applied_seq == gateway.store.last_seq

    def test_writes_rejected_with_writer_address(self, plane):
        gateway, token, replica, facade = plane
        with pytest.raises(ApiError) as err:
            facade.handle(
                RegisterAppRequest(
                    auth_token=token, app="x", program=MOONS_PROGRAM
                )
            )
        assert err.value.code is ApiErrorCode.NOT_WRITER
        assert err.value.details["writer_url"] == "http://writer:1"
        assert err.value.http_status == 503

    def test_submit_command_fails_fast(self, plane):
        gateway, token, replica, facade = plane
        future = facade.submit_command(
            RegisterAppRequest(
                auth_token=token, app="x", program=MOONS_PROGRAM
            )
        )
        with pytest.raises(ApiError) as err:
            future.result(timeout=1.0)
        assert err.value.code is ApiErrorCode.NOT_WRITER

    def test_stale_reads_beyond_bound_503(self, plane):
        gateway, token, replica, facade = plane
        facade.max_lag_records = 3
        replica._target_seq = replica.applied_seq + 10  # behind
        with pytest.raises(ApiError) as err:
            facade.handle(ListAppsRequest(auth_token=token))
        assert err.value.code is ApiErrorCode.UNAVAILABLE_RECOVERING
        assert err.value.details["replica_lag_records"] == 10
        assert err.value.details["writer_url"] == "http://writer:1"
        # catching up clears the bound
        replica._target_seq = replica.applied_seq
        assert facade.handle(ListAppsRequest(auth_token=token)).apps

    def test_staleness_gauges_advance(self, plane):
        gateway, token, replica, facade = plane
        metrics = replica.gateway.metrics.to_dict()
        applied = metrics["replica_applied_seq"]["series"][0]["value"]
        assert applied == replica.applied_seq > 0
        gateway.rotate_token("acme")
        replica.step()
        metrics = replica.gateway.metrics.to_dict()
        assert (
            metrics["replica_applied_seq"]["series"][0]["value"]
            == replica.applied_seq
            > applied
        )
        assert (
            metrics["replica_lag_records"]["series"][0]["value"] == 0
        )


class TestReplicaHTTP:
    def test_lag_header_and_redirect_over_http(self, plane):
        gateway, token, replica, facade = plane
        writer_server, _ = serve_background(gateway)
        facade.writer_url = writer_server.url
        replica_server, _ = serve_background(facade)
        try:
            client = EaseMLClient(replica_server.url, token)
            # read served by the replica, lag header echoed
            assert client.list_apps().apps == ("moons",)
            assert client.last_replica_lag == 0
            # mutation transparently redirected to the writer
            response = client.register_app("redirected", MOONS_PROGRAM)
            assert response.app == "redirected"
            assert client.writer_url == writer_server.url
            # the replica catches up and serves the new app
            replica.step()
            assert "redirected" in client.list_apps().apps
            # subsequent mutations go straight to the learned writer
            response = client.register_app("direct", MOONS_PROGRAM)
            assert response.app == "direct"
        finally:
            for server in (writer_server, replica_server):
                server.shutdown()
                server.server_close()

    def test_stale_read_falls_back_to_writer_over_http(self, plane):
        gateway, token, replica, facade = plane
        writer_server, _ = serve_background(gateway)
        facade.writer_url = writer_server.url
        facade.max_lag_records = 0
        replica_server, _ = serve_background(facade)
        try:
            replica._target_seq = replica.applied_seq + 5
            client = EaseMLClient(replica_server.url, token)
            # the replica 503s; the client re-reads from the writer
            assert client.list_apps().apps == ("moons",)
        finally:
            for server in (writer_server, replica_server):
                server.shutdown()
                server.server_close()
