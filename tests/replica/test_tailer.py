"""WalTailer: seeding, following, torn tails, compaction re-seeds."""

import pytest

from replica_helpers import MOONS_PROGRAM, open_writer
from repro.persist import (
    JOURNAL_NAME,
    Journal,
    JournalCorruptionError,
    read_compaction_pointer,
    read_records_from,
)
from repro.persist.digest import state_digest
from repro.replica import WalTailer


def make_journal(tmp_path, n=5):
    journal = Journal(tmp_path / JOURNAL_NAME, sync="buffered")
    for i in range(n):
        journal.append("tenant_created", {"i": i})
    return journal


class TestReadRecordsFrom:
    """The public incremental read API on Journal."""

    def test_reads_past_the_frontier(self, tmp_path):
        journal = make_journal(tmp_path, n=5)
        assert [r.seq for r in journal.records_from(0)] == [1, 2, 3, 4, 5]
        assert [r.seq for r in journal.records_from(3)] == [4, 5]
        assert [r.seq for r in journal.records_from(5)] == []
        journal.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = make_journal(tmp_path, n=3)
        journal.close()
        path = tmp_path / JOURNAL_NAME
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "type": "tenant_cre')
        assert [r.seq for r in read_records_from(path, 0)] == [1, 2, 3]

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = make_journal(tmp_path, n=3)
        journal.close()
        path = tmp_path / JOURNAL_NAME
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-4] + 'xxx"'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError):
            list(read_records_from(path, 0))

    def test_compacted_past_frontier_raises_reseed_signal(self, tmp_path):
        journal = Journal(
            tmp_path / JOURNAL_NAME, sync="buffered", start_seq=10
        )
        journal.append("tenant_created", {})
        journal.close()
        with pytest.raises(JournalCorruptionError, match="re-seed"):
            list(read_records_from(tmp_path / JOURNAL_NAME, 3))

    def test_missing_file_is_empty(self, tmp_path):
        assert list(read_records_from(tmp_path / "nope.jsonl", 0)) == []


class TestTailerFollow:
    def test_seed_then_follow(self, state_dir):
        gateway, token = open_writer(state_dir)
        tailer = WalTailer(state_dir)
        batch = tailer.seed()
        assert [r.seq for r in batch.records] == [1]
        assert tailer.emitted_seq == 1

        from repro.service.api import RegisterAppRequest

        gateway.handle(
            RegisterAppRequest(
                auth_token=token, app="m", program=MOONS_PROGRAM
            )
        )
        batch = tailer.poll()
        assert batch.records and not batch.reseeded
        assert tailer.emitted_seq == gateway.store.last_seq
        assert not tailer.poll()  # idle poll is falsy
        gateway.store.close()

    def test_partial_line_left_unconsumed(self, state_dir):
        gateway, token = open_writer(state_dir)
        tailer = WalTailer(state_dir)
        tailer.seed()
        path = state_dir / JOURNAL_NAME
        whole = (
            '{"seq": 2, "type": "tenant_created", "payload": '
            '{"name": "x", "quota": null, "token": "t"}, "crc": 0}\n'
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(whole[:30])
            handle.flush()
            assert not tailer.poll()  # incomplete line: no progress
        gateway.store.close()

    def test_seed_twice_rejected(self, state_dir):
        open_writer(state_dir)[0].store.close()
        tailer = WalTailer(state_dir)
        tailer.seed()
        with pytest.raises(RuntimeError):
            tailer.seed()
        fresh = WalTailer(state_dir)
        with pytest.raises(RuntimeError):
            fresh.poll()  # poll before seed


class TestCompactionRace:
    """Regression: compaction mid-tail must re-seed, not corrupt."""

    def test_reseed_after_compaction_past_frontier(self, state_dir):
        gateway, token = open_writer(state_dir)
        tailer = WalTailer(state_dir)
        tailer.seed()

        # Writer appends, then compacts: the journal is truncated past
        # everything the tailer has not read yet.
        for _ in range(6):
            gateway.rotate_token("acme")
        gateway.store.snapshot(state_digest(gateway))
        assert read_compaction_pointer(state_dir) is not None

        batch = tailer.poll()
        assert batch.reseeded
        assert tailer.reseeds == 1
        assert tailer.emitted_seq == gateway.store.last_seq
        # The re-seed hands over the compacted basis for promotion use.
        assert batch.snapshot_seq == gateway.store.snapshot_seq
        assert batch.snapshot_records
        # Compaction dropped the superseded rotations: the emitted gap
        # records may skip seqs but stay ordered.
        seqs = [r.seq for r in batch.records]
        assert seqs == sorted(seqs)
        gateway.store.close()

    def test_applied_state_converges_after_reseed(self, state_dir):
        gateway, token = open_writer(state_dir)

        from repro.replica import ReadReplica

        replica = ReadReplica(state_dir)
        replica._apply(replica.tailer.seed())

        for _ in range(5):
            gateway.rotate_token("acme")
        gateway.store.snapshot(state_digest(gateway))
        while replica.step():
            pass
        assert replica.applied_seq == gateway.store.last_seq
        assert state_digest(replica.gateway) == state_digest(gateway)
        gateway.store.close()

    def test_truly_corrupt_journal_raises(self, state_dir):
        gateway, token = open_writer(state_dir)
        tailer = WalTailer(state_dir)
        tailer.seed()
        for _ in range(2):
            gateway.rotate_token("acme")
        path = state_dir / JOURNAL_NAME
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("token_rotated", "token_rotatex")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError, match="no progress"):
            for _ in range(10):
                tailer.poll()
        gateway.store.close()
