"""Tests for the quality/cost dataset abstraction."""

import numpy as np
import pytest

from repro.datasets.base import ModelInfo, ModelSelectionDataset


class TestValidation:
    def test_quality_range_enforced(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            ModelSelectionDataset(
                "bad", np.array([[1.5]]), np.array([[1.0]])
            )

    def test_cost_positive_enforced(self):
        with pytest.raises(ValueError, match="positive"):
            ModelSelectionDataset(
                "bad", np.array([[0.5]]), np.array([[0.0]])
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ModelSelectionDataset(
                "bad", np.ones((2, 3)) * 0.5, np.ones((2, 2))
            )

    def test_model_info_count_enforced(self):
        with pytest.raises(ValueError, match="ModelInfo"):
            ModelSelectionDataset(
                "bad",
                np.ones((1, 2)) * 0.5,
                np.ones((1, 2)),
                models=[ModelInfo("only-one")],
            )

    def test_default_names_generated(self):
        ds = ModelSelectionDataset(
            "d", np.ones((2, 3)) * 0.5, np.ones((2, 3))
        )
        assert ds.user_names == ["user-0", "user-1"]
        assert [m.name for m in ds.models] == [
            "model-0", "model-1", "model-2"
        ]


class TestGroundTruth:
    def test_best_quality_and_model(self, tiny_dataset):
        assert tiny_dataset.best_quality(0) == 0.9
        assert tiny_dataset.best_model(0) == 3
        assert tiny_dataset.best_model(3) == 2

    def test_best_qualities_vector(self, tiny_dataset):
        assert np.allclose(
            tiny_dataset.best_qualities(), [0.9, 0.85, 0.8, 0.95]
        )

    def test_total_cost(self, tiny_dataset):
        assert tiny_dataset.total_cost() == pytest.approx(4 * 15.0)

    def test_citations_and_years(self, tiny_dataset):
        assert tiny_dataset.citations()[0] == 1000
        assert tiny_dataset.years()[-1] == 2014


class TestSubsetsAndSplits:
    def test_subset_users(self, tiny_dataset):
        sub = tiny_dataset.subset_users([2, 0])
        assert sub.n_users == 2
        assert np.allclose(sub.quality[0], tiny_dataset.quality[2])
        assert sub.user_names == ["user-2", "user-0"]

    def test_subset_validates_indices(self, tiny_dataset):
        with pytest.raises(IndexError):
            tiny_dataset.subset_users([5])

    def test_split_partitions_users(self, tiny_dataset):
        train, test = tiny_dataset.split_users(1, seed=0)
        assert train.n_users == 3
        assert test.n_users == 1
        combined = sorted(train.user_names + test.user_names)
        assert combined == sorted(tiny_dataset.user_names)

    def test_split_seeded(self, tiny_dataset):
        _, a = tiny_dataset.split_users(2, seed=7)
        _, b = tiny_dataset.split_users(2, seed=7)
        assert a.user_names == b.user_names

    def test_split_bounds(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split_users(0)
        with pytest.raises(ValueError):
            tiny_dataset.split_users(4)

    def test_subset_is_a_copy(self, tiny_dataset):
        sub = tiny_dataset.subset_users([0])
        sub.quality[0, 0] = 0.0
        assert tiny_dataset.quality[0, 0] == 0.5


class TestSerialisation:
    def test_roundtrip_dict(self, tiny_dataset):
        clone = ModelSelectionDataset.from_dict(tiny_dataset.to_dict())
        assert clone.name == tiny_dataset.name
        assert np.allclose(clone.quality, tiny_dataset.quality)
        assert np.allclose(clone.cost, tiny_dataset.cost)
        assert clone.models == tiny_dataset.models

    def test_roundtrip_json_file(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.json"
        tiny_dataset.save_json(path)
        clone = ModelSelectionDataset.load_json(path)
        assert np.allclose(clone.quality, tiny_dataset.quality)
        assert clone.user_names == tiny_dataset.user_names

    def test_statistics_fields(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert stats["n_users"] == 4
        assert stats["n_models"] == 5
        assert stats["cost_spread"] == pytest.approx(5.0)
