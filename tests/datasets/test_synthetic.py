"""Tests for the synthetic generators (Section 5.1, Appendix B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import (
    SYN_CONFIGS,
    SyntheticSpec,
    generate_full_synthetic,
    generate_syn,
    hidden_feature_covariance,
    load_all_syn,
)


class TestHiddenFeatureCovariance:
    def test_unit_diagonal(self, rng):
        f = rng.uniform(0, 1, 10)
        cov = hidden_feature_covariance(f, 0.5)
        assert np.allclose(np.diag(cov), 1.0, atol=1e-6)

    def test_closer_features_more_correlated(self):
        cov = hidden_feature_covariance(np.array([0.0, 0.1, 0.9]), 0.5)
        assert cov[0, 1] > cov[0, 2]

    def test_larger_sigma_stronger_correlation(self):
        f = np.array([0.0, 0.5])
        weak = hidden_feature_covariance(f, 0.01)[0, 1]
        strong = hidden_feature_covariance(f, 0.5)[0, 1]
        assert strong > weak

    def test_cholesky_factorizable(self, rng):
        f = rng.uniform(0, 1, 20)
        cov = hidden_feature_covariance(f, 0.5)
        np.linalg.cholesky(cov)  # must not raise


class TestGenerateSyn:
    def test_shape_and_name(self):
        ds = generate_syn(0.5, 1.0, n_users=20, n_models=10, seed=0)
        assert ds.n_users == 20
        assert ds.n_models == 10
        assert ds.name == "SYN(0.5,1.0)"

    def test_quality_clipped(self):
        ds = generate_syn(0.5, 1.0, n_users=50, n_models=30, seed=0)
        assert np.all(ds.quality >= 0.0)
        assert np.all(ds.quality <= 1.0)

    def test_deterministic_given_seed(self):
        a = generate_syn(0.5, 0.1, n_users=10, n_models=5, seed=9)
        b = generate_syn(0.5, 0.1, n_users=10, n_models=5, seed=9)
        assert np.allclose(a.quality, b.quality)
        assert np.allclose(a.cost, b.cost)

    def test_baseline_groups_create_difficulty_spread(self):
        ds = generate_syn(
            0.5, 0.1, n_users=100, n_models=20, seed=1,
            baseline_groups=[(0.9, 0.01), (0.2, 0.01)],
        )
        means = ds.quality.mean(axis=1)
        easy = means[::2]
        hard = means[1::2]
        assert easy.mean() > hard.mean() + 0.3

    def test_alpha_scales_model_term(self):
        flat = generate_syn(0.5, 0.0, n_users=30, n_models=10, seed=2,
                            baseline_groups=[(0.5, 0.0)])
        # With alpha=0 and zero baseline spread, all qualities equal.
        assert np.allclose(flat.quality, 0.5, atol=1e-9)

    def test_stronger_correlation_smoother_columns(self):
        """With larger σ_M, neighbouring models correlate more."""

        def mean_abs_corr(ds):
            c = np.corrcoef(ds.quality.T)
            off = c[~np.eye(c.shape[0], dtype=bool)]
            return np.mean(np.abs(off))

        weak = generate_syn(0.01, 1.0, n_users=100, n_models=20, seed=3,
                            baseline_groups=[(0.5, 0.0)])
        strong = generate_syn(0.5, 1.0, n_users=100, n_models=20, seed=3,
                              baseline_groups=[(0.5, 0.0)])
        assert mean_abs_corr(strong) > mean_abs_corr(weak)

    def test_costs_in_range(self):
        ds = generate_syn(0.5, 1.0, n_users=10, n_models=5, seed=0,
                          cost_low=0.2, cost_high=0.9)
        assert np.all(ds.cost >= 0.2)
        assert np.all(ds.cost <= 0.9)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_syn(0.0, 1.0)
        with pytest.raises(ValueError):
            generate_syn(0.5, 1.0, n_users=0)


class TestLoadAllSyn:
    def test_four_figure8_datasets(self):
        suite = load_all_syn(seed=0, n_users=20, n_models=10)
        assert set(suite) == {
            f"SYN({sm:g},{al:.1f})" for sm, al in SYN_CONFIGS
        }
        for ds in suite.values():
            assert ds.n_users == 20
            assert ds.n_models == 10


class TestFullSynthetic:
    def test_spec_shape_accounting(self):
        spec = SyntheticSpec(
            baseline_groups=[(0.75, 0.05), (0.25, 0.05)],
            model_groups=[(0.5, 30), (0.01, 20)],
            user_groups=[0.5, 0.1],
            users_per_combo=10,
        )
        assert spec.n_users == 2 * 2 * 10
        assert spec.n_models == 50

    def test_generated_dataset_matches_spec(self):
        spec = SyntheticSpec(users_per_combo=5,
                             model_groups=[(0.5, 12)])
        ds = generate_full_synthetic(spec, seed=0)
        assert ds.n_users == spec.n_users
        assert ds.n_models == 12
        assert np.all((ds.quality >= 0) & (ds.quality <= 1))

    def test_model_group_families_recorded(self):
        spec = SyntheticSpec(model_groups=[(0.5, 3), (0.01, 2)],
                             users_per_combo=3)
        ds = generate_full_synthetic(spec, seed=0)
        families = [m.family for m in ds.models]
        assert families == ["model-group-0"] * 3 + ["model-group-1"] * 2

    def test_white_noise_perturbs(self):
        quiet = generate_full_synthetic(
            SyntheticSpec(sigma_w=0.0, users_per_combo=4,
                          model_groups=[(0.5, 6)]),
            seed=5,
        )
        noisy = generate_full_synthetic(
            SyntheticSpec(sigma_w=0.3, users_per_combo=4,
                          model_groups=[(0.5, 6)]),
            seed=5,
        )
        assert not np.allclose(quiet.quality, noisy.quality)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_valid_dataset_for_any_seed(self, seed):
        ds = generate_full_synthetic(
            SyntheticSpec(users_per_combo=3, model_groups=[(0.3, 5)]),
            seed=seed,
        )
        assert np.all((ds.quality >= 0.0) & (ds.quality <= 1.0))
        assert np.all(ds.cost > 0.0)
