"""Tests for the calibrated DEEPLEARNING trace simulator."""

import numpy as np
import pytest

from repro.datasets.deeplearning import (
    DEEP_ARCHITECTURES,
    architecture_names,
    load_deeplearning,
)


class TestStructure:
    def test_figure8_shape(self):
        ds = load_deeplearning(seed=0)
        assert ds.n_users == 22
        assert ds.n_models == 8

    def test_paper_model_names(self):
        names = architecture_names()
        assert set(names) == {
            "NIN", "GoogLeNet", "ResNet-50", "AlexNet",
            "BN-AlexNet", "ResNet-18", "VGG-16", "SqueezeNet",
        }

    def test_deterministic(self):
        a = load_deeplearning(seed=3)
        b = load_deeplearning(seed=3)
        assert np.allclose(a.quality, b.quality)
        assert np.allclose(a.cost, b.cost)

    def test_seed_changes_matrix(self):
        a = load_deeplearning(seed=1)
        b = load_deeplearning(seed=2)
        assert not np.allclose(a.quality, b.quality)


class TestCalibration:
    def test_metadata_matches_architectures(self):
        ds = load_deeplearning(seed=0)
        by_name = {m.name: m for m in ds.models}
        assert by_name["AlexNet"].citations > by_name["SqueezeNet"].citations
        assert by_name["SqueezeNet"].year == 2016
        assert by_name["AlexNet"].year == 2012

    def test_citation_order_alexnet_first(self):
        ds = load_deeplearning(seed=0)
        assert int(np.argmax(ds.citations())) == [
            m.name for m in ds.models
        ].index("AlexNet")

    def test_vgg_is_most_expensive_on_average(self):
        ds = load_deeplearning(seed=0)
        mean_costs = ds.cost.mean(axis=0)
        names = [m.name for m in ds.models]
        assert names[int(np.argmax(mean_costs))] == "VGG-16"

    def test_squeezenet_cheapest_on_average(self):
        ds = load_deeplearning(seed=0)
        mean_costs = ds.cost.mean(axis=0)
        names = [m.name for m in ds.models]
        assert names[int(np.argmin(mean_costs))] == "SqueezeNet"

    def test_heterogeneous_winners(self):
        """No single architecture wins for every user (the crossover
        structure that cost-awareness exploits)."""
        ds = load_deeplearning(seed=0)
        winners = {ds.best_model(i) for i in range(ds.n_users)}
        assert len(winners) >= 3

    def test_cheap_model_often_near_best(self):
        """For most users some model in the cheaper half is within 0.05
        of the best — Section 5.3.2's justification for Figure 13."""
        ds = load_deeplearning(seed=0)
        rel = np.array([a.relative_cost for a in DEEP_ARCHITECTURES])
        cheap = rel <= np.median(rel)
        hits = 0
        for i in range(ds.n_users):
            best = ds.best_quality(i)
            if np.max(ds.quality[i, cheap]) >= best - 0.05:
                hits += 1
        assert hits >= ds.n_users // 2

    def test_quality_valid(self):
        ds = load_deeplearning(seed=0)
        assert np.all((ds.quality >= 0) & (ds.quality <= 1))
        assert np.all(ds.cost > 0)

    def test_custom_user_count(self):
        ds = load_deeplearning(n_users=5, seed=0)
        assert ds.n_users == 5

    def test_rejects_zero_users(self):
        with pytest.raises(ValueError):
            load_deeplearning(n_users=0)
