"""Tests for the calibrated 179CLASSIFIER simulator."""

import numpy as np
import pytest

from repro.datasets.classifier179 import (
    CLASSIFIER_FAMILIES,
    load_179classifier,
)


class TestStructure:
    def test_figure8_shape(self):
        ds = load_179classifier(seed=0)
        assert ds.n_users == 121
        assert ds.n_models == 179

    def test_family_sizes_sum_to_179(self):
        assert sum(size for _, size, _, _ in CLASSIFIER_FAMILIES) == 179

    def test_deterministic(self):
        a = load_179classifier(seed=4)
        b = load_179classifier(seed=4)
        assert np.allclose(a.quality, b.quality)

    def test_costs_are_uniform_01(self):
        """The paper draws synthetic costs from U(0, 1)."""
        ds = load_179classifier(seed=0)
        assert np.all(ds.cost > 0.0)
        assert np.all(ds.cost <= 1.0)
        # Roughly uniform: mean near 0.5.
        assert abs(ds.cost.mean() - 0.5) < 0.05


class TestFamilyStructure:
    def test_within_family_correlation_exceeds_between(self):
        ds = load_179classifier(seed=0)
        families = np.array([m.family for m in ds.models])
        corr = np.corrcoef(ds.quality.T)
        same = []
        different = []
        rng = np.random.default_rng(0)
        for _ in range(3000):
            i, j = rng.integers(0, ds.n_models, 2)
            if i == j:
                continue
            (same if families[i] == families[j] else different).append(
                corr[i, j]
            )
        assert np.mean(same) > np.mean(different)

    def test_random_forest_family_strong(self):
        """Delgado et al.'s headline: random forests lead on average."""
        ds = load_179classifier(seed=0)
        families = np.array([m.family for m in ds.models])
        rf_mean = ds.quality[:, families == "random-forest"].mean()
        overall = ds.quality.mean()
        assert rf_mean > overall + 0.03

    def test_weak_baseline_family_weak(self):
        ds = load_179classifier(seed=0)
        families = np.array([m.family for m in ds.models])
        marginal = ds.quality[:, families == "marginal"].mean()
        assert marginal < ds.quality.mean() - 0.1

    def test_quality_valid(self):
        ds = load_179classifier(seed=0)
        assert np.all((ds.quality >= 0) & (ds.quality <= 1))

    def test_rejects_zero_users(self):
        with pytest.raises(ValueError):
            load_179classifier(n_users=0)


def test_benchmark_suite_contains_figure8_rows():
    from repro.datasets import load_benchmark_suite

    suite = load_benchmark_suite(seed=0)
    expected = {
        "DEEPLEARNING": (22, 8),
        "179CLASSIFIER": (121, 179),
        "SYN(0.01,0.1)": (200, 100),
        "SYN(0.01,1.0)": (200, 100),
        "SYN(0.5,0.1)": (200, 100),
        "SYN(0.5,1.0)": (200, 100),
    }
    assert set(suite) == set(expected)
    for name, (n_users, n_models) in expected.items():
        assert suite[name].n_users == n_users, name
        assert suite[name].n_models == n_models, name
