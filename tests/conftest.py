"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import ModelInfo, ModelSelectionDataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset() -> ModelSelectionDataset:
    """A hand-written 4-user × 5-model dataset with known structure.

    User 0's best model is 3, user 1's is 0, user 2's is 4, user 3's
    is 2.  Costs grow with the model index.
    """
    quality = np.array(
        [
            [0.50, 0.60, 0.70, 0.90, 0.55],
            [0.85, 0.40, 0.60, 0.70, 0.65],
            [0.30, 0.55, 0.60, 0.62, 0.80],
            [0.45, 0.50, 0.95, 0.70, 0.66],
        ]
    )
    cost = np.tile(np.array([1.0, 2.0, 3.0, 4.0, 5.0]), (4, 1))
    models = [
        ModelInfo(f"m{j}", citations=1000 - 100 * j, year=2010 + j)
        for j in range(5)
    ]
    return ModelSelectionDataset(
        name="tiny",
        quality=quality,
        cost=cost,
        models=models,
        quality_kind="synthetic",
        cost_kind="synthetic",
    )


@pytest.fixture
def identity_cov() -> np.ndarray:
    return 0.09 * np.eye(5)
