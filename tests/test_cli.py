"""Tests for the command-line interface."""

import pytest

from repro.cli import _build_parser, build_service, main


class TestStats:
    def test_prints_figure8_table(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "DEEPLEARNING" in out
        assert "179CLASSIFIER" in out
        assert "SYN(0.5,1.0)" in out


class TestFigure:
    def test_figure8(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_figure13_with_trials_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "fig13.txt"
        code = main(
            ["figure", "13", "--trials", "2", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "Figure 13" in out_file.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])


class TestCompare:
    def test_compare_with_exports(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "curves.csv"
        code = main(
            [
                "compare",
                "--dataset", "DEEPLEARNING",
                "--strategies", "easeml", "most_cited",
                "--trials", "2",
                "--budget", "0.1",
                "--cost-aware",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "easeml" in out
        assert "speedup of easeml" in out
        assert json_path.exists()
        assert csv_path.exists()

    def test_unknown_dataset_errors(self, capsys):
        assert main(["compare", "--dataset", "NOPE", "--trials", "1"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--strategies", "psychic"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRuntime:
    def test_generated_workload_with_dumps(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        events_path = tmp_path / "events.jsonl"
        code = main(
            [
                "runtime",
                "--jobs", "12",
                "--n-gpus", "4",
                "--policy", "partition",
                "--seed", "3",
                "--trace-out", str(trace_path),
                "--events-out", str(events_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "partition placement" in out
        assert trace_path.exists() and events_path.exists()

    def test_trace_replay_reproduces_events(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        first = tmp_path / "events1.jsonl"
        second = tmp_path / "events2.jsonl"
        args = ["runtime", "--jobs", "10", "--n-gpus", "4", "--seed", "1"]
        assert main(
            args + ["--trace-out", str(trace_path),
                    "--events-out", str(first)]
        ) == 0
        assert main(
            ["runtime", "--n-gpus", "4",
             "--trace-in", str(trace_path), "--events-out", str(second)]
        ) == 0
        assert first.read_text() == second.read_text()

    def test_policies_accepted(self, capsys):
        for policy in ("single", "dedicated"):
            assert main(
                ["runtime", "--jobs", "5", "--policy", policy]
            ) == 0

    def test_unknown_dataset_errors(self, capsys):
        assert main(["runtime", "--dataset", "NOPE"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["runtime", "--policy", "psychic"])

    def test_unreadable_trace_errors_cleanly(self, capsys, tmp_path):
        assert main(
            ["runtime", "--trace-in", str(tmp_path / "missing.jsonl")]
        ) == 2
        assert "cannot load trace" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"action": "explode", "time": 0, "user": 0}\n')
        assert main(["runtime", "--trace-in", str(bad)]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_preemption_overhead_flag(self, capsys, tmp_path):
        """The checkpoint-cost knob changes the replayed schedule."""
        trace_path = tmp_path / "trace.jsonl"
        free = tmp_path / "free.jsonl"
        paid = tmp_path / "paid.jsonl"
        base = ["runtime", "--jobs", "12", "--n-gpus", "4",
                "--policy", "partition", "--seed", "3"]
        assert main(
            base + ["--trace-out", str(trace_path),
                    "--events-out", str(free)]
        ) == 0
        assert main(
            ["runtime", "--n-gpus", "4", "--policy", "partition",
             "--preemption-overhead", "0.5",
             "--trace-in", str(trace_path), "--events-out", str(paid)]
        ) == 0
        assert main(["trace", "diff", str(free), str(paid)]) == 1
        assert "first divergence" in capsys.readouterr().out


class TestServe:
    def _args(self, extra=()):
        return _build_parser().parse_args(
            ["serve", "--port", "0", "--n-gpus", "2", *extra]
        )

    def test_build_service_wires_gateway_and_tenants(self):
        gateway, tokens, server, report = build_service(
            self._args(["--tenant", "alice", "--tenant", "bob"])
        )
        try:
            assert gateway.tenant_names() == ["alice", "bob"]
            assert set(tokens) == {"alice", "bob"}
            assert all(t.startswith("tok-") for t in tokens.values())
            assert report is None
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")
        finally:
            server.server_close()

    def test_build_service_default_tenant(self):
        _, tokens, server, _ = build_service(self._args())
        try:
            assert list(tokens) == ["default"]
        finally:
            server.server_close()

    def test_serve_rejects_unknown_placement(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["serve", "--placement", "psychic"])

    def test_build_service_durable_restart(self, tmp_path):
        """--state-dir round trip: tokens and tenants survive."""
        state = str(tmp_path / "state")
        gateway, tokens, server, report = build_service(
            self._args(["--tenant", "alice", "--state-dir", state])
        )
        server.server_close()
        gateway.store.close()
        assert report is None
        gateway2, tokens2, server2, report2 = build_service(
            self._args(["--tenant", "alice", "--state-dir", state])
        )
        try:
            assert report2 is not None
            assert tokens2 == tokens
            assert gateway2.tenant_names() == ["alice"]
        finally:
            server2.server_close()
            gateway2.store.close()


class TestStateCommands:
    def _serve_args(self, state, extra=()):
        return _build_parser().parse_args(
            ["serve", "--port", "0", "--n-gpus", "2",
             "--state-dir", state, *extra]
        )

    def test_inspect_and_compact(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        gateway, tokens, server, _ = build_service(
            self._serve_args(state, ["--tenant", "alice"])
        )
        server.server_close()
        gateway.store.close()

        assert main(["state", "inspect", "--state-dir", state]) == 0
        out = capsys.readouterr().out
        assert "tenant_created: 1" in out
        assert tokens["alice"] in out

        assert main(
            ["state", "inspect", "--state-dir", state, "--json"]
        ) == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["tenants"]["alice"]["token"] == tokens["alice"]

        assert main(["state", "compact", "--state-dir", state]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        assert main(["state", "inspect", "--state-dir", state]) == 0
        assert "snapshot-" in capsys.readouterr().out

    def test_inspect_rejects_non_state_dir(self, capsys, tmp_path):
        assert main(
            ["state", "inspect", "--state-dir", str(tmp_path)]
        ) == 2
        assert "not a state directory" in capsys.readouterr().err


class TestRuntimeArrivals:
    """The --arrivals churn path (ISSUE 3)."""

    DEMO = "examples/arrivals_demo.jsonl"

    def test_bundled_demo_trace_runs(self, capsys):
        assert main(
            ["runtime", "--arrivals", self.DEMO,
             "--jobs", "12", "--n-gpus", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "churn workload" in out
        assert "tenant arrivals (trace)" in out
        assert "serves by tenant" in out

    def test_churn_replay_diff_is_empty(self, capsys, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        args = ["runtime", "--arrivals", self.DEMO,
                "--jobs", "16", "--n-gpus", "4", "--seed", "2"]
        assert main(args + ["--events-out", str(first)]) == 0
        assert main(args + ["--events-out", str(second)]) == 0
        capsys.readouterr()
        # The acceptance criterion: `repro trace diff` reports no
        # divergence between two replays of the same churn schedule.
        assert main(["trace", "diff", str(first), str(second)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_arrivals_trace_missing_errors(self, capsys, tmp_path):
        assert main(
            ["runtime", "--arrivals", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "cannot load arrivals trace" in capsys.readouterr().err

    def test_arrivals_without_membership_items_errors(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "subs.jsonl"
        trace.write_text(
            '{"action": "submit", "time": 0.0, "user": 0, '
            '"model": 1, "gpu_time": 1.0}\n'
        )
        assert main(["runtime", "--arrivals", str(trace)]) == 2
        assert "no arrive/depart" in capsys.readouterr().err

    def test_arrivals_unknown_user_errors(self, capsys, tmp_path):
        trace = tmp_path / "big.jsonl"
        trace.write_text('{"action": "arrive", "time": 0.0, "user": 99}\n')
        assert main(["runtime", "--arrivals", str(trace)]) == 2
        assert "only has" in capsys.readouterr().err


class TestReplicaStatus:
    """`replica status` surfaces the writer's pick-latency histogram."""

    CLUSTER = {
        "front_url": "http://127.0.0.1:9000",
        "writer_url": "http://127.0.0.1:9001",
        "promotions": 0,
        "members": [
            {
                "name": "writer",
                "role": "writer",
                "url": "http://127.0.0.1:9001",
                "pid": 111,
            }
        ],
    }

    METRICS = {
        "metrics": {
            "replica_applied_seq": {"series": [{"value": 42}]},
            "replica_lag_records": {"series": [{"value": 0}]},
            "replica_is_writer": {"series": [{"value": 1}]},
            "scheduler_pick_seconds": {
                "series": [
                    {
                        "count": 17,
                        "sum": 0.0009,
                        "p50": 3.2e-05,
                        "p95": 9.1e-05,
                        "p99": 0.00013,
                    }
                ]
            },
        }
    }

    def _patch(self, monkeypatch):
        import repro.cli as cli_mod
        import repro.replica as replica_mod

        monkeypatch.setattr(
            replica_mod, "read_cluster", lambda state_dir: self.CLUSTER
        )
        monkeypatch.setattr(
            cli_mod,
            "_scrape_json_metrics",
            lambda url, path, token=None, timeout=5.0: self.METRICS,
        )

    def test_json_includes_pick_percentiles(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        self._patch(monkeypatch)
        assert main(
            ["replica", "status", "--state-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (member,) = payload["members"]
        assert member["pick_seconds"] == {
            "count": 17,
            "p50": 3.2e-05,
            "p95": 9.1e-05,
            "p99": 0.00013,
        }

    def test_text_output_quotes_pick_latency(
        self, capsys, tmp_path, monkeypatch
    ):
        self._patch(monkeypatch)
        assert main(
            ["replica", "status", "--state-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "pick_p50=32us p95=91us p99=130us" in out

    def test_unreachable_member_omits_pick_latency(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.cli as cli_mod
        import repro.replica as replica_mod

        monkeypatch.setattr(
            replica_mod, "read_cluster", lambda state_dir: self.CLUSTER
        )
        monkeypatch.setattr(
            cli_mod,
            "_scrape_json_metrics",
            lambda url, path, token=None, timeout=5.0: None,
        )
        assert main(
            ["replica", "status", "--state-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "unreachable" in out
        assert "pick_p50" not in out
