"""Tests for the command-line interface."""

import pytest

from repro.cli import _build_parser, build_service, main


class TestStats:
    def test_prints_figure8_table(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "DEEPLEARNING" in out
        assert "179CLASSIFIER" in out
        assert "SYN(0.5,1.0)" in out


class TestFigure:
    def test_figure8(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_figure13_with_trials_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "fig13.txt"
        code = main(
            ["figure", "13", "--trials", "2", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "Figure 13" in out_file.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])


class TestCompare:
    def test_compare_with_exports(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "curves.csv"
        code = main(
            [
                "compare",
                "--dataset", "DEEPLEARNING",
                "--strategies", "easeml", "most_cited",
                "--trials", "2",
                "--budget", "0.1",
                "--cost-aware",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "easeml" in out
        assert "speedup of easeml" in out
        assert json_path.exists()
        assert csv_path.exists()

    def test_unknown_dataset_errors(self, capsys):
        assert main(["compare", "--dataset", "NOPE", "--trials", "1"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--strategies", "psychic"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRuntime:
    def test_generated_workload_with_dumps(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        events_path = tmp_path / "events.jsonl"
        code = main(
            [
                "runtime",
                "--jobs", "12",
                "--n-gpus", "4",
                "--policy", "partition",
                "--seed", "3",
                "--trace-out", str(trace_path),
                "--events-out", str(events_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "partition placement" in out
        assert trace_path.exists() and events_path.exists()

    def test_trace_replay_reproduces_events(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        first = tmp_path / "events1.jsonl"
        second = tmp_path / "events2.jsonl"
        args = ["runtime", "--jobs", "10", "--n-gpus", "4", "--seed", "1"]
        assert main(
            args + ["--trace-out", str(trace_path),
                    "--events-out", str(first)]
        ) == 0
        assert main(
            ["runtime", "--n-gpus", "4",
             "--trace-in", str(trace_path), "--events-out", str(second)]
        ) == 0
        assert first.read_text() == second.read_text()

    def test_policies_accepted(self, capsys):
        for policy in ("single", "dedicated"):
            assert main(
                ["runtime", "--jobs", "5", "--policy", policy]
            ) == 0

    def test_unknown_dataset_errors(self, capsys):
        assert main(["runtime", "--dataset", "NOPE"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["runtime", "--policy", "psychic"])

    def test_unreadable_trace_errors_cleanly(self, capsys, tmp_path):
        assert main(
            ["runtime", "--trace-in", str(tmp_path / "missing.jsonl")]
        ) == 2
        assert "cannot load trace" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"action": "explode", "time": 0, "user": 0}\n')
        assert main(["runtime", "--trace-in", str(bad)]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_preemption_overhead_flag(self, capsys, tmp_path):
        """The checkpoint-cost knob changes the replayed schedule."""
        trace_path = tmp_path / "trace.jsonl"
        free = tmp_path / "free.jsonl"
        paid = tmp_path / "paid.jsonl"
        base = ["runtime", "--jobs", "12", "--n-gpus", "4",
                "--policy", "partition", "--seed", "3"]
        assert main(
            base + ["--trace-out", str(trace_path),
                    "--events-out", str(free)]
        ) == 0
        assert main(
            ["runtime", "--n-gpus", "4", "--policy", "partition",
             "--preemption-overhead", "0.5",
             "--trace-in", str(trace_path), "--events-out", str(paid)]
        ) == 0
        assert main(["trace", "diff", str(free), str(paid)]) == 1
        assert "first divergence" in capsys.readouterr().out


class TestServe:
    def _args(self, extra=()):
        return _build_parser().parse_args(
            ["serve", "--port", "0", "--n-gpus", "2", *extra]
        )

    def test_build_service_wires_gateway_and_tenants(self):
        gateway, tokens, server, report = build_service(
            self._args(["--tenant", "alice", "--tenant", "bob"])
        )
        try:
            assert gateway.tenant_names() == ["alice", "bob"]
            assert set(tokens) == {"alice", "bob"}
            assert all(t.startswith("tok-") for t in tokens.values())
            assert report is None
            assert server.port > 0
            assert server.url.startswith("http://127.0.0.1:")
        finally:
            server.server_close()

    def test_build_service_default_tenant(self):
        _, tokens, server, _ = build_service(self._args())
        try:
            assert list(tokens) == ["default"]
        finally:
            server.server_close()

    def test_serve_rejects_unknown_placement(self):
        with pytest.raises(SystemExit):
            _build_parser().parse_args(["serve", "--placement", "psychic"])

    def test_build_service_durable_restart(self, tmp_path):
        """--state-dir round trip: tokens and tenants survive."""
        state = str(tmp_path / "state")
        gateway, tokens, server, report = build_service(
            self._args(["--tenant", "alice", "--state-dir", state])
        )
        server.server_close()
        gateway.store.close()
        assert report is None
        gateway2, tokens2, server2, report2 = build_service(
            self._args(["--tenant", "alice", "--state-dir", state])
        )
        try:
            assert report2 is not None
            assert tokens2 == tokens
            assert gateway2.tenant_names() == ["alice"]
        finally:
            server2.server_close()
            gateway2.store.close()


class TestStateCommands:
    def _serve_args(self, state, extra=()):
        return _build_parser().parse_args(
            ["serve", "--port", "0", "--n-gpus", "2",
             "--state-dir", state, *extra]
        )

    def test_inspect_and_compact(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        gateway, tokens, server, _ = build_service(
            self._serve_args(state, ["--tenant", "alice"])
        )
        server.server_close()
        gateway.store.close()

        assert main(["state", "inspect", "--state-dir", state]) == 0
        out = capsys.readouterr().out
        assert "tenant_created: 1" in out
        assert tokens["alice"] in out

        assert main(
            ["state", "inspect", "--state-dir", state, "--json"]
        ) == 0
        import json

        summary = json.loads(capsys.readouterr().out)
        assert summary["tenants"]["alice"]["token"] == tokens["alice"]

        assert main(["state", "compact", "--state-dir", state]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        assert main(["state", "inspect", "--state-dir", state]) == 0
        assert "snapshot-" in capsys.readouterr().out

    def test_inspect_rejects_non_state_dir(self, capsys, tmp_path):
        assert main(
            ["state", "inspect", "--state-dir", str(tmp_path)]
        ) == 2
        assert "not a state directory" in capsys.readouterr().err


class TestRuntimeArrivals:
    """The --arrivals churn path (ISSUE 3)."""

    DEMO = "examples/arrivals_demo.jsonl"

    def test_bundled_demo_trace_runs(self, capsys):
        assert main(
            ["runtime", "--arrivals", self.DEMO,
             "--jobs", "12", "--n-gpus", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "churn workload" in out
        assert "tenant arrivals (trace)" in out
        assert "serves by tenant" in out

    def test_churn_replay_diff_is_empty(self, capsys, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        args = ["runtime", "--arrivals", self.DEMO,
                "--jobs", "16", "--n-gpus", "4", "--seed", "2"]
        assert main(args + ["--events-out", str(first)]) == 0
        assert main(args + ["--events-out", str(second)]) == 0
        capsys.readouterr()
        # The acceptance criterion: `repro trace diff` reports no
        # divergence between two replays of the same churn schedule.
        assert main(["trace", "diff", str(first), str(second)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_arrivals_trace_missing_errors(self, capsys, tmp_path):
        assert main(
            ["runtime", "--arrivals", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "cannot load arrivals trace" in capsys.readouterr().err

    def test_arrivals_without_membership_items_errors(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "subs.jsonl"
        trace.write_text(
            '{"action": "submit", "time": 0.0, "user": 0, '
            '"model": 1, "gpu_time": 1.0}\n'
        )
        assert main(["runtime", "--arrivals", str(trace)]) == 2
        assert "no arrive/depart" in capsys.readouterr().err

    def test_arrivals_unknown_user_errors(self, capsys, tmp_path):
        trace = tmp_path / "big.jsonl"
        trace.write_text('{"action": "arrive", "time": 0.0, "user": 99}\n')
        assert main(["runtime", "--arrivals", str(trace)]) == 2
        assert "only has" in capsys.readouterr().err


class TestServeObservabilityFlags:
    def _args(self, extra=()):
        return _build_parser().parse_args(
            ["serve", "--port", "0", "--n-gpus", "2", *extra]
        )

    def test_trace_sample_zero_disables_tracing(self):
        from repro.obs.tracing import NULL_TRACER

        gateway, _, server, _ = build_service(
            self._args(["--trace-sample", "0"])
        )
        try:
            assert gateway.tracer is NULL_TRACER
            assert server.tracer is NULL_TRACER
        finally:
            server.server_close()

    def test_trace_sample_sets_the_rate(self):
        gateway, _, server, _ = build_service(
            self._args(["--trace-sample", "0.25"])
        )
        try:
            assert gateway.tracer.sample_rate == 0.25
            assert server.tracer is gateway.tracer
        finally:
            server.server_close()

    def test_trace_sample_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_service(self._args(["--trace-sample", "1.5"]))

    def test_slo_config_reaches_the_gateway(self, tmp_path):
        import json

        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "default": {"latency_ms": 500, "target": 0.95},
            "tenants": {"acme": {"latency_ms": 250, "target": 0.999}},
        }))
        gateway, _, server, _ = build_service(
            self._args(["--slo-config", str(path)])
        )
        try:
            assert gateway.slo.default.latency_ms == 500.0
            objective = gateway.slo.objective_for("acme")
            assert objective.latency_ms == 250.0
            assert objective.target == 0.999
        finally:
            server.server_close()

    def test_malformed_slo_config_fails_serve(self, capsys, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"tenats": {}}')
        assert main(
            ["serve", "--port", "0", "--n-gpus", "2",
             "--slo-config", str(path)]
        ) == 2
        assert "unknown top-level keys" in capsys.readouterr().err


class TestSlowCommand:
    TRACE = {
        "trace_id": "req-slow1",
        "route": "/v1/jobs",
        "tenant": "acme",
        "frontend": "threading",
        "status": 200,
        "error": False,
        "duration_ms": 10.0,
        "kept": "slow",
        "spans": [
            {"sid": 0, "name": "request", "parent": None,
             "start_ms": 0.0, "duration_ms": 10.0},
            {"sid": 1, "name": "gateway.handle", "parent": 0,
             "start_ms": 1.0, "duration_ms": 8.0,
             "attrs": {"type": "submit_training"}},
            {"sid": 2, "name": "journal.append", "parent": 1,
             "start_ms": 2.0, "duration_ms": 3.0},
        ],
    }

    def _patch(self, monkeypatch, document):
        import repro.cli as cli_mod

        calls = []

        def fake(url, path, token=None, timeout=5.0):
            calls.append((url, path, token))
            return document

        monkeypatch.setattr(cli_mod, "_scrape_json_metrics", fake)
        return calls

    def test_waterfall_renders_nested_spans(self, capsys, monkeypatch):
        calls = self._patch(monkeypatch, {"traces": [self.TRACE]})
        assert main(
            ["slow", "--route", "/v1/jobs", "--tenant", "acme",
             "--min-ms", "5", "--metrics-token", "sec"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace req-slow1" in out
        assert "gateway.handle" in out
        # Depth-indented child, with its attrs alongside the bar.
        assert "    journal.append" in out
        assert "type=submit_training" in out
        assert "#" in out
        (call,) = calls
        assert call[2] == "sec"
        assert "route=%2Fv1%2Fjobs" in call[1]
        assert "tenant=acme" in call[1]

    def test_json_passthrough(self, capsys, monkeypatch):
        import json

        self._patch(monkeypatch, {"traces": [self.TRACE]})
        assert main(["slow", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == [self.TRACE]

    def test_no_traces_says_so(self, capsys, monkeypatch):
        self._patch(monkeypatch, {"traces": []})
        assert main(["slow"]) == 0
        assert "no retained traces" in capsys.readouterr().out

    def test_unreachable_server_is_exit_2(self, capsys, monkeypatch):
        self._patch(monkeypatch, None)
        assert main(["slow"]) == 2
        assert "cannot fetch" in capsys.readouterr().err


class TestSloCommand:
    METRICS = {
        "metrics": {
            "slo_attainment_ratio": {"series": [
                {"labels": {"tenant": "acme", "window": "60s"},
                 "value": 0.8},
            ]},
            "slo_error_budget_burn": {"series": [
                {"labels": {"tenant": "acme", "window": "60s"},
                 "value": 2.0},
            ]},
            "slo_class_attainment_ratio": {"series": [
                {"labels": {"tenant": "acme", "route_class": "infer",
                            "window": "60s"},
                 "value": 0.5},
            ]},
            "slo_class_error_budget_burn": {"series": [
                {"labels": {"tenant": "acme", "route_class": "infer",
                            "window": "60s"},
                 "value": 5.0},
            ]},
        }
    }

    def _patch(self, monkeypatch, document):
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod,
            "_scrape_json_metrics",
            lambda url, path, token=None, timeout=5.0: document,
        )

    def test_table_shows_attainment_and_burn(self, capsys, monkeypatch):
        self._patch(monkeypatch, self.METRICS)
        assert main(["slo", "status"]) == 0
        out = capsys.readouterr().out
        assert "acme" in out
        assert "0.8000" in out
        assert "2.00" in out
        # The per-class row (infer data plane) prints beneath the
        # tenant-wide "all" row.
        lines = out.splitlines()
        all_row = next(i for i, l in enumerate(lines) if " all " in l)
        infer_row = next(
            i for i, l in enumerate(lines) if " infer " in l
        )
        assert all_row < infer_row
        assert "0.5000" in lines[infer_row]

    def test_json_output(self, capsys, monkeypatch):
        import json

        self._patch(monkeypatch, self.METRICS)
        assert main(["slo", "status", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["acme"]["all"]["60s"] == {
            "attainment": 0.8, "burn": 2.0
        }
        assert payload["acme"]["infer"]["60s"] == {
            "attainment": 0.5, "burn": 5.0
        }

    def test_no_gauges_yet(self, capsys, monkeypatch):
        self._patch(monkeypatch, {"metrics": {}})
        assert main(["slo", "status"]) == 0
        assert "no slo_* gauges" in capsys.readouterr().out

    def test_unreachable_server_is_exit_2(self, capsys, monkeypatch):
        self._patch(monkeypatch, None)
        assert main(["slo", "status"]) == 2
        assert "cannot fetch" in capsys.readouterr().err


class TestMetricsTextRendering:
    BODY = (
        "# HELP zeta_total Last family by registration.\n"
        "# TYPE zeta_total counter\n"
        "zeta_total 3\n"
        "# HELP alpha_seconds A histogram.\n"
        "# TYPE alpha_seconds histogram\n"
        'alpha_seconds_bucket{route="/v1/info",le="0.1"} 8\n'
        'alpha_seconds_bucket{route="/v1/info",le="1"} 10\n'
        'alpha_seconds_bucket{route="/v1/info",le="+Inf"} 10\n'
        'alpha_seconds_sum{route="/v1/info"} 1.2\n'
        'alpha_seconds_count{route="/v1/info"} 10\n'
    )

    def test_families_sorted_and_percentiles_inline(self):
        from repro.cli import _render_metrics_text

        out = _render_metrics_text(self.BODY)
        lines = out.splitlines()
        helps = [l for l in lines if l.startswith("# HELP ")]
        assert helps == sorted(helps)  # alpha before zeta now
        (pctl,) = [l for l in lines if " p50=" in l]
        assert pctl.startswith('# alpha_seconds{route="/v1/info"} p50=')
        # 8 of 10 under 0.1s: p50 interpolates inside the first bucket.
        assert "p50=0.0625" in pctl
        assert "p95=" in pctl and "p99=" in pctl

    def test_empty_body_unharmed(self):
        from repro.cli import _render_metrics_text

        assert _render_metrics_text("\n") == "\n"
    """`replica status` surfaces the writer's pick-latency histogram."""

    CLUSTER = {
        "front_url": "http://127.0.0.1:9000",
        "writer_url": "http://127.0.0.1:9001",
        "promotions": 0,
        "members": [
            {
                "name": "writer",
                "role": "writer",
                "url": "http://127.0.0.1:9001",
                "pid": 111,
            }
        ],
    }

    METRICS = {
        "metrics": {
            "replica_applied_seq": {"series": [{"value": 42}]},
            "replica_lag_records": {"series": [{"value": 0}]},
            "replica_is_writer": {"series": [{"value": 1}]},
            "scheduler_pick_seconds": {
                "series": [
                    {
                        "count": 17,
                        "sum": 0.0009,
                        "p50": 3.2e-05,
                        "p95": 9.1e-05,
                        "p99": 0.00013,
                    }
                ]
            },
        }
    }

    def _patch(self, monkeypatch):
        import repro.cli as cli_mod
        import repro.replica as replica_mod

        monkeypatch.setattr(
            replica_mod, "read_cluster", lambda state_dir: self.CLUSTER
        )
        monkeypatch.setattr(
            cli_mod,
            "_scrape_json_metrics",
            lambda url, path, token=None, timeout=5.0: self.METRICS,
        )

    def test_json_includes_pick_percentiles(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        self._patch(monkeypatch)
        assert main(
            ["replica", "status", "--state-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (member,) = payload["members"]
        assert member["pick_seconds"] == {
            "count": 17,
            "p50": 3.2e-05,
            "p95": 9.1e-05,
            "p99": 0.00013,
        }

    def test_text_output_quotes_pick_latency(
        self, capsys, tmp_path, monkeypatch
    ):
        self._patch(monkeypatch)
        assert main(
            ["replica", "status", "--state-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "pick_p50=32us p95=91us p99=130us" in out

    def test_unreachable_member_omits_pick_latency(
        self, capsys, tmp_path, monkeypatch
    ):
        import repro.cli as cli_mod
        import repro.replica as replica_mod

        monkeypatch.setattr(
            replica_mod, "read_cluster", lambda state_dir: self.CLUSTER
        )
        monkeypatch.setattr(
            cli_mod,
            "_scrape_json_metrics",
            lambda url, path, token=None, timeout=5.0: None,
        )
        assert main(
            ["replica", "status", "--state-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "unreachable" in out
        assert "pick_p50" not in out
