"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestStats:
    def test_prints_figure8_table(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "DEEPLEARNING" in out
        assert "179CLASSIFIER" in out
        assert "SYN(0.5,1.0)" in out


class TestFigure:
    def test_figure8(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_figure13_with_trials_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "fig13.txt"
        code = main(
            ["figure", "13", "--trials", "2", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        assert "Figure 13" in out_file.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])


class TestCompare:
    def test_compare_with_exports(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "curves.csv"
        code = main(
            [
                "compare",
                "--dataset", "DEEPLEARNING",
                "--strategies", "easeml", "most_cited",
                "--trials", "2",
                "--budget", "0.1",
                "--cost-aware",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "easeml" in out
        assert "speedup of easeml" in out
        assert json_path.exists()
        assert csv_path.exists()

    def test_unknown_dataset_errors(self, capsys):
        assert main(["compare", "--dataset", "NOPE", "--trials", "1"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--strategies", "psychic"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
