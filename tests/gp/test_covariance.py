"""Tests for prior-covariance construction over models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gp.covariance import (
    covariance_from_features,
    empirical_model_covariance,
    is_positive_semidefinite,
    nearest_positive_definite,
    scale_covariance,
)
from repro.gp.kernels import RBF


class TestCovarianceFromFeatures:
    def test_symmetric_psd(self, rng):
        X = rng.normal(size=(7, 3))
        cov = covariance_from_features(RBF(1.0), X)
        assert np.allclose(cov, cov.T)
        assert is_positive_semidefinite(cov)

    def test_1d_features_promoted(self):
        cov = covariance_from_features(RBF(1.0), np.array([0.0, 1.0]))
        assert cov.shape == (2, 2)


class TestEmpiricalModelCovariance:
    def test_positive_definite_after_shrinkage(self, rng):
        # More models than users: raw covariance is rank-deficient.
        matrix = rng.normal(size=(4, 10))
        cov = empirical_model_covariance(matrix, shrinkage=0.2)
        assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_recovers_correlation_sign(self, rng):
        base = rng.normal(size=200)
        matrix = np.column_stack(
            [base, base + 0.01 * rng.normal(size=200),
             -base + 0.01 * rng.normal(size=200)]
        )
        cov = empirical_model_covariance(matrix, shrinkage=0.0)
        assert cov[0, 1] > 0
        assert cov[0, 2] < 0

    def test_constant_column_gets_floor_variance(self, rng):
        matrix = np.column_stack(
            [np.full(30, 0.5), rng.normal(size=30)]
        )
        cov = empirical_model_covariance(matrix, shrinkage=0.0)
        assert cov[0, 0] > 0

    def test_requires_two_users(self):
        with pytest.raises(ValueError, match="at least 2"):
            empirical_model_covariance(np.ones((1, 5)))

    def test_shrinkage_bounds_validated(self, rng):
        with pytest.raises(ValueError):
            empirical_model_covariance(
                rng.normal(size=(5, 3)), shrinkage=1.5
            )

    @settings(max_examples=25, deadline=None)
    @given(
        matrix=arrays(
            dtype=float,
            shape=st.tuples(st.integers(3, 8), st.integers(2, 6)),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        ),
        shrinkage=st.floats(0.05, 0.95),
    )
    def test_property_always_psd(self, matrix, shrinkage):
        cov = empirical_model_covariance(matrix, shrinkage=shrinkage)
        assert is_positive_semidefinite(cov, tolerance=1e-7)


class TestNearestPositiveDefinite:
    def test_clips_negative_eigenvalues(self):
        bad = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        fixed = nearest_positive_definite(bad)
        assert np.all(np.linalg.eigvalsh(fixed) > 0)

    def test_already_pd_unchanged(self, rng):
        A = rng.normal(size=(4, 4))
        pd = A @ A.T + 4.0 * np.eye(4)
        assert np.allclose(nearest_positive_definite(pd), pd, atol=1e-8)


class TestScaleCovariance:
    def test_mean_diagonal_targeted(self, rng):
        A = rng.normal(size=(3, 3))
        cov = A @ A.T + np.eye(3)
        scaled = scale_covariance(cov, 0.25)
        assert np.mean(np.diag(scaled)) == pytest.approx(0.25)

    def test_none_is_copy(self, rng):
        cov = np.eye(3)
        out = scale_covariance(cov, None)
        assert np.allclose(out, cov)
        out[0, 0] = 5.0
        assert cov[0, 0] == 1.0
