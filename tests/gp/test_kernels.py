"""Tests for repro.gp.kernels, incl. property-based PSD/gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gp.kernels import (
    RBF,
    ConstantKernel,
    DotProduct,
    Kernel,
    Matern,
    Product,
    Sum,
    WhiteKernel,
    default_model_kernel,
    squared_distances,
)

ALL_KERNELS = [
    ConstantKernel(1.5),
    WhiteKernel(0.3),
    RBF(0.8),
    Matern(1.2, nu=0.5),
    Matern(1.2, nu=1.5),
    Matern(1.2, nu=2.5),
    DotProduct(0.7),
    ConstantKernel(2.0) * RBF(1.1),
    RBF(0.5) + WhiteKernel(0.1),
]


def feature_matrices():
    return arrays(
        dtype=float,
        shape=st.tuples(
            st.integers(2, 6), st.integers(1, 3)
        ),
        elements=st.floats(-3.0, 3.0, allow_nan=False),
    )


class TestSquaredDistances:
    def test_zero_diagonal(self, rng):
        X = rng.normal(size=(5, 3))
        d2 = squared_distances(X)
        assert np.allclose(np.diag(d2), 0.0)

    def test_matches_naive(self, rng):
        X = rng.normal(size=(4, 2))
        Y = rng.normal(size=(3, 2))
        d2 = squared_distances(X, Y)
        naive = np.array(
            [[np.sum((x - y) ** 2) for y in Y] for x in X]
        )
        assert np.allclose(d2, naive)

    def test_never_negative(self, rng):
        X = rng.normal(size=(6, 2)) * 1e-8
        assert np.all(squared_distances(X) >= 0.0)


class TestKernelBasics:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=repr)
    def test_symmetry(self, kernel, rng):
        X = rng.normal(size=(6, 2))
        K = kernel(X)
        assert np.allclose(K, K.T, atol=1e-12)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=repr)
    def test_psd(self, kernel, rng):
        X = rng.normal(size=(6, 2))
        eigenvalues = np.linalg.eigvalsh(kernel(X))
        assert np.all(eigenvalues >= -1e-8)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=repr)
    def test_diag_consistency(self, kernel, rng):
        X = rng.normal(size=(5, 2))
        assert np.allclose(kernel.diag(X), np.diag(kernel(X)), atol=1e-12)

    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=repr)
    def test_cross_gram_shape(self, kernel, rng):
        X = rng.normal(size=(4, 2))
        Y = rng.normal(size=(7, 2))
        assert kernel(X, Y).shape == (4, 7)

    def test_1d_input_promoted(self):
        K = RBF(1.0)(np.array([0.0, 1.0, 2.0]))
        assert K.shape == (3, 3)

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            RBF(1.0)(np.ones((2, 2, 2)))


class TestIndividualKernels:
    def test_rbf_unit_diagonal(self, rng):
        X = rng.normal(size=(4, 3))
        assert np.allclose(np.diag(RBF(2.0)(X)), 1.0)

    def test_rbf_decays_with_distance(self):
        X = np.array([[0.0], [1.0], [5.0]])
        K = RBF(1.0)(X)
        assert K[0, 1] > K[0, 2]

    def test_matern_05_is_exponential(self):
        X = np.array([[0.0], [2.0]])
        K = Matern(1.0, nu=0.5)(X)
        assert np.isclose(K[0, 1], np.exp(-2.0))

    def test_matern_rejects_other_nu(self):
        with pytest.raises(ValueError, match="nu"):
            Matern(1.0, nu=2.0)

    def test_matern_orders_toward_rbf(self):
        # Larger nu is smoother: closer to the RBF value at moderate
        # distance.
        X = np.array([[0.0], [1.0]])
        rbf = RBF(1.0)(X)[0, 1]
        gaps = [
            abs(Matern(1.0, nu=nu)(X)[0, 1] - rbf)
            for nu in (0.5, 1.5, 2.5)
        ]
        assert gaps[0] > gaps[1] > gaps[2]

    def test_white_kernel_off_diagonal_zero(self, rng):
        X = rng.normal(size=(4, 2))
        K = WhiteKernel(0.5)(X)
        assert np.allclose(K, 0.5 * np.eye(4))

    def test_white_kernel_cross_is_zero(self, rng):
        X = rng.normal(size=(3, 2))
        Y = rng.normal(size=(2, 2))
        assert np.allclose(WhiteKernel(0.5)(X, Y), 0.0)

    def test_dot_product_formula(self):
        X = np.array([[1.0, 0.0], [0.0, 2.0]])
        K = DotProduct(1.0)(X)
        assert np.allclose(K, np.array([[2.0, 1.0], [1.0, 5.0]]))

    def test_constant_kernel_value(self, rng):
        X = rng.normal(size=(3, 2))
        assert np.allclose(ConstantKernel(2.5)(X), 2.5)


class TestHyperparameterPlumbing:
    def test_theta_roundtrip(self):
        kernel = ConstantKernel(2.0) * RBF(0.5)
        theta = kernel.theta
        clone = kernel.clone_with_theta(theta + np.log(2.0))
        assert np.isclose(clone.left.constant_value, 4.0)
        assert np.isclose(clone.right.length_scale, 1.0)
        # The original is untouched.
        assert np.isclose(kernel.left.constant_value, 2.0)

    def test_fixed_parameters_excluded(self):
        kernel = ConstantKernel(2.0, bounds=None) * RBF(0.5)
        assert kernel.n_free_parameters == 1
        assert kernel.bounds.shape == (1, 2)

    def test_theta_shape_validation(self):
        kernel = RBF(1.0)
        with pytest.raises(ValueError, match="shape"):
            kernel.theta = np.array([0.0, 1.0])

    def test_scalar_multiplication_wraps_constant(self):
        kernel = 2.0 * RBF(1.0)
        assert isinstance(kernel, Product)
        assert isinstance(kernel.left, ConstantKernel)

    def test_scalar_addition_wraps_constant(self):
        kernel = RBF(1.0) + 1.0
        assert isinstance(kernel, Sum)

    def test_invalid_combination_rejected(self):
        with pytest.raises(TypeError):
            RBF(1.0) * "nope"


GRADIENT_KERNELS = [
    ConstantKernel(1.3),
    WhiteKernel(0.4),
    RBF(0.7),
    Matern(0.9, nu=0.5),
    Matern(0.9, nu=1.5),
    Matern(0.9, nu=2.5),
    DotProduct(0.6),
    ConstantKernel(1.1) * RBF(0.8),
    ConstantKernel(0.9) * Matern(1.3, nu=1.5) + WhiteKernel(0.2),
]


class TestGradients:
    @pytest.mark.parametrize("kernel", GRADIENT_KERNELS, ids=repr)
    def test_matches_finite_differences(self, kernel, rng):
        X = rng.normal(size=(5, 2))
        K, grad = kernel.eval_with_gradient(X)
        assert np.allclose(K, kernel(X), atol=1e-12)
        theta = kernel.theta
        eps = 1e-6
        for j in range(len(theta)):
            plus = theta.copy()
            plus[j] += eps
            minus = theta.copy()
            minus[j] -= eps
            numeric = (
                kernel.clone_with_theta(plus)(X)
                - kernel.clone_with_theta(minus)(X)
            ) / (2.0 * eps)
            assert np.allclose(numeric, grad[:, :, j], atol=1e-5), j

    def test_gradient_stack_width(self, rng):
        X = rng.normal(size=(3, 2))
        kernel = ConstantKernel(1.0) * RBF(1.0) + WhiteKernel(0.1)
        _, grad = kernel.eval_with_gradient(X)
        assert grad.shape == (3, 3, 3)

    def test_fixed_param_gradient_empty(self, rng):
        X = rng.normal(size=(3, 2))
        _, grad = ConstantKernel(1.0, bounds=None).eval_with_gradient(X)
        assert grad.shape == (3, 3, 0)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(X=feature_matrices(), length_scale=st.floats(0.1, 5.0))
    def test_rbf_gram_psd_and_bounded(self, X, length_scale):
        K = RBF(length_scale)(X)
        assert np.all(K <= 1.0 + 1e-12)
        assert np.all(np.linalg.eigvalsh(K) >= -1e-7)

    @settings(max_examples=30, deadline=None)
    @given(X=feature_matrices())
    def test_sum_of_kernels_is_sum_of_grams(self, X):
        k1, k2 = RBF(1.0), DotProduct(0.5)
        assert np.allclose((k1 + k2)(X), k1(X) + k2(X))

    @settings(max_examples=30, deadline=None)
    @given(X=feature_matrices())
    def test_product_of_kernels_is_hadamard(self, X):
        k1, k2 = RBF(1.0), ConstantKernel(2.0)
        assert np.allclose((k1 * k2)(X), k1(X) * k2(X))


def test_default_model_kernel_shape(rng):
    kernel = default_model_kernel(0.04, 2.0)
    X = rng.normal(size=(4, 3))
    assert np.allclose(np.diag(kernel(X)), 0.04)
