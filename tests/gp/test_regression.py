"""Tests for the finite-arm GP posterior (Algorithm 1 lines 6–7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp.kernels import RBF, ConstantKernel
from repro.gp.covariance import covariance_from_features
from repro.gp.regression import FiniteArmGP


def make_gp(n_arms=6, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_arms, 3))
    cov = covariance_from_features(ConstantKernel(1.0) * RBF(1.5), X)
    return FiniteArmGP(cov, noise=noise), cov, rng


class TestConstruction:
    def test_prior_posterior_is_prior(self):
        gp, cov, _ = make_gp()
        mean, var = gp.posterior()
        assert np.allclose(mean, 0.0)
        assert np.allclose(var, np.diag(cov))

    def test_prior_mean_respected(self):
        cov = np.eye(3)
        gp = FiniteArmGP(cov, prior_mean=[0.5, 0.6, 0.7])
        assert gp.posterior_mean(1) == pytest.approx(0.6)

    def test_asymmetric_cov_rejected(self):
        bad = np.array([[1.0, 0.5], [0.0, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            FiniteArmGP(bad)

    def test_wrong_mean_shape_rejected(self):
        with pytest.raises(ValueError, match="prior_mean"):
            FiniteArmGP(np.eye(3), prior_mean=[0.0, 1.0])

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            FiniteArmGP(np.ones((2, 3)))


class TestUpdates:
    def test_observation_count(self):
        gp, _, _ = make_gp()
        gp.update(0, 0.5)
        gp.update(3, 0.7)
        assert gp.n_observations == 2
        assert gp.observed_arms == (0, 3)
        assert gp.observed_rewards == (0.5, 0.7)

    def test_out_of_range_arm_rejected(self):
        gp, _, _ = make_gp(n_arms=4)
        with pytest.raises(IndexError):
            gp.update(4, 0.5)
        with pytest.raises(IndexError):
            gp.update(-1, 0.5)

    def test_nan_reward_rejected(self):
        gp, _, _ = make_gp()
        with pytest.raises(ValueError, match="finite"):
            gp.update(0, float("nan"))

    def test_observing_shrinks_variance(self):
        gp, cov, _ = make_gp()
        before = gp.posterior_variance(2)
        gp.update(2, 0.8)
        after = gp.posterior_variance(2)
        assert after < before

    def test_mean_moves_toward_observation(self):
        gp, _, _ = make_gp(noise=0.01)
        gp.update(1, 0.9)
        assert gp.posterior_mean(1) == pytest.approx(0.9, abs=0.05)

    def test_correlated_arm_learns_too(self):
        # Two identical feature rows => perfectly correlated arms.
        X = np.array([[0.0, 0.0], [0.0, 0.0], [10.0, 10.0]])
        cov = covariance_from_features(RBF(1.0), X)
        gp = FiniteArmGP(cov, noise=0.05)
        gp.update(0, 0.8)
        assert gp.posterior_mean(1) == pytest.approx(
            gp.posterior_mean(0), abs=1e-6
        )
        # The distant arm stays at the prior.
        assert abs(gp.posterior_mean(2)) < 0.05

    def test_repeated_arm_observations_stable(self):
        gp, _, _ = make_gp(noise=0.05)
        for _ in range(50):
            gp.update(0, 0.6)
        assert gp.posterior_mean(0) == pytest.approx(0.6, abs=0.01)
        assert np.isfinite(gp.posterior_variance()).all()


class TestIncrementalMatchesRefit:
    @pytest.mark.parametrize("noise", [0.01, 0.1, 0.5])
    def test_posterior_agreement(self, noise):
        gp, _, rng = make_gp(noise=noise, seed=3)
        for _ in range(40):
            gp.update(int(rng.integers(6)), float(rng.normal(0.5, 0.2)))
        ref = gp.refit()
        mean_a, var_a = gp.posterior()
        mean_b, var_b = ref.posterior()
        assert np.allclose(mean_a, mean_b, atol=1e-7)
        assert np.allclose(var_a, var_b, atol=1e-7)

    def test_lml_agreement(self):
        gp, _, rng = make_gp(seed=5)
        for _ in range(25):
            gp.update(int(rng.integers(6)), float(rng.normal()))
        assert gp.log_marginal_likelihood() == pytest.approx(
            gp.refit().log_marginal_likelihood(), rel=1e-7, abs=1e-4
        )

    @settings(max_examples=25, deadline=None)
    @given(
        arms=st.lists(st.integers(0, 4), min_size=1, max_size=30),
        seed=st.integers(0, 100),
    )
    def test_property_incremental_equals_refit(self, arms, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(5, 2))
        cov = covariance_from_features(RBF(1.0), X) + 0.01 * np.eye(5)
        gp = FiniteArmGP(cov, noise=0.1)
        for arm in arms:
            gp.update(arm, float(rng.normal()))
        ref = gp.refit()
        mean_a, var_a = gp.posterior()
        mean_b, var_b = ref.posterior()
        assert np.allclose(mean_a, mean_b, atol=1e-6)
        assert np.allclose(var_a, var_b, atol=1e-6)


class TestPosteriorProperties:
    def test_variance_never_negative(self):
        gp, _, rng = make_gp(noise=0.01, seed=9)
        for _ in range(80):
            gp.update(int(rng.integers(6)), float(rng.normal()))
        _, var = gp.posterior()
        assert np.all(var >= 0.0)

    def test_zero_noise_limit_interpolates(self):
        gp, _, _ = make_gp(noise=1e-4)
        gp.update(2, 0.73)
        assert gp.posterior_mean(2) == pytest.approx(0.73, abs=1e-3)
        assert gp.posterior_std(2) < 1e-2

    def test_copy_is_independent(self):
        gp, _, _ = make_gp()
        gp.update(0, 0.5)
        clone = gp.copy()
        clone.update(1, 0.9)
        assert gp.n_observations == 1
        assert clone.n_observations == 2
        assert gp.posterior_mean(1) != pytest.approx(
            clone.posterior_mean(1)
        )

    def test_posterior_returns_read_only_views(self):
        gp, _, _ = make_gp()
        mean, var = gp.posterior()
        with pytest.raises(ValueError):
            mean[:] = 99.0
        with pytest.raises(ValueError):
            var[:] = 99.0
        assert not np.allclose(gp.posterior_mean(), 99.0)

    def test_posterior_views_stay_valid_across_updates(self):
        gp, _, _ = make_gp()
        mean_before, _ = gp.posterior()
        snapshot = mean_before.copy()
        gp.update(1, 0.9)
        # The old view must not silently change under the caller.
        np.testing.assert_array_equal(mean_before, snapshot)

    def test_lml_empty_is_zero(self):
        gp, _, _ = make_gp()
        assert gp.log_marginal_likelihood() == 0.0


class TestAgainstClosedForm:
    def test_single_observation_closed_form(self):
        """One observation: posterior has the textbook 1-point form."""
        cov = np.array([[1.0, 0.6], [0.6, 1.0]])
        noise = 0.3
        gp = FiniteArmGP(cov, noise=noise)
        y = 0.8
        gp.update(0, y)
        denom = cov[0, 0] + noise**2
        assert gp.posterior_mean(0) == pytest.approx(
            cov[0, 0] / denom * y
        )
        assert gp.posterior_mean(1) == pytest.approx(
            cov[1, 0] / denom * y
        )
        assert gp.posterior_variance(1) == pytest.approx(
            cov[1, 1] - cov[1, 0] ** 2 / denom
        )


class TestUpdateBatch:
    """`update_batch` must be bit-identical to sequential `update`."""

    @staticmethod
    def _history(seed, n, n_arms=6):
        rng = np.random.default_rng(seed)
        arms = rng.integers(0, n_arms, size=n)
        rewards = rng.normal(scale=0.3, size=n)
        return arms, rewards

    def test_bit_identical_to_sequential_update(self):
        arms, rewards = self._history(seed=3, n=200)
        seq, _, _ = make_gp(seed=1)
        batch, _, _ = make_gp(seed=1)
        for a, r in zip(arms, rewards):
            seq.update(int(a), float(r))
        batch.update_batch(arms, rewards)
        np.testing.assert_array_equal(seq.posterior()[0], batch.posterior()[0])
        np.testing.assert_array_equal(seq.posterior()[1], batch.posterior()[1])
        assert seq.log_marginal_likelihood() == batch.log_marginal_likelihood()
        assert seq.observed_arms == batch.observed_arms
        assert seq.observed_rewards == batch.observed_rewards

    def test_chunked_batches_bit_identical(self):
        arms, rewards = self._history(seed=7, n=150)
        whole, _, _ = make_gp(seed=1)
        chunked, _, _ = make_gp(seed=1)
        whole.update_batch(arms, rewards)
        for start in range(0, 150, 40):
            chunked.update_batch(
                arms[start:start + 40], rewards[start:start + 40]
            )
        np.testing.assert_array_equal(
            whole.posterior()[0], chunked.posterior()[0]
        )
        np.testing.assert_array_equal(
            whole.posterior()[1], chunked.posterior()[1]
        )

    def test_empty_batch_is_noop(self):
        gp, _, _ = make_gp()
        gp.update(0, 0.4)
        mean_before = gp.posterior()[0].copy()
        gp.update_batch([], [])
        assert gp.n_observations == 1
        np.testing.assert_array_equal(gp.posterior()[0], mean_before)

    def test_batch_validates_before_mutating(self):
        gp, _, _ = make_gp()
        with pytest.raises(IndexError):
            gp.update_batch([0, 99], [0.1, 0.2])
        with pytest.raises(ValueError):
            gp.update_batch([0, 1], [0.1, float("nan")])
        with pytest.raises(ValueError, match="matching lengths"):
            gp.update_batch([0, 1], [0.1])
        assert gp.n_observations == 0


class TestLongHorizonParity:
    """Incremental Cholesky vs block refit at t >= 1000 (repeated arms,
    tiny noise) — the regime where per-row error accumulation would
    show up if the one-row extension drifted."""

    @pytest.mark.parametrize("n_arms", [8, 20])
    def test_incremental_matches_refit_at_t_1000(self, n_arms):
        rng = np.random.default_rng(42)
        base = rng.normal(size=(n_arms, n_arms))
        cov = base @ base.T / n_arms + 0.5 * np.eye(n_arms)
        gp = FiniteArmGP(cov, noise=1e-3)
        arms = rng.integers(0, n_arms, size=1000)
        rewards = rng.normal(scale=0.2, size=1000)
        gp.update_batch(arms, rewards)
        assert gp.n_observations == 1000

        ref = gp.refit()
        np.testing.assert_allclose(
            gp.posterior()[0], ref.posterior()[0], rtol=0, atol=1e-8
        )
        np.testing.assert_allclose(
            gp.posterior()[1], ref.posterior()[1], rtol=0, atol=1e-8
        )
        # refit() regularises the whole Gram diagonal with jitter while
        # the incremental path only floors degenerate pivots, so the
        # (huge, ~1e7) log-likelihoods agree in relative terms only.
        assert gp.log_marginal_likelihood() == pytest.approx(
            ref.log_marginal_likelihood(), rel=1e-3
        )
