"""Tests for log-marginal-likelihood computation and kernel fitting."""

import math

import numpy as np
import pytest

from repro.gp.covariance import covariance_from_features
from repro.gp.kernels import RBF, ConstantKernel
from repro.gp.likelihood import (
    FitResult,
    fit_kernel,
    fit_kernel_pooled,
    log_marginal_likelihood,
)
from repro.gp.regression import FiniteArmGP


class TestLogMarginalLikelihood:
    def test_matches_finite_arm_gp(self, rng):
        X = rng.normal(size=(5, 2))
        kernel = ConstantKernel(1.0) * RBF(1.0)
        cov = covariance_from_features(kernel, X)
        gp = FiniteArmGP(cov, noise=0.2, jitter=1e-12)
        arms = [0, 2, 4, 1]
        y = [0.3, -0.1, 0.5, 0.2]
        for arm, reward in zip(arms, y):
            gp.update(arm, reward)
        gram = cov[np.ix_(arms, arms)]
        standalone = log_marginal_likelihood(
            gram, np.array(y), 0.2, jitter=1e-12
        )
        assert standalone == pytest.approx(
            gp.log_marginal_likelihood(), abs=1e-6
        )

    def test_univariate_gaussian_closed_form(self):
        # One point: LML = log N(y; 0, k + σ²).
        k, noise, y = 0.7, 0.3, 0.4
        expected = (
            -0.5 * y**2 / (k + noise**2)
            - 0.5 * math.log(k + noise**2)
            - 0.5 * math.log(2 * math.pi)
        )
        value = log_marginal_likelihood(
            np.array([[k]]), np.array([y]), noise, jitter=0.0
        )
        assert value == pytest.approx(expected, abs=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            log_marginal_likelihood(np.eye(3), np.ones(2), 0.1)


class TestFitKernel:
    def test_fit_improves_lml(self, rng):
        X = rng.normal(size=(25, 2))
        true = ConstantKernel(2.0) * RBF(0.6)
        cov = covariance_from_features(true, X)
        y = rng.multivariate_normal(np.zeros(25), cov + 0.01 * np.eye(25))
        template = ConstantKernel(1.0) * RBF(3.0)
        start_lml = log_marginal_likelihood(template(X), y - y.mean(), 0.1)
        result = fit_kernel(template, X, y, noise=0.1, seed=0, n_restarts=2)
        assert isinstance(result, FitResult)
        assert result.log_marginal_likelihood >= start_lml - 1e-6

    def test_recovers_length_scale_roughly(self, rng):
        X = np.linspace(-3, 3, 40).reshape(-1, 1)
        true = RBF(0.5)
        cov = true(X)
        y = rng.multivariate_normal(np.zeros(40), cov + 1e-4 * np.eye(40))
        result = fit_kernel(
            ConstantKernel(1.0) * RBF(2.0),
            X,
            y,
            noise=0.05,
            seed=1,
            n_restarts=2,
        )
        fitted_ls = result.kernel.right.length_scale
        assert 0.15 < fitted_ls < 2.0

    def test_template_not_mutated(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        template = ConstantKernel(1.0) * RBF(1.0)
        theta_before = template.theta.copy()
        fit_kernel(template, X, y, seed=0, n_restarts=0)
        assert np.allclose(template.theta, theta_before)

    def test_noise_can_be_fixed(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.normal(size=10)
        result = fit_kernel(
            ConstantKernel(1.0) * RBF(1.0),
            X,
            y,
            noise=0.123,
            optimize_noise=False,
            seed=0,
            n_restarts=0,
        )
        assert result.noise == pytest.approx(0.123)


class TestFitKernelPooled:
    def test_requires_targets(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValueError, match="at least one target"):
            fit_kernel_pooled(RBF(1.0), X, [])

    def test_target_length_validated(self, rng):
        X = rng.normal(size=(5, 2))
        with pytest.raises(ValueError, match="length"):
            fit_kernel_pooled(RBF(1.0), X, [np.ones(4)])

    def test_pooled_beats_single_on_shared_structure(self, rng):
        """More targets sharpen the fit toward the true length scale."""
        X = np.linspace(-3, 3, 30).reshape(-1, 1)
        true = RBF(0.7)
        cov = true(X) + 1e-6 * np.eye(30)
        targets = [
            rng.multivariate_normal(np.zeros(30), cov) for _ in range(6)
        ]
        result = fit_kernel_pooled(
            ConstantKernel(1.0) * RBF(5.0),
            X,
            targets,
            noise=0.05,
            seed=2,
            n_restarts=1,
        )
        assert 0.2 < result.kernel.right.length_scale < 2.5

    def test_restart_count_reported(self, rng):
        X = rng.normal(size=(6, 1))
        result = fit_kernel_pooled(
            RBF(1.0), X, [rng.normal(size=6)], n_restarts=3, seed=0
        )
        # Template start + 3 restarts + heuristic starts.
        assert result.n_restarts_used >= 4
