"""The top-level package surface stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.5.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_docstring_quickstart_runs():
    """The workflow advertised in the package docstring works."""
    result = repro.run_experiment(
        repro.load_deeplearning(seed=0),
        ["easeml", "most_cited"],
        repro.ExperimentConfig(
            n_trials=2, cost_aware=True, budget_fraction=0.10,
            n_checkpoints=11,
        ),
    )
    rendered = result.render()
    assert "easeml" in rendered
    speedups = result.speedups()
    assert "most_cited" in speedups


def test_subpackages_importable():
    import repro.core
    import repro.datasets
    import repro.engine
    import repro.experiments
    import repro.gp
    import repro.ml
    import repro.obs
    import repro.platform
    import repro.service
    import repro.utils

    assert repro.core.__doc__
    assert repro.obs.__doc__
    assert repro.platform.__doc__
    assert repro.service.__doc__
