"""Behavioural tests shared across all classifiers, plus specifics."""

import numpy as np
import pytest

from repro.ml.base import train_test_split
from repro.ml.data import TaskSpec, make_blobs, make_task
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression, RidgeClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier

ESTIMATOR_FACTORIES = {
    "logreg": lambda: LogisticRegression(n_epochs=150),
    "ridge": lambda: RidgeClassifier(),
    "gnb": lambda: GaussianNB(),
    "knn": lambda: KNeighborsClassifier(5),
    "tree": lambda: DecisionTreeClassifier(max_depth=6),
    "forest": lambda: RandomForestClassifier(12, max_depth=6, seed=0),
    "svm": lambda: LinearSVM(n_epochs=12, seed=0),
    "mlp": lambda: MLPClassifier((24,), n_epochs=80, seed=0),
}


@pytest.fixture(scope="module")
def easy_task():
    X, y = make_blobs(240, n_classes=3, separation=6.0, seed=0)
    return train_test_split(X, y, test_fraction=0.25, seed=1)


#: Linear one-vs-rest models suffer from class masking on 3 random
#: Gaussian clouds; hold them to a softer bar than the non-linear ones.
ACCURACY_FLOORS = {"ridge": 0.75, "svm": 0.72}


@pytest.mark.parametrize("name", ESTIMATOR_FACTORIES, ids=str)
class TestCommonBehaviour:
    def test_beats_chance_on_easy_task(self, name, easy_task):
        X_tr, X_te, y_tr, y_te = easy_task
        model = ESTIMATOR_FACTORIES[name]()
        model.fit(X_tr, y_tr)
        assert model.score(X_te, y_te) > ACCURACY_FLOORS.get(name, 0.85)

    def test_predict_before_fit_rejected(self, name):
        model = ESTIMATOR_FACTORIES[name]()
        with pytest.raises(RuntimeError):
            model.predict(np.ones((2, 2)))

    def test_work_units_accumulate(self, name, easy_task):
        X_tr, _, y_tr, _ = easy_task
        model = ESTIMATOR_FACTORIES[name]()
        assert model.work_units == 0.0
        model.fit(X_tr, y_tr)
        assert model.work_units > 0.0

    def test_prediction_labels_come_from_training(self, name, easy_task):
        X_tr, X_te, y_tr, _ = easy_task
        model = ESTIMATOR_FACTORIES[name]()
        # Shift the label alphabet: predictions must use it.
        model.fit(X_tr, y_tr + 10)
        predictions = model.predict(X_te)
        assert set(np.unique(predictions)) <= {10, 11, 12}

    def test_single_class_degenerates_gracefully(self, name):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.zeros(20, dtype=int)
        model = ESTIMATOR_FACTORIES[name]()
        model.fit(X, y)
        assert np.all(model.predict(X) == 0)


class TestLogisticRegression:
    def test_predict_proba_simplex(self, easy_task):
        X_tr, X_te, y_tr, _ = easy_task
        model = LogisticRegression(n_epochs=100).fit(X_tr, y_tr)
        probs = model.predict_proba(X_te)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(n_epochs=0)
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)


class TestRidge:
    def test_decision_function_shape(self, easy_task):
        X_tr, X_te, y_tr, _ = easy_task
        model = RidgeClassifier().fit(X_tr, y_tr)
        assert model.decision_function(X_te).shape == (
            X_te.shape[0], 3
        )


class TestKNN:
    def test_memorizes_training_set(self):
        X = np.array([[0.0], [1.0], [5.0], [6.0]])
        y = np.array([0, 0, 1, 1])
        model = KNeighborsClassifier(1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="n_neighbors"):
            KNeighborsClassifier(5).fit(np.ones((3, 1)), [0, 1, 0])

    def test_feature_mismatch_rejected(self, easy_task):
        X_tr, _, y_tr, _ = easy_task
        model = KNeighborsClassifier(3).fit(X_tr, y_tr)
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 9)))


class TestGaussianNB:
    def test_recovers_gaussian_classes(self, rng):
        X = np.vstack([
            rng.normal(-3, 1, (100, 2)),
            rng.normal(3, 1, (100, 2)),
        ])
        y = np.repeat([0, 1], 100)
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.95
        assert np.allclose(model.theta_[0], [-3, -3], atol=0.5)

    def test_prior_reflects_imbalance(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 90 + [1] * 10)
        model = GaussianNB().fit(X, y)
        assert model.class_log_prior_[0] > model.class_log_prior_[1]


class TestDecisionTree:
    def test_max_depth_respected(self, easy_task):
        X_tr, _, y_tr, _ = easy_task
        shallow = DecisionTreeClassifier(max_depth=1).fit(X_tr, y_tr)
        deep = DecisionTreeClassifier(max_depth=8).fit(X_tr, y_tr)
        assert shallow.n_nodes_ <= 3
        assert deep.n_nodes_ > shallow.n_nodes_

    def test_pure_leaves_on_separable_data(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        model = DecisionTreeClassifier().fit(X, y)
        assert model.score(X, y) == 1.0

    def test_predict_proba_rows_sum_to_one(self, easy_task):
        X_tr, X_te, y_tr, _ = easy_task
        model = DecisionTreeClassifier(max_depth=4).fit(X_tr, y_tr)
        probs = model.predict_proba(X_te)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_xor_needs_depth_two(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="all")


class TestRandomForest:
    def test_seeded_reproducibility(self, easy_task):
        X_tr, X_te, y_tr, _ = easy_task
        a = RandomForestClassifier(8, max_depth=4, seed=3).fit(X_tr, y_tr)
        b = RandomForestClassifier(8, max_depth=4, seed=3).fit(X_tr, y_tr)
        assert np.array_equal(a.predict(X_te), b.predict(X_te))

    def test_more_trees_more_work(self, easy_task):
        X_tr, _, y_tr, _ = easy_task
        small = RandomForestClassifier(4, max_depth=4).fit(X_tr, y_tr)
        large = RandomForestClassifier(16, max_depth=4).fit(X_tr, y_tr)
        assert large.work_units > small.work_units

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(0)


class TestLinearSVMAndMLP:
    def test_svm_binary_margins(self):
        X = np.vstack([np.full((20, 2), -2.0), np.full((20, 2), 2.0)])
        X += np.random.default_rng(0).normal(0, 0.1, X.shape)
        y = np.repeat([0, 1], 20)
        model = LinearSVM(n_epochs=20, seed=0).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_mlp_solves_xor_family(self):
        X, y = make_task(TaskSpec("xor", 300, 0.1, seed=4))
        model = MLPClassifier((32,), n_epochs=150, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(())
        with pytest.raises(ValueError):
            MLPClassifier((8,), n_epochs=0)
        with pytest.raises(ValueError):
            MLPClassifier((8,), batch_size=0)

    def test_mlp_proba_simplex(self, easy_task):
        X_tr, X_te, y_tr, _ = easy_task
        model = MLPClassifier((16,), n_epochs=30, seed=0).fit(X_tr, y_tr)
        probs = model.predict_proba(X_te)
        assert np.allclose(probs.sum(axis=1), 1.0)
