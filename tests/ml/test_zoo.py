"""Tests for the model zoo and live-trainer construction."""

import numpy as np
import pytest

from repro.ml.data import TaskSpec
from repro.ml.zoo import ModelZoo, ZooEntry, default_zoo


class TestZooBasics:
    def test_default_zoo_nonempty_unique(self):
        zoo = default_zoo()
        assert len(zoo) >= 10
        assert len(set(zoo.names())) == len(zoo)

    def test_lookup(self):
        zoo = default_zoo()
        entry = zoo["naive-bayes"]
        assert entry.family == "bayesian"
        assert "naive-bayes" in zoo
        assert "quantum-cnn" not in zoo

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyError, match="quantum"):
            default_zoo()["quantum-cnn"]

    def test_subset_preserves_order(self):
        zoo = default_zoo()
        sub = zoo.subset(["ridge", "knn-5"])
        assert sub.names() == ["ridge", "knn-5"]

    def test_metadata_vectors(self):
        zoo = default_zoo()
        assert zoo.citations().shape == (len(zoo),)
        assert zoo.years().shape == (len(zoo),)

    def test_duplicate_names_rejected(self):
        entry = default_zoo()["ridge"]
        with pytest.raises(ValueError, match="duplicate"):
            ModelZoo([entry, entry])

    def test_empty_zoo_rejected(self):
        with pytest.raises(ValueError):
            ModelZoo([])

    def test_cost_estimates_positive_and_varied(self):
        zoo = default_zoo()
        costs = [e.cost_estimate(200, 10, 3) for e in zoo]
        assert all(c > 0 for c in costs)
        assert max(costs) / min(costs) > 100  # wide cost frontier


class TestLiveTrainer:
    @pytest.fixture(scope="class")
    def trainer(self):
        zoo = default_zoo().subset(
            ["naive-bayes", "ridge", "tree-d4", "knn-5"]
        )
        specs = [
            TaskSpec("blobs", 120, 0.3, seed=0),
            TaskSpec("moons", 120, 0.3, seed=1),
        ]
        return zoo.build_trainer(specs, seed=0)

    def test_shapes(self, trainer):
        assert trainer.n_users == 2
        assert trainer.n_models(0) == 4

    def test_training_returns_valid_observation(self, trainer):
        reward, cost = trainer.train(0, 0)
        assert 0.0 <= reward <= 1.0
        assert cost > 0.0

    def test_repeated_training_is_stochastic_for_seeded_models(self):
        zoo = default_zoo().subset(["forest-10"])
        trainer = zoo.build_trainer(
            [TaskSpec("moons", 150, 0.5, seed=0)], seed=0
        )
        rewards = {trainer.train(0, 0)[0] for _ in range(8)}
        assert len(rewards) > 1  # fresh seeds per call

    def test_estimates_track_measured_magnitude(self, trainer):
        estimate = trainer.expected_costs(0)
        for model in range(4):
            _, measured = trainer.train(0, model)
            ratio = measured / estimate[model]
            assert 0.05 < ratio < 20.0, (model, ratio)

    def test_good_model_beats_chance(self, trainer):
        best = max(trainer.train(0, m)[0] for m in range(4))
        assert best > 0.6
