"""Tests for ml.base, ml.data and ml.preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.base import (
    accuracy_score,
    check_X_y,
    encode_labels,
    one_hot,
    softmax,
    train_test_split,
)
from repro.ml.data import (
    TASK_KINDS,
    TaskSpec,
    make_blobs,
    make_circles,
    make_moons,
    make_sparse_highdim,
    make_spirals,
    make_task,
    make_xor,
)
from repro.ml.preprocessing import MinMaxScaler, StandardScaler


class TestBaseHelpers:
    def test_accuracy_score(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_range_checked(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_encode_labels(self):
        encoded, classes = encode_labels(np.array(["b", "a", "b"]))
        assert list(classes) == ["a", "b"]
        assert list(encoded) == [1, 0, 1]

    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 3)) * 50)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(np.isfinite(probs))

    def test_check_X_y_promotes_1d(self):
        X = check_X_y(np.array([1.0, 2.0]))
        assert X.shape == (2, 1)

    def test_check_X_y_rejects_nan(self):
        with pytest.raises(ValueError):
            check_X_y(np.array([[np.nan]]))


class TestTrainTestSplit:
    def test_partition(self, rng):
        X = rng.normal(size=(20, 2))
        y = rng.integers(0, 2, 20)
        X_tr, X_te, y_tr, y_te = train_test_split(
            X, y, test_fraction=0.25, seed=0
        )
        assert X_tr.shape[0] == 15
        assert X_te.shape[0] == 5
        assert y_tr.shape[0] == 15
        assert y_te.shape[0] == 5

    def test_seeded(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.integers(0, 2, 10)
        a = train_test_split(X, y, seed=1)
        b = train_test_split(X, y, seed=1)
        assert np.allclose(a[0], b[0])

    def test_fraction_bounds(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.integers(0, 2, 10)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=1.0)


class TestGenerators:
    @pytest.mark.parametrize(
        "maker",
        [make_moons, make_circles, make_spirals, make_xor],
    )
    def test_binary_generators(self, maker):
        X, y = maker(100, seed=0)
        assert X.shape == (100, 2)
        assert set(np.unique(y)) == {0, 1}

    def test_blobs_multiclass(self):
        X, y = make_blobs(90, n_classes=3, seed=0)
        assert X.shape == (90, 2)
        assert set(np.unique(y)) == {0, 1, 2}

    def test_blobs_separation_controls_difficulty(self):
        from repro.ml.linear import RidgeClassifier

        def accuracy(separation):
            X, y = make_blobs(
                200, n_classes=3, separation=separation, seed=3
            )
            return RidgeClassifier().fit(X, y).score(X, y)

        assert accuracy(8.0) > accuracy(0.5)

    def test_sparse_highdim_shape(self):
        X, y = make_sparse_highdim(50, n_features=30, seed=0)
        assert X.shape == (50, 30)

    def test_sparse_highdim_validates(self):
        with pytest.raises(ValueError):
            make_sparse_highdim(50, n_features=5, n_informative=10)

    def test_generators_deterministic(self):
        a = make_moons(50, seed=5)
        b = make_moons(50, seed=5)
        assert np.allclose(a[0], b[0])


class TestTaskSpec:
    def test_all_kinds_instantiable(self):
        for kind in TASK_KINDS:
            X, y = make_task(TaskSpec(kind, 64, 0.4, seed=1))
            assert X.shape[0] == 64
            assert len(np.unique(y)) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("nonsense")
        with pytest.raises(ValueError):
            TaskSpec("blobs", difficulty=1.5)
        with pytest.raises(ValueError):
            TaskSpec("blobs", n_samples=2)

    @settings(max_examples=15, deadline=None)
    @given(
        kind=st.sampled_from(TASK_KINDS),
        difficulty=st.floats(0.0, 1.0),
        seed=st.integers(0, 50),
    )
    def test_property_tasks_always_valid(self, kind, difficulty, seed):
        X, y = make_task(TaskSpec(kind, 40, difficulty, seed=seed))
        assert np.all(np.isfinite(X))
        assert y.dtype.kind in "iu"


class TestScalers:
    def test_standard_scaler(self, rng):
        X = rng.normal(5.0, 3.0, (100, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_feature(self):
        X = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_minmax_scaler(self, rng):
        X = rng.normal(size=(50, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0
        assert Z.max() <= 1.0 + 1e-12

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_feature_count_checked(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(rng.normal(size=(5, 4)))
