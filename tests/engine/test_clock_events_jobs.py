"""Tests for the clock, event log and job lifecycle."""

import pytest

from repro.engine.clock import SimClock
from repro.engine.events import Event, EventKind, EventLog
from repro.engine.jobs import Job, JobState


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.0) == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(1.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(4.0)

    def test_advance_nan_rejected(self):
        # Regression: float("nan") < 0 is False, so an unchecked NaN
        # delta silently corrupted the clock to NaN forever.
        clock = SimClock(1.0)
        with pytest.raises(ValueError, match="finite"):
            clock.advance(float("nan"))
        assert clock.now == 1.0

    def test_advance_infinite_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError, match="finite"):
            clock.advance(float("inf"))
        with pytest.raises(ValueError, match="finite"):
            clock.advance(float("-inf"))
        assert clock.now == 0.0

    def test_advance_to_non_finite_rejected(self):
        clock = SimClock(2.0)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                clock.advance_to(bad)
        assert clock.now == 2.0

    def test_non_finite_start_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            SimClock(float("nan"))


class TestEventLog:
    def test_append_and_len(self):
        log = EventLog()
        log.append(0.0, EventKind.FEED, app="a")
        log.append(1.0, EventKind.INFER, app="a")
        assert len(log) == 2

    def test_time_ordering_enforced(self):
        log = EventLog()
        log.append(5.0, EventKind.FEED)
        with pytest.raises(ValueError, match="precedes"):
            log.append(4.0, EventKind.FEED)

    def test_of_kind_filter(self):
        log = EventLog()
        log.append(0.0, EventKind.FEED)
        log.append(1.0, EventKind.INFER)
        log.append(2.0, EventKind.FEED)
        assert len(log.of_kind(EventKind.FEED)) == 2

    def test_kind_accepts_string(self):
        log = EventLog()
        event = log.append(0.0, "feed")
        assert event.kind is EventKind.FEED

    def test_between_window(self):
        log = EventLog()
        for t in range(5):
            log.append(float(t), EventKind.CUSTOM, i=t)
        window = log.between(1.0, 3.0)
        assert [e.payload["i"] for e in window] == [1, 2]

    def test_last(self):
        log = EventLog()
        assert log.last() is None
        log.append(0.0, EventKind.FEED)
        log.append(1.0, EventKind.INFER)
        assert log.last().kind is EventKind.INFER
        assert log.last(EventKind.FEED).time == 0.0
        assert log.last(EventKind.REFINE) is None

    def test_indexing_and_iteration(self):
        log = EventLog()
        log.append(0.0, EventKind.FEED)
        assert isinstance(log[0], Event)
        assert list(log)[0] is log[0]

    def test_filter_by_kind(self):
        log = EventLog()
        log.append(0.0, EventKind.JOB_FINISHED, user=0)
        log.append(1.0, EventKind.JOB_FAILED, user=0)
        log.append(2.0, EventKind.JOB_FINISHED, user=1)
        assert len(log.filter(EventKind.JOB_FINISHED)) == 2
        assert len(log.filter("job_failed")) == 1
        assert len(log.filter()) == 3

    def test_filter_by_multiple_kinds(self):
        log = EventLog()
        log.append(0.0, EventKind.JOB_FINISHED)
        log.append(1.0, EventKind.JOB_FAILED)
        log.append(2.0, EventKind.FEED)
        both = log.filter([EventKind.JOB_FINISHED, EventKind.JOB_FAILED])
        assert len(both) == 2

    def test_filter_by_payload_and_predicate(self):
        log = EventLog()
        log.append(0.0, EventKind.JOB_FINISHED, user=0, reward=0.5)
        log.append(1.0, EventKind.JOB_FINISHED, user=1, reward=0.9)
        assert len(log.filter(EventKind.JOB_FINISHED, user=1)) == 1
        good = log.filter(predicate=lambda e: e.payload["reward"] > 0.6)
        assert len(good) == 1 and good[0].payload["user"] == 1
        # A payload key an event lacks never matches.
        assert log.filter(EventKind.JOB_FINISHED, missing=3) == []


class TestJobLifecycle:
    def make_job(self):
        return Job(job_id=0, user=1, model=2, submit_time=0.0,
                   gpu_time=4.0)

    def test_happy_path(self):
        job = self.make_job()
        assert job.state is JobState.PENDING
        job.start(1.0)
        assert job.state is JobState.RUNNING
        job.finish(3.0, reward=0.8)
        assert job.state is JobState.FINISHED
        assert job.duration == pytest.approx(2.0)
        assert job.reward == 0.8

    def test_cannot_finish_pending(self):
        job = self.make_job()
        with pytest.raises(ValueError):
            job.finish(1.0, 0.5)

    def test_cannot_start_twice(self):
        job = self.make_job()
        job.start(0.0)
        with pytest.raises(ValueError):
            job.start(1.0)

    def test_finish_before_start_rejected(self):
        job = self.make_job()
        job.start(2.0)
        with pytest.raises(ValueError, match="before"):
            job.finish(1.0, 0.5)

    def test_failure_records_reason(self):
        job = self.make_job()
        job.start(0.0)
        job.fail(1.0, reason="OOM")
        assert job.state is JobState.FAILED
        assert job.detail["failure_reason"] == "OOM"

    def test_duration_none_until_done(self):
        job = self.make_job()
        assert job.duration is None
        job.start(0.0)
        assert job.duration is None

    def test_preempt_resume_cycle(self):
        job = self.make_job()
        job.start(0.0)
        job.account_progress(1.5)
        job.preempt(1.5)
        assert job.state is JobState.PREEMPTED
        assert job.preemptions == 1
        assert job.remaining_gpu_time == pytest.approx(2.5)
        job.resume(3.0)
        assert job.state is JobState.RUNNING
        job.finish(5.5, reward=0.7)
        assert job.remaining_gpu_time == 0.0
        assert job.work_done == job.gpu_time

    def test_preempt_requires_running(self):
        job = self.make_job()
        with pytest.raises(ValueError, match="preempt"):
            job.preempt(0.0)

    def test_resume_requires_preempted(self):
        job = self.make_job()
        job.start(0.0)
        with pytest.raises(ValueError, match="resume"):
            job.resume(1.0)

    def test_progress_clamped_to_gpu_time(self):
        job = self.make_job()
        job.start(0.0)
        job.account_progress(100.0)
        assert job.work_done == job.gpu_time
        assert job.remaining_gpu_time == 0.0
        with pytest.raises(ValueError, match="work"):
            job.account_progress(-1.0)

    def test_fail_from_pending_and_preempted(self):
        queued = self.make_job()
        queued.fail(1.0, reason="user departed")
        assert queued.state is JobState.FAILED

        preempted = self.make_job()
        preempted.start(0.0)
        preempted.preempt(1.0)
        preempted.fail(2.0, reason="user departed")
        assert preempted.state is JobState.FAILED

    def test_cannot_fail_terminal_states(self):
        job = self.make_job()
        job.start(0.0)
        job.finish(1.0, 0.5)
        with pytest.raises(ValueError, match="fail"):
            job.fail(2.0)
