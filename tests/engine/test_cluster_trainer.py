"""Tests for the GPU pool and trainer interfaces."""

import numpy as np
import pytest

from repro.engine.cluster import GPUPool
from repro.engine.trainer import CallableTrainer, TraceTrainer


class TestGPUPool:
    def test_single_gpu_no_speedup(self):
        assert GPUPool(1).speedup() == 1.0

    def test_linear_scaling_limit(self):
        assert GPUPool(24, scaling_efficiency=1.0).speedup() == 24.0

    def test_zero_efficiency(self):
        assert GPUPool(24, scaling_efficiency=0.0).speedup() == 1.0

    def test_default_deployment(self):
        pool = GPUPool()  # the paper's 24 TITAN X pool
        assert pool.n_gpus == 24
        assert pool.speedup() == pytest.approx(1 + 0.9 * 23)

    def test_partial_allocation(self):
        pool = GPUPool(8, scaling_efficiency=0.5)
        assert pool.speedup(4) == pytest.approx(2.5)

    def test_wall_clock_time(self):
        pool = GPUPool(4, scaling_efficiency=1.0)
        assert pool.wall_clock_time(8.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUPool(0)
        with pytest.raises(ValueError):
            GPUPool(4, scaling_efficiency=1.5)
        with pytest.raises(ValueError):
            GPUPool(4).speedup(5)

    def test_partial_pool_speedup_bounds(self):
        pool = GPUPool(8, scaling_efficiency=0.9)
        assert pool.speedup(1) == 1.0
        assert pool.speedup(8) == pool.speedup()
        # Monotone in the number of devices used.
        speedups = [pool.speedup(g) for g in range(1, 9)]
        assert speedups == sorted(speedups)
        assert all(1.0 <= s <= pool.speedup() for s in speedups)

    def test_partial_pool_speedup_out_of_range(self):
        pool = GPUPool(8)
        with pytest.raises(ValueError, match="n_gpus_used"):
            pool.speedup(0)
        with pytest.raises(ValueError, match="n_gpus_used"):
            pool.speedup(-1)
        with pytest.raises(ValueError, match="n_gpus_used"):
            pool.speedup(9)

    def test_wall_clock_time_partial_pool(self):
        pool = GPUPool(8, scaling_efficiency=1.0)
        assert pool.wall_clock_time(8.0, n_gpus_used=2) == pytest.approx(4.0)
        assert pool.wall_clock_time(8.0, n_gpus_used=1) == pytest.approx(8.0)

    def test_wall_clock_time_zero_gpu_time(self):
        pool = GPUPool(8, scaling_efficiency=0.9)
        assert pool.wall_clock_time(0.0) == 0.0
        assert pool.wall_clock_time(0.0, n_gpus_used=3) == 0.0

    def test_wall_clock_time_negative_rejected(self):
        with pytest.raises(ValueError, match="gpu_time"):
            GPUPool(8).wall_clock_time(-1.0)


class TestTraceTrainer:
    def test_replays_matrix(self, tiny_dataset):
        trainer = TraceTrainer(tiny_dataset)
        reward, gpu_time = trainer.train(0, 3)
        assert reward == tiny_dataset.quality[0, 3]
        assert gpu_time == tiny_dataset.cost[0, 3]

    def test_expected_costs(self, tiny_dataset):
        trainer = TraceTrainer(tiny_dataset)
        assert np.allclose(
            trainer.expected_costs(2), tiny_dataset.cost[2]
        )

    def test_noise_seeded_and_clipped(self, tiny_dataset):
        a = TraceTrainer(tiny_dataset, noise_std=0.2, seed=1)
        b = TraceTrainer(tiny_dataset, noise_std=0.2, seed=1)
        assert a.train(0, 0) == b.train(0, 0)
        for _ in range(30):
            reward, _ = a.train(0, 0)
            assert 0.0 <= reward <= 1.0

    def test_bounds(self, tiny_dataset):
        trainer = TraceTrainer(tiny_dataset)
        with pytest.raises(IndexError):
            trainer.train(99, 0)
        with pytest.raises(IndexError):
            trainer.train(0, 99)
        with pytest.raises(ValueError):
            TraceTrainer(tiny_dataset, noise_std=-1.0)


class TestCallableTrainer:
    def make(self):
        tasks = [
            [lambda: (0.8, 2.0), lambda: (0.6, 1.0)],
            [lambda: (0.5, 3.0), lambda: (0.9, 0.5)],
        ]
        estimates = [np.array([2.0, 1.0]), np.array([3.0, 0.5])]
        return CallableTrainer(tasks, estimates)

    def test_invokes_callable(self):
        trainer = self.make()
        assert trainer.train(0, 0) == (0.8, 2.0)
        assert trainer.train(1, 1) == (0.9, 0.5)

    def test_shapes(self):
        trainer = self.make()
        assert trainer.n_users == 2
        assert trainer.n_models(0) == 2
        assert np.allclose(trainer.expected_costs(1), [3.0, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError, match="per user"):
            CallableTrainer([[lambda: (0.5, 1.0)]], [])
        with pytest.raises(ValueError, match="cost estimates"):
            CallableTrainer(
                [[lambda: (0.5, 1.0)]], [np.array([1.0, 2.0])]
            )
        with pytest.raises(ValueError, match="> 0"):
            CallableTrainer(
                [[lambda: (0.5, 1.0)]], [np.array([0.0])]
            )

    def test_nonpositive_gpu_time_rejected(self):
        trainer = CallableTrainer(
            [[lambda: (0.5, 0.0)]], [np.array([1.0])]
        )
        with pytest.raises(ValueError, match="gpu_time"):
            trainer.train(0, 0)

    def test_bounds(self):
        trainer = self.make()
        with pytest.raises(IndexError):
            trainer.train(2, 0)
        with pytest.raises(IndexError):
            trainer.train(0, 5)
