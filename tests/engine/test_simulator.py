"""Tests for the cluster oracle and dedicated-device simulation."""

import numpy as np
import pytest

from repro.engine.cluster import GPUPool
from repro.engine.events import EventKind
from repro.engine.simulator import ClusterOracle, simulate_dedicated_devices
from repro.engine.trainer import TraceTrainer


class TestClusterOracle:
    def make(self, tiny_dataset, efficiency=1.0):
        trainer = TraceTrainer(tiny_dataset)
        pool = GPUPool(4, scaling_efficiency=efficiency)
        return ClusterOracle(trainer, pool)

    def test_observe_returns_wall_clock_cost(self, tiny_dataset):
        oracle = self.make(tiny_dataset)
        obs = oracle.observe(0, 2)
        # gpu_time 3.0 on a perfectly scaling 4-GPU pool.
        assert obs.cost == pytest.approx(3.0 / 4.0)
        assert obs.reward == tiny_dataset.quality[0, 2]

    def test_clock_advances_per_job(self, tiny_dataset):
        oracle = self.make(tiny_dataset)
        oracle.observe(0, 0)
        t1 = oracle.clock.now
        oracle.observe(1, 1)
        assert oracle.clock.now > t1

    def test_costs_scaled_by_speedup(self, tiny_dataset):
        oracle = self.make(tiny_dataset)
        assert np.allclose(
            oracle.costs(0), tiny_dataset.cost[0] / 4.0
        )

    def test_event_log_records_lifecycle(self, tiny_dataset):
        oracle = self.make(tiny_dataset)
        oracle.observe(2, 1)
        kinds = [e.kind for e in oracle.log]
        assert kinds == [
            EventKind.JOB_SUBMITTED,
            EventKind.JOB_STARTED,
            EventKind.JOB_FINISHED,
            EventKind.MODEL_RETURNED,
        ]

    def test_jobs_recorded_finished(self, tiny_dataset):
        oracle = self.make(tiny_dataset)
        oracle.observe(0, 0)
        oracle.observe(1, 1)
        assert len(oracle.finished_jobs()) == 2
        job = oracle.finished_jobs()[0]
        assert job.user == 0
        assert job.reward == tiny_dataset.quality[0, 0]

    def test_bounds_checked(self, tiny_dataset):
        oracle = self.make(tiny_dataset)
        with pytest.raises(IndexError):
            oracle.observe(99, 0)

    def test_trainer_failure_emits_job_failed(self, tiny_dataset):
        class ExplodingTrainer(TraceTrainer):
            def train(self, user, model):
                raise RuntimeError("CUDA OOM")

        oracle = ClusterOracle(ExplodingTrainer(tiny_dataset), GPUPool(4))
        with pytest.raises(RuntimeError, match="CUDA OOM"):
            oracle.observe(0, 1)
        job = oracle.jobs[0]
        assert job.state.value == "failed"
        assert job.detail["failure_reason"] == "CUDA OOM"
        failed = oracle.log.filter(EventKind.JOB_FAILED)
        assert len(failed) == 1
        assert failed[0].payload == {
            "job_id": 0, "user": 0, "model": 1, "reason": "CUDA OOM",
        }
        # The EventLog.filter helper slices the failure out of the
        # full lifecycle record.
        assert [e.kind for e in oracle.log] == [
            EventKind.JOB_SUBMITTED,
            EventKind.JOB_STARTED,
            EventKind.JOB_FAILED,
        ]


class TestDedicatedDevices:
    def test_every_user_progresses(self, tiny_dataset):
        result = simulate_dedicated_devices(
            tiny_dataset, horizon=20.0, seed=0
        )
        assert len(result.completion_times) == tiny_dataset.n_users
        for times in result.completion_times:
            assert len(times) >= 1
            assert np.all(np.diff(times) > 0)

    def test_horizon_respected(self, tiny_dataset):
        result = simulate_dedicated_devices(
            tiny_dataset, horizon=10.0, seed=0
        )
        for times in result.completion_times:
            assert np.all(times <= 10.0 + 1e-9)

    def test_best_reward_at_time_zero_is_zero(self, tiny_dataset):
        result = simulate_dedicated_devices(
            tiny_dataset, horizon=20.0, seed=0
        )
        assert result.best_reward_at(0, 0.0) == 0.0

    def test_loss_decreases_over_time(self, tiny_dataset):
        result = simulate_dedicated_devices(
            tiny_dataset, horizon=30.0, seed=0
        )
        best = tiny_dataset.best_qualities()
        early = result.average_accuracy_loss_at(5.0, best)
        late = result.average_accuracy_loss_at(30.0, best)
        assert late <= early

    def test_random_order_supported(self, tiny_dataset):
        result = simulate_dedicated_devices(
            tiny_dataset, horizon=15.0, order="random", seed=0
        )
        assert len(result.rewards) == tiny_dataset.n_users

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            simulate_dedicated_devices(tiny_dataset, horizon=0.0)
        with pytest.raises(ValueError, match="order"):
            simulate_dedicated_devices(
                tiny_dataset, horizon=1.0, order="mystery"
            )

    def test_single_device_pool_beats_dedicated_early(self, tiny_dataset):
        """Section 5.3.2: pooling all GPUs returns first models sooner."""
        from repro.core.beta import AlgorithmOneBeta
        from repro.core.model_picking import GPUCBPicker
        from repro.core.multitenant import MultiTenantScheduler
        from repro.core.user_picking import RoundRobinPicker

        pool = GPUPool(tiny_dataset.n_users, scaling_efficiency=1.0)
        oracle = ClusterOracle(TraceTrainer(tiny_dataset), pool)
        pickers = [
            GPUCBPicker(
                0.09 * np.eye(tiny_dataset.n_models),
                AlgorithmOneBeta(tiny_dataset.n_models),
                oracle.costs(i),
                noise=0.05,
            )
            for i in range(tiny_dataset.n_users)
        ]
        sched = MultiTenantScheduler(oracle, pickers, RoundRobinPicker())
        horizon = 2.0
        sched.run(cost_budget=horizon)
        shared_best = {i: 0.0 for i in range(tiny_dataset.n_users)}
        for record in sched.records:
            if record.cumulative_cost <= horizon:
                shared_best[record.user] = max(
                    shared_best[record.user],
                    tiny_dataset.quality[record.user, record.arm],
                )
        shared_loss = np.mean(
            [
                tiny_dataset.best_quality(i) - shared_best[i]
                for i in range(tiny_dataset.n_users)
            ]
        )
        dedicated = simulate_dedicated_devices(
            tiny_dataset, horizon=horizon, seed=0
        )
        dedicated_loss = dedicated.average_accuracy_loss_at(
            horizon, tiny_dataset.best_qualities()
        )
        # With an n-GPU pool at perfect scaling, the shared discipline
        # completes the same total work but sequences cheap first jobs
        # sooner; it should be at least as good at this early horizon.
        assert shared_loss <= dedicated_loss + 0.05
