"""Fixtures for the service-layer tests (helpers: service_helpers.py)."""

import pytest

from service_helpers import make_gateway
from repro.service.gateway import TenantQuota


@pytest.fixture
def gateway():
    return make_gateway()


@pytest.fixture
def tight_quota():
    return TenantQuota(max_apps=1, max_pending_jobs=2, max_store_bytes=2048)
