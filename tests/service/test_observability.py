"""End-to-end observability: /metrics, request ids socket -> WAL."""

import json
from http.client import HTTPConnection

import pytest

from service_helpers import (
    MOONS_PROGRAM,
    SMALL_ZOO,
    make_gateway,
    task_payload,
)
from repro.obs import MetricsRegistry
from repro.obs.context import REQUEST_ID_HEADER
from repro.service.api import ApiError
from repro.service.client import EaseMLClient
from repro.service.http import (
    METRICS_JSON_PATH,
    METRICS_PATH,
    route_template,
    serve_background,
)


@pytest.fixture(params=["threading", "asyncio"])
def service(request):
    gateway = make_gateway()
    server, _ = serve_background(gateway, frontend=request.param)
    yield gateway, server
    server.shutdown()
    server.server_close()


def open_durable_gateway(state_dir):
    """A fresh journaled gateway over ``state_dir`` (small zoo)."""
    from repro.ml.zoo import default_zoo
    from repro.persist import open_gateway

    return open_gateway(
        state_dir,
        placement="partition",
        n_gpus=4,
        min_examples=10,
        seed=0,
        zoo=default_zoo().subset(SMALL_ZOO),
    )


def raw_get(server, path, headers=None):
    connection = HTTPConnection("127.0.0.1", server.port, timeout=30.0)
    connection.request("GET", path, headers=headers or {})
    response = connection.getresponse()
    raw = response.read()
    connection.close()
    return response, raw


class TestRouteTemplates:
    @pytest.mark.parametrize("method,path,expected", [
        ("GET", "/v1/info", "/v1/info"),
        ("GET", "/v1/apps", "/v1/apps"),
        ("GET", "/v1/apps/moons", "/v1/apps/{app}"),
        ("GET", "/v1/apps/moons/examples", "/v1/apps/{app}/examples"),
        ("POST", "/v1/apps/m/examples/7", "/v1/apps/{app}/examples/{id}"),
        ("POST", "/v1/apps/m/infer", "/v1/apps/{app}/infer"),
        ("GET", "/v1/jobs", "/v1/jobs"),
        ("GET", "/v1/jobs/job-1?wait=2", "/v1/jobs/{job}"),
        ("GET", "/v1/events", "/v1/events"),
        ("GET", "/nonsense", "(unmatched)"),
        ("GET", "/v1/apps/a/b/c/d/e", "(unmatched)"),
    ])
    def test_collapses_to_bounded_set(self, method, path, expected):
        assert route_template(method, path) == expected


class TestRequestIdOnTheWire:
    def test_every_response_carries_an_id(self, service):
        gateway, server = service
        response, _ = raw_get(server, "/v1/info")
        rid = response.getheader(REQUEST_ID_HEADER)
        assert rid and rid.startswith("req-")

    def test_client_supplied_id_is_adopted(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        response, raw = raw_get(
            server, "/v1/apps/nope",
            headers={
                "Authorization": f"Bearer {token}",
                REQUEST_ID_HEADER: "trace-12345",
            },
        )
        assert response.getheader(REQUEST_ID_HEADER) == "trace-12345"
        body = json.loads(raw.decode("utf-8"))
        assert body["error"]["request_id"] == "trace-12345"

    def test_unusable_client_id_replaced(self, service):
        gateway, server = service
        response, _ = raw_get(
            server, "/v1/info",
            headers={REQUEST_ID_HEADER: "x" * 500},
        )
        rid = response.getheader(REQUEST_ID_HEADER)
        assert rid.startswith("req-")

    def test_sdk_surfaces_id_on_errors(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        client = EaseMLClient(server.url, token)
        with pytest.raises(ApiError) as exc_info:
            client.app_status("missing")
        assert exc_info.value.request_id
        assert exc_info.value.request_id.startswith("req-")

    def test_auth_failures_still_echo(self, service):
        gateway, server = service
        response, raw = raw_get(
            server, "/v1/apps",
            headers={REQUEST_ID_HEADER: "trace-auth"},
        )
        assert response.status == 401
        assert response.getheader(REQUEST_ID_HEADER) == "trace-auth"
        body = json.loads(raw.decode("utf-8"))
        assert body["error"]["request_id"] == "trace-auth"


class TestRequestIdIntoJournal:
    def test_mutation_records_carry_the_callers_id(self, tmp_path):
        gateway, _ = open_durable_gateway(tmp_path / "state")
        server, _ = serve_background(gateway)
        try:
            token = gateway.create_tenant("alice")
            client = EaseMLClient(server.url, token)
            client.register_app("moons", MOONS_PROGRAM)
            inputs, outputs = task_payload("moons")
            client.feed("moons", inputs, outputs)
        finally:
            server.shutdown()
            server.server_close()
            gateway.store.close()
        by_type = {}
        with open(tmp_path / "state" / "journal.jsonl") as handle:
            for line in handle:
                record = json.loads(line)
                by_type[record["type"]] = record["payload"]
        # HTTP-driven mutations carry the request id end to end...
        assert by_type["app_registered"]["request_id"].startswith("req-")
        assert by_type["examples_fed"]["request_id"].startswith("req-")
        # ... while in-process calls (create_tenant above) have none.
        assert "request_id" not in by_type["tenant_created"]


class TestMetricsEndpoints:
    def test_prometheus_counts_traffic_unauthenticated(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        client = EaseMLClient(server.url, token)
        client.register_app("moons", MOONS_PROGRAM)
        client.info()
        client.info()
        response, raw = raw_get(server, METRICS_PATH)  # no token
        assert response.status == 200
        assert response.getheader("Content-Type").startswith(
            "text/plain; version=0.0.4"
        )
        text = raw.decode("utf-8")
        assert 'route="/v1/info"' in text
        assert "http_request_seconds_bucket" in text
        assert "gateway_command_queue_depth" in text
        # Per-tenant gateway counters ticked for the mutation.
        assert (
            'gateway_requests_total{tenant="alice",'
            'type="register_app",outcome="ok"} 1' in text
        )

    def test_json_snapshot(self, service):
        gateway, server = service
        client = EaseMLClient(server.url, gateway.create_tenant("a"))
        client.info()
        response, raw = raw_get(server, METRICS_JSON_PATH)
        assert response.status == 200
        body = json.loads(raw.decode("utf-8"))
        assert body["api_version"] == "v1"
        series = body["metrics"]["http_requests_total"]["series"]
        assert sum(s["value"] for s in series) >= 1

    def test_errors_counted_by_code(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        client = EaseMLClient(server.url, token)
        with pytest.raises(ApiError):
            client.app_status("missing")
        _, raw = raw_get(server, METRICS_PATH)
        assert (
            'http_errors_total{frontend="' in raw.decode("utf-8")
        )

    def test_disabled_registry_serves_empty(self):
        gateway = make_gateway(metrics=MetricsRegistry(enabled=False))
        server, _ = serve_background(gateway)
        try:
            response, raw = raw_get(server, METRICS_PATH)
            assert response.status == 200
            assert raw == b"\n"
            response, raw = raw_get(server, METRICS_JSON_PATH)
            assert json.loads(raw.decode("utf-8"))["metrics"] == {}
        finally:
            server.shutdown()
            server.server_close()


class TestMetricsToken:
    @pytest.mark.parametrize("frontend", ["threading", "asyncio"])
    def test_gated_scrapes_require_bearer(self, frontend):
        gateway = make_gateway()
        server, _ = serve_background(
            gateway, frontend=frontend, metrics_token="scrape-secret"
        )
        try:
            response, raw = raw_get(server, METRICS_PATH)
            assert response.status == 401
            body = json.loads(raw.decode("utf-8"))
            assert body["error"]["code"] == "unauthorized"
            response, _ = raw_get(
                server,
                METRICS_JSON_PATH,
                headers={"Authorization": "Bearer wrong"},
            )
            assert response.status == 401
            good = {"Authorization": "Bearer scrape-secret"}
            response, raw = raw_get(server, METRICS_PATH, headers=good)
            assert response.status == 200
            assert b"http_requests_total" in raw
            response, raw = raw_get(
                server, METRICS_JSON_PATH, headers=good
            )
            assert response.status == 200
            assert json.loads(raw.decode("utf-8"))["api_version"] == "v1"
        finally:
            server.shutdown()
            server.server_close()


class TestJournalMetricsFamilies:
    def test_store_reports_into_gateway_registry(self, tmp_path):
        gateway, _ = open_durable_gateway(tmp_path / "state")
        try:
            gateway.create_tenant("alice")
            names = {f.name for f in gateway.metrics.families()}
            assert "journal_append_seconds" in names
            assert "journal_records_total" in names
            family = gateway.metrics.get("journal_records_total")
            counts = {
                labels[0]: child.value
                for labels, child in family.children()
            }
            assert counts.get("tenant_created") == 1.0
        finally:
            gateway.store.close()
