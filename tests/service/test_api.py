"""The typed API surface: errors, versioning, wire round trips."""

import numpy as np
import pytest

from repro.service.api import (
    API_VERSION,
    HTTP_STATUS,
    MESSAGE_TYPES,
    ApiError,
    ApiErrorCode,
    FeedRequest,
    InferResponse,
    JobHandle,
    JobStatusResponse,
    ListJobsResponse,
    RefineResponse,
    RegisterAppRequest,
    SubmitTrainingResponse,
    from_wire,
    jsonify,
    to_wire,
)


class TestApiError:
    def test_round_trip(self):
        error = ApiError(
            ApiErrorCode.QUOTA_EXCEEDED, "too many apps", limit=4
        )
        restored = ApiError.from_dict(error.to_dict())
        assert restored.code is ApiErrorCode.QUOTA_EXCEEDED
        assert restored.message == "too many apps"
        assert restored.details == {"limit": 4}

    def test_is_an_exception_with_message(self):
        with pytest.raises(ApiError, match="gone"):
            raise ApiError(ApiErrorCode.NOT_FOUND, "gone")

    def test_every_code_has_an_http_status(self):
        for code in ApiErrorCode:
            assert 400 <= HTTP_STATUS[code] < 600

    def test_details_are_json_safe(self):
        error = ApiError(
            ApiErrorCode.INVALID_ARGUMENT,
            "bad",
            got=np.int64(3),
            shape=np.array([1.0, 2.0]),
        )
        assert error.details == {"got": 3, "shape": [1.0, 2.0]}


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        assert jsonify(np.float64(0.5)) == 0.5
        assert jsonify(np.bool_(True)) is True
        assert jsonify({"a": (np.int32(1), [np.float32(2.0)])}) == {
            "a": [1, [2.0]]
        }


class TestWire:
    def test_request_round_trip(self):
        request = RegisterAppRequest(
            auth_token="tok", app="moons", program="{...}"
        )
        assert from_wire(to_wire(request)) == request

    def test_response_with_nested_handles_round_trips(self):
        response = SubmitTrainingResponse(
            handles=(
                JobHandle(
                    job_id="job-00000",
                    app="moons",
                    candidate="ridge",
                    state="pending",
                    submitted_at=0.0,
                ),
            )
        )
        restored = from_wire(to_wire(response))
        assert restored == response
        assert isinstance(restored.handles[0], JobHandle)

    def test_list_jobs_round_trip(self):
        response = ListJobsResponse(
            jobs=(
                JobHandle(
                    job_id="job-00001",
                    app="a",
                    candidate="c",
                    state="finished",
                    submitted_at=1.5,
                ),
            )
        )
        assert from_wire(to_wire(response)) == response

    def test_refine_examples_round_trip(self):
        response = RefineResponse(
            app="a", examples=((0, True), (1, False))
        )
        assert from_wire(to_wire(response)) == response

    def test_feed_tuples_survive(self):
        request = FeedRequest(
            auth_token="tok",
            app="a",
            inputs=((1.0, 2.0), (3.0, 4.0)),
            outputs=(0, 1),
        )
        restored = from_wire(to_wire(request))
        assert restored.inputs == ((1.0, 2.0), (3.0, 4.0))
        assert restored.outputs == (0, 1)

    def test_unknown_type_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            from_wire({"type": "ExplodeRequest", "body": {}})
        assert excinfo.value.code is ApiErrorCode.INVALID_ARGUMENT

    def test_unknown_field_rejected(self):
        with pytest.raises(ApiError, match="does not accept"):
            from_wire(
                {
                    "type": "RegisterAppRequest",
                    "body": {"auth_token": "t", "app": "a",
                             "program": "p", "bogus": 1},
                }
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(ApiError, match="cannot build"):
            from_wire({"type": "RegisterAppRequest", "body": {}})

    def test_malformed_envelope_rejected(self):
        with pytest.raises(ApiError):
            from_wire(["not", "a", "dict"])

    def test_registry_covers_requests_and_responses(self):
        assert "RegisterAppRequest" in MESSAGE_TYPES
        assert "JobStatusResponse" in MESSAGE_TYPES
        assert "JobHandle" in MESSAGE_TYPES


class TestVersioning:
    def test_defaults_to_current_version(self):
        request = RegisterAppRequest(auth_token="t", app="a", program="p")
        assert request.api_version == API_VERSION

    def test_done_states(self):
        running = JobStatusResponse(
            job_id="j", app="a", candidate="c", state="running",
            submitted_at=0.0,
        )
        finished = JobStatusResponse(
            job_id="j", app="a", candidate="c", state="finished",
            submitted_at=0.0,
        )
        assert not running.done
        assert finished.done

    def test_responses_carry_version(self):
        assert InferResponse(app="a", prediction=1).api_version == API_VERSION
