"""Batch inference (ISSUE 4 satellite): many rows, v1 shape intact."""

import pytest

from service_helpers import MOONS_PROGRAM, make_gateway, task_payload

from repro.service.api import (
    ApiError,
    ApiErrorCode,
    FeedRequest,
    InferRequest,
    JobStatusRequest,
    RegisterAppRequest,
    SubmitTrainingRequest,
    from_wire,
    to_wire,
)


@pytest.fixture
def trained(gateway):
    token = gateway.create_tenant("alice")
    gateway.handle(
        RegisterAppRequest(
            auth_token=token, app="moons", program=MOONS_PROGRAM
        )
    )
    inputs, outputs = task_payload("moons")
    gateway.handle(
        FeedRequest(
            auth_token=token, app="moons", inputs=inputs, outputs=outputs
        )
    )
    handles = gateway.handle(
        SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
    ).handles
    for handle in handles:
        while not gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id)
        ).done:
            pass
    return gateway, token, inputs


class TestSingleRow:
    def test_v1_shape_still_served(self, trained):
        gateway, token, inputs = trained
        response = gateway.handle(
            InferRequest(auth_token=token, app="moons", x=inputs[0])
        )
        assert response.prediction in (0, 1)
        assert response.predictions == (response.prediction,)
        assert response.model is not None

    def test_wire_round_trip_keeps_x(self, trained):
        _, token, inputs = trained
        request = InferRequest(auth_token=token, app="moons", x=inputs[0])
        assert from_wire(to_wire(request)) == request


class TestBatch:
    def test_batch_matches_single_row(self, trained):
        gateway, token, inputs = trained
        rows = inputs[:8]
        batch = gateway.handle(
            InferRequest(auth_token=token, app="moons", rows=rows)
        )
        singles = [
            gateway.handle(
                InferRequest(auth_token=token, app="moons", x=row)
            ).prediction
            for row in rows
        ]
        assert list(batch.predictions) == singles
        assert batch.prediction is None
        assert batch.model_version is not None

    def test_wire_round_trip_keeps_rows(self, trained):
        _, token, inputs = trained
        request = InferRequest(
            auth_token=token, app="moons", rows=inputs[:3]
        )
        assert from_wire(to_wire(request)) == request

    def test_both_x_and_rows_rejected(self, trained):
        gateway, token, inputs = trained
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                InferRequest(
                    auth_token=token, app="moons",
                    x=inputs[0], rows=inputs[:2],
                )
            )
        assert excinfo.value.code is ApiErrorCode.INVALID_ARGUMENT

    def test_bad_row_names_its_index(self, trained):
        gateway, token, inputs = trained
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                InferRequest(
                    auth_token=token, app="moons",
                    rows=(inputs[0], (1.0, 2.0, 3.0)),
                )
            )
        error = excinfo.value
        assert error.code is ApiErrorCode.INVALID_ARGUMENT
        assert error.details["row"] == 1
