"""Server-side push: long-poll semantics, wakeups, and the SDK fallback.

Covers the ``JobStatusRequest.wait`` contract end to end:

* a wait on a live handle drives the cluster and returns the terminal
  status in one request;
* a wait that expires is a **200 with the still-running status**, not
  an error;
* tenant retirement mid-wait wakes the waiter with terminal
  ``cancelled``;
* frontend shutdown mid-wait interrupts parked waiters instead of
  hanging the event loop;
* ``EaseMLClient.wait`` long-polls against new servers and falls back
  to exponential backoff (bounded request counts) against servers
  that ignore ``wait``.
"""

import dataclasses
import threading
import time

import pytest

from service_helpers import MOONS_PROGRAM, make_gateway, task_payload
from repro.service.api import (
    FeedRequest,
    JobStatusRequest,
    JobStatusResponse,
    RefineRequest,
    RegisterAppRequest,
    SubmitTrainingRequest,
)
from repro.service.client import EaseMLClient
from repro.service.http import serve_background


def onboard(gateway, name="alice", app="moons"):
    token = gateway.create_tenant(name)
    gateway.handle(
        RegisterAppRequest(auth_token=token, app=app, program=MOONS_PROGRAM)
    )
    inputs, outputs = task_payload("moons")
    gateway.handle(
        FeedRequest(auth_token=token, app=app, inputs=inputs, outputs=outputs)
    )
    return token


def submit(gateway, token, app="moons", steps=1):
    return gateway.handle(
        SubmitTrainingRequest(auth_token=token, app=app, steps=steps)
    ).handles


def stall_runtime(gateway):
    """Freeze the simulated cluster: polls can no longer advance it.

    The event queue stays non-empty (so the gateway's stall tripwire
    does not fire); a waiter can only ride someone else's wakeup or
    time out — exactly the regime real long-polls live in.
    """
    runtime = gateway.server._runtime_oracle.runtime
    runtime.run_until_next_completion = lambda: []
    assert runtime.queue, "stall_runtime needs queued events"


class TestGatewayWait:
    def test_wait_drives_to_terminal_in_one_request(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        status = gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id, wait=30)
        )
        assert status.state == "finished"
        assert 0.0 <= status.accuracy <= 1.0

    def test_wait_on_terminal_handle_returns_immediately(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id, wait=30)
        )
        start = time.monotonic()
        status = gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id, wait=30)
        )
        assert status.state == "finished"
        assert time.monotonic() - start < 1.0

    def test_wait_timeout_returns_still_running_status(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        start = time.monotonic()
        status = gateway.handle(
            JobStatusRequest(
                auth_token=token, job_id=handle.job_id, wait=0.3
            )
        )
        elapsed = time.monotonic() - start
        # Expiry is not an error: the current live status comes back.
        assert status.state == "pending"
        assert not status.done
        assert elapsed >= 0.25

    def test_retirement_mid_wait_wakes_with_cancelled(self, gateway):
        token = onboard(gateway)
        # The 4-GPU pool hosts four running jobs (those would *drain*
        # at retirement); the ones queued behind them get cancelled —
        # park on the last, which retirement will cancel.
        handle = submit(gateway, token, steps=6)[-1]
        stall_runtime(gateway)
        results = {}

        def park():
            results["status"] = gateway.handle(
                JobStatusRequest(
                    auth_token=token, job_id=handle.job_id, wait=20
                )
            )

        waiter = threading.Thread(target=park)
        waiter.start()
        time.sleep(0.15)  # let the waiter park on the done event
        start = time.monotonic()
        assert handle.job_id in gateway.retire_tenant("alice")
        waiter.join(timeout=5)
        assert not waiter.is_alive(), "retirement did not wake the waiter"
        # Woken well before the 20s deadline, with the terminal state.
        assert time.monotonic() - start < 2.0
        assert results["status"].state == "cancelled"
        assert results["status"].done

    def test_completion_by_another_poller_wakes_waiter(self, gateway):
        token = onboard(gateway)
        first, second = submit(gateway, token, steps=2)
        runtime = gateway.server._runtime_oracle.runtime
        real_advance = runtime.run_until_next_completion
        runtime.run_until_next_completion = lambda: []  # park the waiter
        results = {}

        def park():
            results["status"] = gateway.handle(
                JobStatusRequest(
                    auth_token=token, job_id=first.job_id, wait=20
                )
            )

        waiter = threading.Thread(target=park)
        waiter.start()
        time.sleep(0.15)
        # Someone else (here: the test) drives the cluster to the end;
        # the completion hook must set the handle's done event.
        runtime.run_until_next_completion = real_advance
        with gateway._lock:
            while gateway.server._runtime_oracle.runtime.queue:
                with gateway._persisted_op():
                    real_advance()
                gateway._op_boundary()
        waiter.join(timeout=5)
        assert not waiter.is_alive(), "completion did not wake the waiter"
        assert results["status"].state == "finished"

    def test_wait_is_capped_server_side(self, gateway):
        from repro.service.gateway import MAX_WAIT_SECONDS

        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        # An absurd wait must be clamped to MAX_WAIT_SECONDS, not
        # honoured; prove the clamp arithmetic (not the full 30s) by
        # checking the deadline the loop would compute.
        assert MAX_WAIT_SECONDS == 30.0
        request = JobStatusRequest(
            auth_token=token, job_id=handle.job_id, wait=10_000
        )
        assert min(float(request.wait), MAX_WAIT_SECONDS) == 30.0


class TestHTTPWait:
    @pytest.fixture(params=["threading", "asyncio"])
    def service(self, request):
        gateway = make_gateway()
        server, _ = serve_background(gateway, frontend=request.param)
        yield gateway, server
        server.shutdown()
        server.server_close()

    def test_wait_query_param_long_polls(self, service):
        gateway, server = service
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        client = EaseMLClient(server.url, token)
        status = client.job_status(handle.job_id, wait=30)
        assert status.state == "finished"

    def test_wait_timeout_is_200_not_error(self, service):
        gateway, server = service
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        client = EaseMLClient(server.url, token)
        # No ApiError raised: the expired wait is a plain 200 response
        # carrying the still-running status.
        status = client.job_status(handle.job_id, wait=0.3)
        assert status.state == "pending"
        assert not status.done

    def test_shutdown_mid_wait_closes_cleanly(self, service):
        gateway, server = service
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        client = EaseMLClient(server.url, token)
        outcome = {}

        def park():
            try:
                outcome["status"] = client.job_status(
                    handle.job_id, wait=25
                )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                outcome["error"] = exc

        waiter = threading.Thread(target=park, daemon=True)
        waiter.start()
        time.sleep(0.3)  # the request is parked server-side
        start = time.monotonic()
        server.shutdown()
        # Shutdown must not hang behind the parked waiter.
        assert time.monotonic() - start < 10.0
        waiter.join(timeout=10)
        assert not waiter.is_alive(), "client thread hung past shutdown"
        # The parked request either got its current status back or the
        # connection died with the server — both are clean outcomes.
        if "status" in outcome:
            assert outcome["status"].state == "pending"


class TestClientWaitFallback:
    def test_long_poll_server_needs_one_request_per_wait(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        polls = []
        original = gateway._handlers[JobStatusRequest]

        def counting(tenant, request):
            polls.append(request)
            return original(tenant, request)

        gateway._handlers[JobStatusRequest] = counting
        server, _ = serve_background(gateway)
        try:
            client = EaseMLClient(server.url, token)
            status = client.wait(handle.job_id, timeout=30)
        finally:
            server.shutdown()
            server.server_close()
        assert status.state == "finished"
        assert len(polls) == 1
        assert polls[0].wait > 0

    def test_backoff_against_server_without_long_poll(self, gateway):
        """A wait-ignoring server is polled with backoff, not hammered.

        Emulates a pre-long-poll build: the job-status handler strips
        ``wait`` and answers a canned running status immediately.
        After ~1.2s of that, the job "finishes".  A busy-polling
        client would burn hundreds of requests over the same window;
        the exponential backoff keeps it to a couple dozen.
        """
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        polls = []
        original = gateway._handlers[JobStatusRequest]
        finish_at = time.monotonic() + 1.2

        def legacy(tenant, request):
            request = dataclasses.replace(request, wait=0.0)
            polls.append(request)
            if time.monotonic() < finish_at:
                return JobStatusResponse(
                    job_id=request.job_id,
                    app="moons",
                    candidate="pending",
                    state="running",
                    submitted_at=0.0,
                )
            return original(tenant, request)

        gateway._handlers[JobStatusRequest] = legacy
        server, _ = serve_background(gateway)
        try:
            client = EaseMLClient(server.url, token)
            status = client.wait(handle.job_id, timeout=30)
        finally:
            server.shutdown()
            server.server_close()
        assert status.state == "finished"
        # Regression bound: the pre-backoff client spun thousands of
        # requests per second here.
        assert 2 <= len(polls) <= 30, len(polls)

    def test_legacy_poll_interval_still_honoured(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        saw_wait = []
        original = gateway._handlers[JobStatusRequest]

        def spying(tenant, request):
            saw_wait.append(request.wait)
            return original(tenant, request)

        gateway._handlers[JobStatusRequest] = spying
        server, _ = serve_background(gateway)
        try:
            client = EaseMLClient(server.url, token)
            status = client.wait(
                handle.job_id, timeout=30, poll_interval=0.0
            )
        finally:
            server.shutdown()
            server.server_close()
        assert status.state == "finished"
        # poll_interval pins the legacy behaviour: no wait= sent.
        assert all(w == 0.0 for w in saw_wait)


class TestHardening:
    """Regressions from review: hostile waits, framing, short timeouts."""

    def test_nan_wait_cannot_spin_forever(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        start = time.monotonic()
        status = gateway.handle(
            JobStatusRequest(
                auth_token=token, job_id=handle.job_id,
                wait=float("nan"),
            )
        )
        # NaN collapses to "no wait": immediate still-running answer.
        assert status.state == "pending"
        assert time.monotonic() - start < 1.0

    def test_negative_wait_answers_immediately(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        status = gateway.handle(
            JobStatusRequest(
                auth_token=token, job_id=handle.job_id, wait=-5.0
            )
        )
        assert status.state == "pending"

    def test_asyncio_rejects_malformed_content_length(self, gateway):
        import socket as socket_module

        server, _ = serve_background(gateway, frontend="asyncio")
        try:
            with socket_module.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/apps HTTP/1.1\r\n"
                    b"Content-Length: abc\r\n\r\n"
                )
                reply = sock.recv(65536).decode("latin-1")
            assert reply.startswith("HTTP/1.1 400")
            assert "invalid_argument" in reply
        finally:
            server.shutdown()
            server.server_close()

    def test_short_socket_timeout_client_still_waits(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        server, _ = serve_background(gateway)
        try:
            # The client's long-poll window must stay below its 2s
            # socket timeout, or the server holding the request would
            # masquerade as a dead connection.
            client = EaseMLClient(server.url, token, timeout=2.0)
            with pytest.raises(TimeoutError):
                client.wait(handle.job_id, timeout=2.5)
        finally:
            server.shutdown()
            server.server_close()

    def test_lockfree_refine_has_no_log_side_effect(self, gateway):
        token = onboard(gateway)
        before = len(gateway.server.log)
        view = gateway.handle(RefineRequest(auth_token=token, app="moons"))
        assert view.examples[0] == (0, True)
        # The read path is side-effect-free: no REFINE event appended
        # (an unlocked append racing a clock advance would trip the
        # event log's monotonicity check).
        assert len(gateway.server.log) == before


class TestSecondReviewHardening:
    """Round-two review regressions: locks, commits, codec, lifecycle."""

    def test_single_lock_mode_long_poll_does_not_block_others(self):
        gateway = make_gateway(shard_read_locks=False)
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)

        def park():
            gateway.handle(
                JobStatusRequest(
                    auth_token=token, job_id=handle.job_id, wait=10
                )
            )

        waiter = threading.Thread(target=park, daemon=True)
        waiter.start()
        time.sleep(0.15)  # the long-poll is parked
        from repro.service.api import ListAppsRequest

        start = time.monotonic()
        # Another request must NOT queue behind the parked wait for
        # 10s — the poll may never hold the outer lock while parked.
        response = gateway.handle(ListAppsRequest(auth_token=token))
        assert response.apps == ("moons",)
        assert time.monotonic() - start < 2.0
        gateway.retire_tenant("alice")  # wake the parked waiter
        waiter.join(timeout=5)

    def test_pure_reads_never_run_the_commit_barrier(self, tmp_path):
        from repro.ml.zoo import default_zoo
        from repro.persist import open_gateway
        from repro.service.api import ListAppsRequest

        gateway, _ = open_gateway(
            tmp_path / "state", sync="group",
            placement="partition", n_gpus=4, min_examples=10, seed=0,
            zoo=default_zoo().subset(["naive-bayes", "ridge", "tree-d4"]),
        )
        try:
            token = onboard(gateway)
            commits = []
            real_commit = gateway.store.commit
            gateway.store.commit = lambda: (
                commits.append(1), real_commit()
            )
            gateway.handle(ListAppsRequest(auth_token=token))
            # A snapshot read can run inline on the event loop; it must
            # never become the fsync convoy leader.
            assert commits == []
            handle = submit(gateway, token)[0]
            assert commits, "mutations must run the ack barrier"
            n_write_commits = len(commits)
            # A live job poll journals job_completed records -> commits.
            gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle.job_id,
                                 wait=30)
            )
            assert len(commits) > n_write_commits
        finally:
            gateway.store.close()

    def test_asyncio_caps_header_count(self, gateway):
        import socket as socket_module

        server, _ = serve_background(gateway, frontend="asyncio")
        try:
            with socket_module.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                try:
                    sock.sendall(b"GET /v1/info HTTP/1.1\r\n")
                    for i in range(150):
                        sock.sendall(b"X-Flood-%d: x\r\n" % i)
                    sock.sendall(b"\r\n")
                except (BrokenPipeError, ConnectionResetError):
                    pass  # the server may cut us off mid-flood
                try:
                    reply = sock.recv(65536).decode("latin-1")
                except ConnectionResetError:
                    reply = ""
            # Either a clean 400 or a hard close — never an accepted
            # 150-header request.
            if reply:
                assert reply.startswith("HTTP/1.1 400")
                assert "headers" in reply
        finally:
            server.shutdown()
            server.server_close()

    def test_shutdown_before_serve_forever_still_exits(self, gateway):
        from repro.service.http import serve

        server = serve(gateway, frontend="asyncio")
        server.shutdown()  # before any loop exists
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive(), "pre-start shutdown was lost"
        server.server_close()

    def test_client_clamps_wait_below_socket_timeout(self, gateway):
        token = onboard(gateway)
        handle = submit(gateway, token)[0]
        stall_runtime(gateway)
        server, _ = serve_background(gateway)
        try:
            client = EaseMLClient(server.url, token, timeout=2.0)
            start = time.monotonic()
            # wait=30 with a 2s socket timeout: the clamp keeps the
            # server's hold below the timeout, so this is a clean
            # still-running 200, not a socket error.
            status = client.job_status(handle.job_id, wait=30)
            assert status.state == "pending"
            assert time.monotonic() - start < 2.0
        finally:
            server.shutdown()
            server.server_close()


class TestCodecFraming:
    """Final review round: body caps and keep-alive body draining."""

    def test_asyncio_rejects_oversized_content_length(self, gateway):
        import socket as socket_module

        server, _ = serve_background(gateway, frontend="asyncio")
        try:
            with socket_module.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/apps HTTP/1.1\r\n"
                    b"Content-Length: 8000000000\r\n\r\n"
                )
                reply = sock.recv(65536).decode("latin-1")
            # Rejected on the declared length, before buffering a byte.
            assert reply.startswith("HTTP/1.1 400")
            assert "Content-Length" in reply
        finally:
            server.shutdown()
            server.server_close()

    def test_threading_delete_with_body_keeps_connection_usable(
        self, gateway
    ):
        import json as json_module
        from http.client import HTTPConnection

        token = onboard(gateway)
        server, _ = serve_background(gateway)
        try:
            connection = HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            # A DELETE carrying a body must be drained, or the next
            # keep-alive request parses the leftover bytes as HTTP.
            connection.request(
                "DELETE",
                "/v1/apps/moons",
                body=json_module.dumps({"reason": "x"}).encode(),
                headers={"Authorization": f"Bearer {token}",
                         "Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json_module.loads(response.read().decode())
            assert response.status == 200
            assert body["type"] == "CloseAppResponse"
            connection.request(
                "GET",
                "/v1/info",
                headers={"Authorization": f"Bearer {token}"},
            )
            response = connection.getresponse()
            body = json_module.loads(response.read().decode())
            assert response.status == 200
            assert body["type"] == "ServerInfoResponse"
            connection.close()
        finally:
            server.shutdown()
            server.server_close()
