"""Shared helpers for the service-layer tests."""

from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.service.gateway import ServiceGateway

SMALL_ZOO = ["naive-bayes", "ridge", "tree-d4"]

MOONS_PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
BLOBS_PROGRAM = "{input: {[Tensor[2]], []}, output: {[Tensor[3]], []}}"


def make_gateway(**kwargs):
    defaults = dict(
        placement="partition",
        n_gpus=4,
        min_examples=10,
        seed=0,
        zoo=default_zoo().subset(SMALL_ZOO),
    )
    defaults.update(kwargs)
    return ServiceGateway(**defaults)


def task_payload(kind, n=60, seed=0):
    """(inputs, outputs) wire payloads for one synthetic task."""
    X, y = make_task(TaskSpec(kind, n, 0.3, seed=seed))
    return (
        tuple(tuple(float(v) for v in row) for row in X),
        tuple(int(v) for v in y),
    )
