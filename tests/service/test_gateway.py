"""Gateway semantics: auth, tenancy, quotas, async handles, replay."""

import pytest

from service_helpers import (
    BLOBS_PROGRAM,
    MOONS_PROGRAM,
    make_gateway,
    task_payload,
)
from repro.runtime.trace import diff_event_logs
from repro.service.api import (
    ApiError,
    ApiErrorCode,
    AppStatusRequest,
    EventsRequest,
    FeedRequest,
    InferRequest,
    JobStatusRequest,
    ListAppsRequest,
    ListJobsRequest,
    RefineRequest,
    RegisterAppRequest,
    ServerInfoRequest,
    SetExampleEnabledRequest,
    SubmitTrainingRequest,
)
from repro.service.gateway import ServiceGateway, TenantQuota


def register_and_feed(gateway, token, app, program, kind, seed=0):
    gateway.handle(
        RegisterAppRequest(auth_token=token, app=app, program=program)
    )
    inputs, outputs = task_payload(kind, seed=seed)
    gateway.handle(
        FeedRequest(auth_token=token, app=app, inputs=inputs,
                    outputs=outputs)
    )
    return inputs


def code_of(excinfo):
    return excinfo.value.code


class TestAuthAndVersioning:
    def test_unknown_token_unauthorized(self, gateway):
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(ListAppsRequest(auth_token="nope"))
        assert code_of(excinfo) is ApiErrorCode.UNAUTHORIZED

    def test_wrong_api_version_rejected(self, gateway):
        token = gateway.create_tenant("alice")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                ListAppsRequest(auth_token=token, api_version="v0")
            )
        assert code_of(excinfo) is ApiErrorCode.UNSUPPORTED_VERSION

    def test_duplicate_tenant_rejected(self, gateway):
        gateway.create_tenant("alice")
        with pytest.raises(ValueError, match="already"):
            gateway.create_tenant("alice")

    def test_non_request_rejected(self, gateway):
        with pytest.raises(ApiError) as excinfo:
            gateway.handle("register me")
        assert code_of(excinfo) is ApiErrorCode.INVALID_ARGUMENT

    def test_synchronous_backend_rejected(self):
        from repro.platform.server import EaseMLServer

        with pytest.raises(ValueError, match="runtime_placement"):
            ServiceGateway(EaseMLServer())


class TestAppLifecycle:
    def test_register_reports_candidates(self, gateway):
        token = gateway.create_tenant("alice")
        response = gateway.handle(
            RegisterAppRequest(
                auth_token=token, app="moons", program=MOONS_PROGRAM
            )
        )
        assert response.app == "moons"
        assert response.n_candidates == 3
        assert response.workload_kind == "general classification"

    def test_duplicate_app_conflict(self, gateway):
        token = gateway.create_tenant("alice")
        request = RegisterAppRequest(
            auth_token=token, app="moons", program=MOONS_PROGRAM
        )
        gateway.handle(request)
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(request)
        assert code_of(excinfo) is ApiErrorCode.CONFLICT

    def test_app_name_collision_across_tenants_is_conflict(self, gateway):
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        gateway.handle(
            RegisterAppRequest(
                auth_token=token_a, app="moons", program=MOONS_PROGRAM
            )
        )
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                RegisterAppRequest(
                    auth_token=token_b, app="moons", program=MOONS_PROGRAM
                )
            )
        assert code_of(excinfo) is ApiErrorCode.CONFLICT

    def test_bad_program_invalid(self, gateway):
        token = gateway.create_tenant("alice")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                RegisterAppRequest(
                    auth_token=token, app="x", program="{wat}"
                )
            )
        assert code_of(excinfo) is ApiErrorCode.INVALID_PROGRAM

    def test_untrainable_workload_unsupported(self, gateway):
        token = gateway.create_tenant("alice")
        autoencoder = (
            "{input: {[Tensor[4,4]], []}, output: {[Tensor[2,2]], []}}"
        )
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                RegisterAppRequest(
                    auth_token=token, app="ae", program=autoencoder
                )
            )
        assert code_of(excinfo) is ApiErrorCode.UNSUPPORTED

    def test_cross_tenant_access_is_not_found(self, gateway):
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        for request in (
            AppStatusRequest(auth_token=token_b, app="moons"),
            RefineRequest(auth_token=token_b, app="moons"),
            SubmitTrainingRequest(auth_token=token_b, app="moons"),
        ):
            with pytest.raises(ApiError) as excinfo:
                gateway.handle(request)
            assert code_of(excinfo) is ApiErrorCode.NOT_FOUND

    def test_unknown_example_toggle_not_found(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                SetExampleEnabledRequest(
                    auth_token=token, app="moons", example_id=9999,
                    enabled=False,
                )
            )
        assert code_of(excinfo) is ApiErrorCode.NOT_FOUND
        assert "refine" in excinfo.value.message

    def test_refine_and_toggle(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        view = gateway.handle(
            RefineRequest(auth_token=token, app="moons")
        )
        assert view.examples[0] == (0, True)
        gateway.handle(
            SetExampleEnabledRequest(
                auth_token=token, app="moons", example_id=0, enabled=False
            )
        )
        view = gateway.handle(RefineRequest(auth_token=token, app="moons"))
        assert view.examples[0] == (0, False)


class TestQuotas:
    def test_max_apps(self, gateway, tight_quota):
        token = gateway.create_tenant("alice", tight_quota)
        gateway.handle(
            RegisterAppRequest(
                auth_token=token, app="one", program=MOONS_PROGRAM
            )
        )
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                RegisterAppRequest(
                    auth_token=token, app="two", program=MOONS_PROGRAM
                )
            )
        assert code_of(excinfo) is ApiErrorCode.QUOTA_EXCEEDED
        assert excinfo.value.details["limit"] == 1

    def test_store_bytes(self, gateway, tight_quota):
        # 2 KiB quota; each moons example is (2+2)*8 = 32 bytes.
        token = gateway.create_tenant("alice", tight_quota)
        gateway.handle(
            RegisterAppRequest(
                auth_token=token, app="moons", program=MOONS_PROGRAM
            )
        )
        inputs, outputs = task_payload("moons", n=64)
        gateway.handle(
            FeedRequest(auth_token=token, app="moons",
                        inputs=inputs, outputs=outputs)
        )
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                FeedRequest(auth_token=token, app="moons",
                            inputs=inputs, outputs=outputs)
            )
        assert code_of(excinfo) is ApiErrorCode.QUOTA_EXCEEDED
        assert excinfo.value.details["limit"] == 2048

    def test_pending_jobs(self, gateway, tight_quota):
        token = gateway.create_tenant("alice", tight_quota)
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        )
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                SubmitTrainingRequest(auth_token=token, app="moons")
            )
        assert code_of(excinfo) is ApiErrorCode.QUOTA_EXCEEDED
        assert "poll" in excinfo.value.message

    def test_quota_frees_after_completion(self, gateway, tight_quota):
        token = gateway.create_tenant("alice", tight_quota)
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        response = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        )
        for handle in response.handles:
            status = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle.job_id)
            )
            while not status.done:
                status = gateway.handle(
                    JobStatusRequest(auth_token=token, job_id=handle.job_id)
                )
        # In-flight count is back to zero: submitting works again.
        again = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        )
        assert len(again.handles) == 2

    def test_invalid_quota_rejected(self):
        with pytest.raises(ValueError, match="max_apps"):
            TenantQuota(max_apps=0)


class TestAsyncTraining:
    def test_submit_before_feeding_fails_precondition(self, gateway):
        token = gateway.create_tenant("alice")
        gateway.handle(
            RegisterAppRequest(
                auth_token=token, app="moons", program=MOONS_PROGRAM
            )
        )
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                SubmitTrainingRequest(auth_token=token, app="moons")
            )
        assert code_of(excinfo) is ApiErrorCode.FAILED_PRECONDITION

    def test_zero_steps_invalid(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                SubmitTrainingRequest(
                    auth_token=token, app="moons", steps=0
                )
            )
        assert code_of(excinfo) is ApiErrorCode.INVALID_ARGUMENT

    def test_handles_returned_pending(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        response = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=3)
        )
        assert len(response.handles) == 3
        assert all(h.state == "pending" for h in response.handles)
        assert len({h.job_id for h in response.handles}) == 3

    def test_unknown_job_not_found(self, gateway):
        token = gateway.create_tenant("alice")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                JobStatusRequest(auth_token=token, job_id="job-99999")
            )
        assert code_of(excinfo) is ApiErrorCode.NOT_FOUND

    def test_foreign_job_not_found(self, gateway):
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        register_and_feed(
            gateway, token_b, "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        handle = gateway.handle(
            SubmitTrainingRequest(auth_token=token_a, app="moons")
        ).handles[0]
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                JobStatusRequest(auth_token=token_b, job_id=handle.job_id)
            )
        assert code_of(excinfo) is ApiErrorCode.NOT_FOUND

    def test_two_tenants_complete_out_of_order(self, gateway):
        """Jobs from two tenants interleave on the shared cluster."""
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        inputs_a = register_and_feed(
            gateway, token_a, "moons", MOONS_PROGRAM, "moons"
        )
        register_and_feed(
            gateway, token_b, "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        handles_a = gateway.handle(
            SubmitTrainingRequest(auth_token=token_a, app="moons", steps=3)
        ).handles
        handles_b = gateway.handle(
            SubmitTrainingRequest(auth_token=token_b, app="blobs", steps=3)
        ).handles

        # Poll everything to completion, round-robin across tenants.
        pending = [(token_a, h) for h in handles_a] + [
            (token_b, h) for h in handles_b
        ]
        for _ in range(200):
            still = []
            for token, handle in pending:
                status = gateway.handle(
                    JobStatusRequest(auth_token=token, job_id=handle.job_id)
                )
                if not status.done:
                    still.append((token, handle))
            pending = still
            if not pending:
                break
        assert not pending

        # The runtime genuinely overlapped the two tenants' jobs.
        jobs = gateway.server._runtime_oracle.finished_jobs()
        assert len(jobs) == 6
        spans = sorted((j.start_time, j.end_time, j.user) for j in jobs)
        users_by_start = [u for (_, _, u) in spans]
        assert set(users_by_start) == {0, 1}
        assert any(
            later_start < earlier_end
            for (_, earlier_end, _), (later_start, _, _) in zip(
                spans, spans[1:]
            )
        )

        # Completions were absorbed into the scheduler in completion
        # order, exactly once each.
        scheduler = gateway.server.scheduler
        assert scheduler.step_count == 6
        assert len(scheduler.records) == 6

        # And inference now works for both tenants.
        answer = gateway.handle(
            InferRequest(auth_token=token_a, app="moons", x=inputs_a[0])
        )
        assert answer.prediction in (0, 1)

    def test_list_jobs_scoped_to_tenant_and_app(self, gateway):
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        register_and_feed(
            gateway, token_b, "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        gateway.handle(
            SubmitTrainingRequest(auth_token=token_a, app="moons", steps=2)
        )
        gateway.handle(
            SubmitTrainingRequest(auth_token=token_b, app="blobs", steps=1)
        )
        mine = gateway.handle(ListJobsRequest(auth_token=token_a))
        assert len(mine.jobs) == 2
        assert all(h.app == "moons" for h in mine.jobs)
        theirs = gateway.handle(ListJobsRequest(auth_token=token_b))
        assert len(theirs.jobs) == 1

    def test_app_state_updates_only_at_completion(self, gateway):
        """Pending jobs are invisible in app status and infer."""
        token = gateway.create_tenant("alice")
        inputs = register_and_feed(
            gateway, token, "moons", MOONS_PROGRAM, "moons"
        )
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        ).handles
        # Nothing polled yet: the jobs are in flight, so the app has
        # no training runs and no servable model.
        status = gateway.handle(
            AppStatusRequest(auth_token=token, app="moons")
        )
        assert status.training_runs == 0
        assert status.best_candidate is None
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                InferRequest(auth_token=token, app="moons", x=inputs[0])
            )
        assert code_of(excinfo) is ApiErrorCode.FAILED_PRECONDITION
        # Poll to completion: the outcomes land.
        for handle in handles:
            status = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle.job_id)
            )
            while not status.done:
                status = gateway.handle(
                    JobStatusRequest(auth_token=token, job_id=handle.job_id)
                )
        status = gateway.handle(
            AppStatusRequest(auth_token=token, app="moons")
        )
        assert status.training_runs == 2
        assert status.best_candidate is not None

    def test_unfed_app_never_blocks_another_tenant(self, gateway):
        # Dynamic membership: bob's unfed app is simply not admitted;
        # alice's submit proceeds (the old fixed-tenant-set gateway
        # returned FAILED_PRECONDITION here).
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        gateway.handle(
            RegisterAppRequest(
                auth_token=token_b, app="secret-project",
                program=BLOBS_PROGRAM,
            )
        )  # bob never feeds it
        response = gateway.handle(
            SubmitTrainingRequest(auth_token=token_a, app="moons")
        )
        assert len(response.handles) == 1
        # Bob's own submit is still rejected, naming his app.
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                SubmitTrainingRequest(
                    auth_token=token_b, app="secret-project"
                )
            )
        assert code_of(excinfo) is ApiErrorCode.FAILED_PRECONDITION
        assert "secret-project" in excinfo.value.message

    def test_job_status_reports_accuracy_and_candidate(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        handle = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons")
        ).handles[0]
        status = gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id)
        )
        while not status.done:
            status = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle.job_id)
            )
        assert status.state == "finished"
        assert 0.0 <= status.accuracy <= 1.0
        assert status.candidate == handle.candidate
        assert status.improved is True
        assert status.finished_at >= status.started_at >= 0.0


class TestPreStartedServer:
    def test_gateway_absorbs_completions_of_prestarted_server(self):
        """Wrapping an already-running server still wires absorption."""
        from repro.ml.zoo import default_zoo
        from repro.platform.dsl import program_from_shapes
        from repro.platform.server import EaseMLServer

        server = EaseMLServer(
            default_zoo().subset(["naive-bayes", "ridge"]),
            runtime_placement="partition",
            n_gpus=2,
            seed=0,
        )
        app = server.register_app(program_from_shapes([2], [2]), "moons")
        inputs, outputs = task_payload("moons")
        app.feed(
            [list(x) for x in inputs], [int(v) for v in outputs]
        )
        server.run(max_steps=1)  # scheduler exists before the gateway
        gateway = ServiceGateway(server)
        token = gateway.create_tenant("alice", apps=["moons"])
        steps_before = server.scheduler.step_count

        handle = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons")
        ).handles[0]
        status = gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id)
        )
        while not status.done:
            status = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle.job_id)
            )
        # The completion was absorbed (observation + StepRecord) and
        # the handle reports its outcome.
        assert status.accuracy is not None
        assert server.scheduler.step_count == steps_before + 1

    def test_adopted_apps_count_store_bytes(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        with pytest.raises(ValueError, match="belongs to"):
            gateway.create_tenant("thief", apps=["moons"])


class TestIntrospection:
    def test_server_info(self, gateway):
        token = gateway.create_tenant("alice")
        info = gateway.handle(ServerInfoRequest(auth_token=token))
        assert info.placement == "partition"
        assert info.n_gpus == 4
        assert info.training_started is False

    def test_events_filtered_by_kind(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        events = gateway.handle(
            EventsRequest(auth_token=token, kinds=("feed",))
        )
        assert events.events
        assert all(e["kind"] == "feed" for e in events.events)

    def test_events_do_not_leak_across_tenants(self, gateway):
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        register_and_feed(
            gateway, token_b, "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        handle = gateway.handle(
            SubmitTrainingRequest(auth_token=token_a, app="moons")
        ).handles[0]
        status = gateway.handle(
            JobStatusRequest(auth_token=token_a, job_id=handle.job_id)
        )
        while not status.done:
            status = gateway.handle(
                JobStatusRequest(auth_token=token_a, job_id=handle.job_id)
            )
        # Bob sees none of alice's feed / job / model events.
        theirs = gateway.handle(EventsRequest(auth_token=token_b))
        assert all(
            e["payload"].get("app") != "moons" for e in theirs.events
        )
        assert not [
            e for e in theirs.events
            if e["kind"] in ("job_submitted", "job_finished",
                             "model_returned")
        ]
        # Alice still sees her own story.
        mine = gateway.handle(
            EventsRequest(auth_token=token_a, kinds=("job_finished",))
        )
        assert len(mine.events) == 1

    def test_events_unknown_kind_invalid(self, gateway):
        token = gateway.create_tenant("alice")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                EventsRequest(auth_token=token, kinds=("explosions",))
            )
        assert code_of(excinfo) is ApiErrorCode.INVALID_ARGUMENT

    def test_infer_without_model_fails_precondition(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                InferRequest(auth_token=token, app="moons", x=(0.0, 0.0))
            )
        assert code_of(excinfo) is ApiErrorCode.FAILED_PRECONDITION

    def test_infer_wrong_shape_invalid(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                InferRequest(auth_token=token, app="moons", x=(1.0,))
            )
        assert code_of(excinfo) is ApiErrorCode.INVALID_ARGUMENT


class TestDeterministicReplay:
    def _session(self):
        """One full scripted service session; returns the event log."""
        gateway = make_gateway()
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        register_and_feed(
            gateway, token_b, "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        handles = (
            gateway.handle(
                SubmitTrainingRequest(
                    auth_token=token_a, app="moons", steps=2
                )
            ).handles
            + gateway.handle(
                SubmitTrainingRequest(
                    auth_token=token_b, app="blobs", steps=2
                )
            ).handles
        )
        tokens = {"moons": token_a, "blobs": token_b}
        for handle in handles:
            token = tokens[handle.app]
            status = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle.job_id)
            )
            while not status.done:
                status = gateway.handle(
                    JobStatusRequest(auth_token=token, job_id=handle.job_id)
                )
        return gateway.server.log

    def test_identical_sessions_produce_identical_event_logs(self):
        divergence = diff_event_logs(self._session(), self._session())
        assert divergence is None, divergence.describe()


def drain(gateway, token, handles):
    """Poll every handle to a terminal state; returns final statuses."""
    statuses = []
    for handle in handles:
        status = gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id)
        )
        while not status.done:
            status = gateway.handle(
                JobStatusRequest(auth_token=token, job_id=handle.job_id)
            )
        statuses.append(status)
    return statuses


class TestDynamicTenants:
    """ISSUE 3: register-after-submit joins the live run; close leaves."""

    def test_register_after_submit_is_admitted(self, gateway):
        token_a = gateway.create_tenant("alice")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        first = gateway.handle(
            SubmitTrainingRequest(auth_token=token_a, app="moons", steps=2)
        )
        drain(gateway, token_a, first.handles)
        # The cluster run is live; a new app registers, feeds, trains.
        token_b = gateway.create_tenant("bob")
        register_and_feed(
            gateway, token_b, "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        late = gateway.handle(
            SubmitTrainingRequest(auth_token=token_b, app="blobs", steps=2)
        )
        statuses = drain(gateway, token_b, late.handles)
        assert all(s.state == "finished" for s in statuses)
        # Admission surfaced as USER_ARRIVED in bob's event slice.
        events = gateway.handle(
            EventsRequest(auth_token=token_b, kinds=("user_arrived",))
        )
        assert len(events.events) == 1

    def test_close_app_retires_tenant(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        ).handles
        from repro.service.api import CloseAppRequest

        response = gateway.handle(
            CloseAppRequest(auth_token=token, app="moons")
        )
        assert response.was_admitted
        # In-flight work resolves: drained or cancelled, never stuck.
        statuses = drain(gateway, token, handles)
        assert all(s.state in ("finished", "failed") for s in statuses)
        cancelled = {s.job_id for s in statuses if s.state == "failed"}
        assert set(response.cancelled_jobs) == cancelled
        departed = gateway.handle(
            EventsRequest(auth_token=token, kinds=("user_departed",))
        )
        assert len(departed.events) == 1

    def test_submit_after_close_fails_precondition(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        from repro.service.api import CloseAppRequest

        gateway.handle(CloseAppRequest(auth_token=token, app="moons"))
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(
                SubmitTrainingRequest(auth_token=token, app="moons")
            )
        assert code_of(excinfo) is ApiErrorCode.FAILED_PRECONDITION
        assert "closed" in excinfo.value.message

    def test_double_close_conflicts(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        from repro.service.api import CloseAppRequest

        gateway.handle(CloseAppRequest(auth_token=token, app="moons"))
        with pytest.raises(ApiError) as excinfo:
            gateway.handle(CloseAppRequest(auth_token=token, app="moons"))
        assert code_of(excinfo) is ApiErrorCode.CONFLICT

    def test_close_before_any_training(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        from repro.service.api import CloseAppRequest

        response = gateway.handle(
            CloseAppRequest(auth_token=token, app="moons")
        )
        assert not response.was_admitted
        assert response.cancelled_jobs == ()

    def test_closed_app_still_serves_infer(self, gateway):
        token = gateway.create_tenant("alice")
        inputs = register_and_feed(
            gateway, token, "moons", MOONS_PROGRAM, "moons"
        )
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=2)
        ).handles
        drain(gateway, token, handles)
        from repro.service.api import CloseAppRequest

        gateway.handle(CloseAppRequest(auth_token=token, app="moons"))
        response = gateway.handle(
            InferRequest(auth_token=token, app="moons", x=inputs[0])
        )
        assert response.prediction in (0, 1)

    def test_cross_tenant_close_not_found(self, gateway):
        token_a = gateway.create_tenant("alice")
        token_b = gateway.create_tenant("bob")
        register_and_feed(gateway, token_a, "moons", MOONS_PROGRAM, "moons")
        from repro.service.api import CloseAppRequest

        with pytest.raises(ApiError) as excinfo:
            gateway.handle(CloseAppRequest(auth_token=token_b, app="moons"))
        assert code_of(excinfo) is ApiErrorCode.NOT_FOUND


class TestModelVersion:
    def test_infer_names_the_training_run(self, gateway):
        token = gateway.create_tenant("alice")
        inputs = register_and_feed(
            gateway, token, "moons", MOONS_PROGRAM, "moons"
        )
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=3)
        ).handles
        drain(gateway, token, handles)
        response = gateway.handle(
            InferRequest(auth_token=token, app="moons", x=inputs[0])
        )
        assert response.model_version in {h.job_id for h in handles}
        # The named run is the one whose candidate is being served.
        status = gateway.handle(
            JobStatusRequest(
                auth_token=token, job_id=response.model_version
            )
        )
        assert status.candidate == response.model


class TestLockSharding:
    def test_single_lock_mode_still_works(self):
        gateway = make_gateway(shard_read_locks=False)
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        handles = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=1)
        ).handles
        statuses = drain(gateway, token, handles)
        assert all(s.state == "finished" for s in statuses)

    def test_sharded_reads_by_default(self, gateway):
        assert gateway.shard_read_locks
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        response = gateway.handle(ListAppsRequest(auth_token=token))
        assert response.apps == ("moons",)


class TestReadWriteSplit:
    """The frontend dispatch surface: classification, queues, views."""

    def test_read_classification(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        assert gateway.is_read(ListAppsRequest(auth_token=token))
        assert gateway.is_read(AppStatusRequest(auth_token=token,
                                                app="moons"))
        assert gateway.is_read(ServerInfoRequest(auth_token=token))
        assert not gateway.is_read(
            FeedRequest(auth_token=token, app="moons")
        )
        assert not gateway.is_read(
            SubmitTrainingRequest(auth_token=token, app="moons")
        )

    def test_job_status_classification_tracks_liveness(self, gateway):
        token = gateway.create_tenant("alice")
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        handle = gateway.handle(
            SubmitTrainingRequest(auth_token=token, app="moons", steps=1)
        ).handles[0]
        live_poll = JobStatusRequest(auth_token=token, job_id=handle.job_id)
        # Live handle: a poll advances the cluster -> write path.
        assert not gateway.is_read(live_poll)
        # A long-poll is never a read, even on a terminal handle.
        drain(gateway, token, [handle])
        assert gateway.is_read(live_poll)
        assert not gateway.is_read(
            JobStatusRequest(auth_token=token, job_id=handle.job_id,
                             wait=5.0)
        )
        # Unknown handles classify as reads: the handler answers the
        # NOT_FOUND without ever taking the lock.
        assert gateway.is_read(
            JobStatusRequest(auth_token=token, job_id="job-99999")
        )

    def test_single_lock_mode_classifies_everything_as_write(self):
        gateway = make_gateway(shard_read_locks=False)
        token = gateway.create_tenant("alice")
        assert not gateway.is_read(ListAppsRequest(auth_token=token))

    def test_submit_command_runs_tenant_fifo(self, gateway):
        """Commands with one token apply strictly in submission order."""
        token = gateway.create_tenant("alice")
        gateway.handle(
            RegisterAppRequest(auth_token=token, app="moons",
                               program=MOONS_PROGRAM)
        )
        inputs, outputs = task_payload("moons")
        futures = [
            gateway.submit_command(
                FeedRequest(
                    auth_token=token,
                    inputs=inputs[i:i + 5],
                    outputs=outputs[i:i + 5],
                    app="moons",
                )
            )
            for i in range(0, 30, 5)
        ]
        responses = [f.result(timeout=30) for f in futures]
        # FIFO: each batch's example ids continue where the last ended.
        ids = [i for r in responses for i in r.example_ids]
        assert ids == list(range(30))

    def test_submit_command_propagates_api_errors(self, gateway):
        token = gateway.create_tenant("alice")
        future = gateway.submit_command(
            FeedRequest(auth_token=token, app="ghost", inputs=((1.0,),),
                        outputs=(0,))
        )
        with pytest.raises(ApiError) as excinfo:
            future.result(timeout=30)
        assert excinfo.value.code is ApiErrorCode.NOT_FOUND

    def test_tenant_view_is_immutable_snapshot(self, gateway):
        token = gateway.create_tenant("alice")
        tenant = gateway._tenants[token]
        before = tenant.view
        assert before.apps == ()
        assert not before.retired
        register_and_feed(gateway, token, "moons", MOONS_PROGRAM, "moons")
        after = tenant.view
        assert after is not before  # republished, not mutated
        assert before.apps == ()  # the old snapshot never changes
        assert after.apps == ("moons",)
        gateway.retire_tenant("alice")
        assert tenant.view.retired
        assert not after.retired
