"""The HTTP frontend and client SDK: round trips, errors, concurrency."""

import json
import threading
from http.client import HTTPConnection

import pytest

from service_helpers import (
    BLOBS_PROGRAM,
    MOONS_PROGRAM,
    make_gateway,
    task_payload,
)
from repro.service.api import ApiError, ApiErrorCode
from repro.service.client import EaseMLClient
from repro.service.http import serve_background


@pytest.fixture(params=["threading", "asyncio"])
def service(request):
    """A live HTTP service (both frontends); yields (gateway, server)."""
    gateway = make_gateway()
    server, _ = serve_background(gateway, frontend=request.param)
    yield gateway, server
    server.shutdown()
    server.server_close()


def make_client(server, token):
    return EaseMLClient(server.url, token, timeout=30.0)


def raw_request(server, method, path, body=None, token=None):
    """A bare HTTP exchange, bypassing the SDK."""
    connection = HTTPConnection("127.0.0.1", server.port, timeout=30.0)
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    payload = None
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    raw = response.read()
    connection.close()
    return response.status, json.loads(raw.decode("utf-8"))


def onboard(gateway, server, tenant, app, program, kind, seed=0):
    token = gateway.create_tenant(tenant)
    client = make_client(server, token)
    client.register_app(app, program)
    inputs, outputs = task_payload(kind, seed=seed)
    client.feed(app, inputs, outputs)
    return client, inputs


class TestRoundTrips:
    def test_full_verb_surface(self, service):
        gateway, server = service
        client, inputs = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        info = client.info()
        assert info.placement == "partition"
        assert client.list_apps().apps == ("moons",)
        status = client.app_status("moons")
        assert status.n_examples == 60
        assert status.best_candidate is None
        view = client.refine("moons")
        assert view.examples[0] == (0, True)
        toggled = client.set_example_enabled("moons", 0, False)
        assert toggled.enabled is False
        assert client.refine("moons").examples[0] == (0, False)

        handles = client.submit_training("moons", steps=2)
        assert len(handles) == 2
        statuses = client.wait_all(handles)
        assert all(s.state == "finished" for s in statuses)
        assert all(0.0 <= s.accuracy <= 1.0 for s in statuses)

        answer = client.infer("moons", inputs[0])
        assert answer.prediction in (0, 1)
        assert answer.model is not None

        listed = client.list_jobs("moons")
        assert len(listed.jobs) == 2
        events = client.events(kinds=["job_finished"])
        assert len(events.events) == 2

    def test_events_since_filter(self, service):
        gateway, server = service
        client, _ = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        client.wait_all(client.submit_training("moons", steps=1))
        horizon = client.info().clock
        assert client.events(since=horizon + 1.0).events == ()


class TestErrorModel:
    def test_not_found_has_status_and_code(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        status, body = raw_request(
            server, "GET", "/v1/apps/ghost", token=token
        )
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert "ghost" in body["error"]["message"]
        # No traceback fragments cross the wire.
        assert "Traceback" not in json.dumps(body)

    def test_unauthorized_is_401(self, service):
        _, server = service
        status, body = raw_request(server, "GET", "/v1/apps", token="bad")
        assert status == 401
        assert body["error"]["code"] == "unauthorized"

    def test_unknown_route_is_404(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        status, body = raw_request(
            server, "GET", "/v1/nonsense", token=token
        )
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unversioned_path_is_404(self, service):
        _, server = service
        status, body = raw_request(server, "GET", "/apps", token="x")
        assert status == 404
        assert "/v1" in body["error"]["message"]

    def test_unknown_path_post_keeps_connection_usable(self, service):
        """The unread body of a 404'd POST must not desync keep-alive."""
        gateway, server = service
        token = gateway.create_tenant("alice")
        connection = HTTPConnection("127.0.0.1", server.port, timeout=30.0)
        try:
            payload = json.dumps({"some": "body"}).encode("utf-8")
            connection.request(
                "POST",
                "/bogus",
                body=payload,
                headers={"Authorization": f"Bearer {token}",
                         "Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 404
            assert body["error"]["code"] == "not_found"
            # Same connection, next request: still a clean JSON API.
            connection.request(
                "GET",
                "/v1/info",
                headers={"Authorization": f"Bearer {token}"},
            )
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert body["type"] == "ServerInfoResponse"
        finally:
            connection.close()

    def test_malformed_json_is_400(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        connection = HTTPConnection("127.0.0.1", server.port, timeout=30.0)
        connection.request(
            "POST",
            "/v1/apps",
            body=b"{not json",
            headers={"Authorization": f"Bearer {token}"},
        )
        response = connection.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        connection.close()
        assert response.status == 400
        assert body["error"]["code"] == "invalid_argument"

    def test_missing_body_field_is_400(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        status, body = raw_request(
            server, "POST", "/v1/apps", body={"app": "x"}, token=token
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_argument"

    def test_enabled_must_be_a_json_boolean(self, service):
        gateway, server = service
        client, _ = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        status, body = raw_request(
            server,
            "POST",
            "/v1/apps/moons/examples/0",
            body={"enabled": "false"},  # bool("false") is True — reject
            token=client.token,
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_argument"
        assert client.refine("moons").examples[0] == (0, True)

    def test_wrong_api_version_rejected(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        status, body = raw_request(
            server,
            "POST",
            "/v1/apps",
            body={"app": "x", "program": MOONS_PROGRAM,
                  "api_version": "v9"},
            token=token,
        )
        assert status == 400
        assert body["error"]["code"] == "unsupported_version"

    def test_client_reconstructs_typed_error(self, service):
        gateway, server = service
        client = make_client(server, gateway.create_tenant("alice"))
        with pytest.raises(ApiError) as excinfo:
            client.app_status("ghost")
        assert excinfo.value.code is ApiErrorCode.NOT_FOUND
        assert excinfo.value.details["app"] == "ghost"

    def test_quota_error_maps_to_429(self, service):
        gateway, server = service
        from repro.service.gateway import TenantQuota

        token = gateway.create_tenant(
            "tiny", TenantQuota(max_apps=1, max_pending_jobs=1,
                                max_store_bytes=1024)
        )
        client = make_client(server, token)
        client.register_app("one", MOONS_PROGRAM)
        status, body = raw_request(
            server,
            "POST",
            "/v1/apps",
            body={"app": "two", "program": MOONS_PROGRAM},
            token=token,
        )
        assert status == 429
        assert body["error"]["code"] == "quota_exceeded"


class TestConcurrentClients:
    def test_two_clients_interleave_training(self, service):
        """Two tenants drive the service from separate threads."""
        gateway, server = service
        client_a, inputs_a = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        client_b, inputs_b = onboard(
            gateway, server, "bob", "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )

        results = {}
        errors = []

        def drive(name, client, app):
            try:
                handles = client.submit_training(app, steps=3)
                statuses = client.wait_all(handles)
                results[name] = statuses
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, exc))

        threads = [
            threading.Thread(target=drive, args=("a", client_a, "moons")),
            threading.Thread(target=drive, args=("b", client_b, "blobs")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert all(
            s.state == "finished" for s in results["a"] + results["b"]
        )

        # The shared cluster genuinely overlapped the tenants' jobs.
        jobs = gateway.server._runtime_oracle.finished_jobs()
        assert len(jobs) == 6
        assert {j.user for j in jobs} == {0, 1}
        spans = sorted((j.start_time, j.end_time) for j in jobs)
        assert any(
            later_start < earlier_end
            for (_, earlier_end), (later_start, _) in zip(spans, spans[1:])
        )
        # Each tenant still ends with a working model.
        assert client_a.infer("moons", inputs_a[0]).prediction in (0, 1)
        assert client_b.infer("blobs", inputs_b[0]).prediction in (0, 1, 2)

    def test_tenants_cannot_see_each_other(self, service):
        gateway, server = service
        client_a, _ = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        client_b = make_client(server, gateway.create_tenant("bob"))
        assert client_b.list_apps().apps == ()
        with pytest.raises(ApiError) as excinfo:
            client_b.refine("moons")
        assert excinfo.value.code is ApiErrorCode.NOT_FOUND


class TestDynamicTenantsOverHTTP:
    def test_close_app_route(self, service):
        gateway, server = service
        client, inputs = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        handles = client.submit_training("moons", steps=1)
        client.wait_all(handles)
        response = client.close_app("moons")
        assert response.app == "moons"
        assert response.was_admitted
        # Closed apps still serve infer, but reject further training.
        assert client.infer("moons", inputs[0]).prediction in (0, 1)
        with pytest.raises(ApiError) as excinfo:
            client.submit_training("moons")
        assert excinfo.value.code is ApiErrorCode.FAILED_PRECONDITION

    def test_delete_unknown_app_not_found(self, service):
        gateway, server = service
        token = gateway.create_tenant("alice")
        status, body = raw_request(
            server, "DELETE", "/v1/apps/ghost", token=token
        )
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_register_after_submit_over_http(self, service):
        gateway, server = service
        alice, _ = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        alice.wait_all(alice.submit_training("moons", steps=1))
        # Training is live; a second tenant onboards and trains.
        bob, _ = onboard(
            gateway, server, "bob", "blobs", BLOBS_PROGRAM, "blobs", seed=1
        )
        statuses = bob.wait_all(bob.submit_training("blobs", steps=1))
        assert all(s.state == "finished" for s in statuses)

    def test_infer_carries_model_version(self, service):
        gateway, server = service
        client, inputs = onboard(
            gateway, server, "alice", "moons", MOONS_PROGRAM, "moons"
        )
        handles = client.submit_training("moons", steps=2)
        client.wait_all(handles)
        response = client.infer("moons", inputs[0])
        assert response.model_version in {h.job_id for h in handles}
