"""End-to-end tracing: /v1/traces, span coverage, exemplars, SLO gauges."""

import json
from http.client import HTTPConnection

import pytest

from service_helpers import (
    MOONS_PROGRAM,
    SMALL_ZOO,
    make_gateway,
    task_payload,
)
from repro.obs import MetricsRegistry
from repro.obs.context import REQUEST_ID_HEADER
from repro.service.client import EaseMLClient
from repro.service.http import (
    METRICS_JSON_PATH,
    METRICS_PATH,
    TRACES_PATH,
    serve_background,
)


@pytest.fixture(params=["threading", "asyncio"])
def service(request):
    gateway = make_gateway()
    server, _ = serve_background(gateway, frontend=request.param)
    yield gateway, server
    server.shutdown()
    server.server_close()


def raw_get(server, path, headers=None):
    connection = HTTPConnection("127.0.0.1", server.port, timeout=30.0)
    connection.request("GET", path, headers=headers or {})
    response = connection.getresponse()
    raw = response.read()
    connection.close()
    return response, raw


def get_traces(server, query="", headers=None):
    response, raw = raw_get(server, TRACES_PATH + query, headers)
    assert response.status == 200, raw
    body = json.loads(raw.decode("utf-8"))
    assert body["api_version"] == "v1"
    return body["traces"]


def onboard(gateway, server, tenant="alice"):
    token = gateway.create_tenant(tenant)
    client = EaseMLClient(server.url, token, timeout=30.0)
    client.register_app("moons", MOONS_PROGRAM)
    inputs, outputs = task_payload("moons")
    client.feed("moons", inputs, outputs)
    return client


class TestTracesEndpoint:
    def test_traffic_produces_traces_with_spans(self, service):
        gateway, server = service
        client = onboard(gateway, server)
        client.info()
        traces = get_traces(server)
        assert traces
        by_route = {t["route"]: t for t in traces}
        trace = by_route["/v1/apps"]  # the register_app mutation
        assert trace["trace_id"].startswith("req-")
        assert trace["tenant"] == "alice"
        assert trace["status"] == 200
        names = {s["name"] for s in trace["spans"]}
        assert {"request", "frontend.decode", "gateway.handle"} <= names
        # Spans nest: gateway.handle hangs off the root.
        handle = next(
            s for s in trace["spans"] if s["name"] == "gateway.handle"
        )
        assert handle["parent"] == 0
        assert handle["attrs"]["type"] == "register_app"

    def test_filters_and_limit(self, service):
        gateway, server = service
        client = onboard(gateway, server)
        client.info()
        assert all(
            t["tenant"] == "alice"
            for t in get_traces(server, "?tenant=alice")
        )
        assert get_traces(server, "?tenant=nobody") == []
        only_info = get_traces(server, "?route=/v1/info")
        assert {t["route"] for t in only_info} == {"/v1/info"}
        assert len(get_traces(server, "?limit=1")) == 1
        assert get_traces(server, "?min_ms=1e9") == []

    def test_bad_filters_are_400(self, service):
        gateway, server = service
        response, raw = raw_get(server, TRACES_PATH + "?min_ms=soon")
        assert response.status == 400
        body = json.loads(raw.decode("utf-8"))
        assert body["error"]["code"] == "invalid_argument"

    def test_scrapes_themselves_are_never_traced(self, service):
        gateway, server = service
        for _ in range(3):
            raw_get(server, METRICS_PATH)
            raw_get(server, METRICS_JSON_PATH)
        routes = {t["route"] for t in get_traces(server, "?limit=200")}
        assert not routes & {"/metrics", "/v1/metrics", "/v1/traces"}

    def test_disabled_metrics_disables_tracing(self):
        gateway = make_gateway(metrics=MetricsRegistry(enabled=False))
        server, _ = serve_background(gateway)
        try:
            token = gateway.create_tenant("alice")
            EaseMLClient(server.url, token, timeout=30.0).info()
            assert get_traces(server) == []
        finally:
            server.shutdown()
            server.server_close()


class TestTracesToken:
    @pytest.mark.parametrize("frontend", ["threading", "asyncio"])
    def test_gate_covers_traces_and_echoes_request_id(self, frontend):
        gateway = make_gateway()
        server, _ = serve_background(
            gateway, frontend=frontend, metrics_token="scrape-secret"
        )
        try:
            # 401 without the bearer — and the 401 still echoes the id.
            response, raw = raw_get(
                server, TRACES_PATH,
                headers={REQUEST_ID_HEADER: "trace-gate"},
            )
            assert response.status == 401
            assert response.getheader(REQUEST_ID_HEADER) == "trace-gate"
            assert json.loads(raw)["error"]["code"] == "unauthorized"
            # Operator scrapes echo ids too (200s, both endpoints).
            good = {"Authorization": "Bearer scrape-secret",
                    REQUEST_ID_HEADER: "trace-ok"}
            for path in (TRACES_PATH, METRICS_PATH, METRICS_JSON_PATH):
                response, _ = raw_get(server, path, headers=good)
                assert response.status == 200
                assert (
                    response.getheader(REQUEST_ID_HEADER) == "trace-ok"
                )
        finally:
            server.shutdown()
            server.server_close()


class TestWriteTraceCoversTheStack:
    @pytest.mark.parametrize("frontend", ["threading", "asyncio"])
    def test_durable_write_spans_socket_to_wal(self, tmp_path, frontend):
        from repro.ml.zoo import default_zoo
        from repro.persist import open_gateway

        gateway, _ = open_gateway(
            tmp_path / "state",
            sync="group",  # the commit barrier actually fsyncs
            placement="partition",
            n_gpus=4,
            min_examples=10,
            seed=0,
            zoo=default_zoo().subset(SMALL_ZOO),
        )
        server, _ = serve_background(gateway, frontend=frontend)
        try:
            onboard(gateway, server)
            traces = get_traces(server, "?route=/v1/apps")
            assert traces
            names = {s["name"] for s in traces[0]["spans"]}
            # The acceptance bar: one trace, four layers of the stack.
            assert {
                "request", "frontend.decode", "gateway.handle",
                "journal.append", "journal.commit",
            } <= names
            if frontend == "asyncio":
                # Mutations hop the per-tenant command queue there.
                assert "queue.wait" in names
        finally:
            server.shutdown()
            server.server_close()
            gateway.store.close()


class TestExemplars:
    def test_latency_buckets_carry_trace_ids(self, service):
        gateway, server = service
        client = onboard(gateway, server)
        client.info()
        response, raw = raw_get(server, METRICS_JSON_PATH)
        body = json.loads(raw.decode("utf-8"))
        series = body["metrics"]["http_request_seconds"]["series"]
        exemplars = [
            bucket["exemplar"]
            for sample in series
            for bucket in sample["buckets"]
            if "exemplar" in bucket
        ]
        assert exemplars
        assert all(e["trace_id"].startswith("req-") for e in exemplars)
        # The exemplar links to a real retained trace id shape — and at
        # least one belongs to a trace the ring still holds.
        kept = {t["trace_id"] for t in get_traces(server, "?limit=200")}
        assert kept & {e["trace_id"] for e in exemplars}


class TestSLOGauges:
    def test_scrape_exports_per_tenant_attainment(self, service):
        gateway, server = service
        client = onboard(gateway, server)
        client.info()
        _, raw = raw_get(server, METRICS_PATH)
        text = raw.decode("utf-8")
        assert 'slo_attainment_ratio{tenant="alice",window="60s"}' in text
        assert 'slo_error_budget_burn{tenant="alice",window="60s"}' in text

    def test_injected_latency_breach_moves_burn(self, service):
        from repro.obs import SLOEngine, SLOObjective

        gateway, server = service
        # Re-point the gateway at an unmeetable objective: every
        # request now misses, so burn must leave zero.
        gateway.slo = SLOEngine(
            registry=gateway.metrics,
            default=SLOObjective(latency_ms=1e-6, target=0.9),
        )
        client = onboard(gateway, server)
        client.info()
        _, raw = raw_get(server, METRICS_JSON_PATH)
        body = json.loads(raw.decode("utf-8"))
        series = body["metrics"]["slo_error_budget_burn"]["series"]
        burns = {
            (s["labels"]["tenant"], s["labels"]["window"]): s["value"]
            for s in series
        }
        assert burns[("alice", "60s")] == pytest.approx(10.0)
