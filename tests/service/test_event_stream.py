"""Server-push notifications: the broker, SSE framing, both frontends."""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from service_helpers import MOONS_PROGRAM, make_gateway, task_payload

from repro.service.api import ApiError, ApiErrorCode
from repro.service.client import EaseMLClient
from repro.service.http import serve_background
from repro.service.stream import EventBroker, Subscription, sse_frame


class TestEventBroker:
    def test_publish_reaches_subscriber(self):
        broker = EventBroker()
        sub = broker.subscribe("alice")
        broker.publish("model_promoted", tenant="alice", app="moons")
        event = sub.get(timeout=1.0)
        assert event["event"] == "model_promoted"
        assert event["app"] == "moons"
        assert event["seq"] == 1

    def test_seq_is_monotonic(self):
        broker = EventBroker()
        sub = broker.subscribe(None)
        broker.publish("a")
        broker.publish("b")
        assert sub.get(1.0)["seq"] == 1
        assert sub.get(1.0)["seq"] == 2

    def test_tenant_filter(self):
        broker = EventBroker()
        alice = broker.subscribe("alice")
        bob = broker.subscribe("bob")
        broker.publish("job_completed", tenant="alice", app="a")
        assert alice.get(0.2)["app"] == "a"
        assert bob.get(0.2) is None

    def test_tenantless_events_reach_everyone(self):
        broker = EventBroker()
        sub = broker.subscribe("alice")
        broker.publish("server_notice")
        assert sub.get(0.2)["event"] == "server_notice"

    def test_closed_subscription_dropped(self):
        broker = EventBroker()
        sub = broker.subscribe(None)
        sub.close()
        assert broker.publish("a") == 0

    def test_slow_subscriber_drops_oldest(self):
        broker = EventBroker(buffer=4)
        sub = broker.subscribe(None)
        for i in range(8):
            broker.publish("tick", n=i)
        assert sub.dropped == 4
        assert sub.get(0.2)["n"] == 4  # oldest surviving event

    def test_publish_never_blocks(self):
        broker = EventBroker(buffer=1)
        broker.subscribe(None)  # never drained
        start = time.monotonic()
        for _ in range(1000):
            broker.publish("tick")
        assert time.monotonic() - start < 1.0


class TestSseFrame:
    def test_frame_shape(self):
        frame = sse_frame(
            {"seq": 7, "event": "model_promoted", "app": "m"}
        ).decode()
        lines = frame.splitlines()
        assert "id: 7" in lines
        assert "event: model_promoted" in lines
        data = next(l for l in lines if l.startswith("data: "))
        assert json.loads(data[len("data: "):])["app"] == "m"
        assert frame.endswith("\n\n")


def onboard(gateway, server):
    token = gateway.create_tenant("alice")
    client = EaseMLClient(server.url, token, timeout=30.0)
    client.register_app("moons", MOONS_PROGRAM)
    inputs, outputs = task_payload("moons")
    client.feed("moons", inputs, outputs)
    return client, token


class TestAsyncioStream:
    @pytest.fixture
    def service(self):
        gateway = make_gateway()
        server, _ = serve_background(gateway, frontend="asyncio")
        yield gateway, server
        server.shutdown()
        server.server_close()

    def test_job_completion_streams(self, service):
        gateway, server = service
        client, _ = onboard(gateway, server)
        seen = []
        done = threading.Event()

        def subscriber():
            for event in client.stream_events():
                seen.append(event)
                if event["event"] == "job_completed":
                    done.set()
                    return

        thread = threading.Thread(target=subscriber, daemon=True)
        thread.start()
        time.sleep(0.3)  # let the subscription register first
        client.wait_all(client.submit_training("moons", steps=1))
        assert done.wait(timeout=30)
        completed = [
            e for e in seen if e["event"] == "job_completed"
        ]
        assert completed[0]["app"] == "moons"
        assert completed[0]["tenant"] == "alice"
        assert "job_id" in completed[0]

    def test_bad_token_refused(self, service):
        _, server = service
        client = EaseMLClient(server.url, "tok-bogus", timeout=5.0)
        with pytest.raises(ApiError) as err:
            next(iter(client.stream_events()))
        assert err.value.code is ApiErrorCode.UNAUTHORIZED

    def test_raw_sse_headers(self, service):
        gateway, server = service
        token = gateway.create_tenant("carol")
        connection = HTTPConnection(
            "127.0.0.1", server.port, timeout=10.0
        )
        connection.request(
            "GET", "/v1/events?stream=1",
            headers={"Authorization": f"Bearer {token}"},
        )
        response = connection.getresponse()
        assert response.status == 200
        assert response.headers["Content-Type"] == "text/event-stream"
        connection.close()


class TestThreadingFrontendUnsupported:
    def test_stream_refused_with_pointer_to_asyncio(self):
        gateway = make_gateway()
        server, _ = serve_background(gateway, frontend="threading")
        try:
            token = gateway.create_tenant("alice")
            connection = HTTPConnection(
                "127.0.0.1", server.port, timeout=10.0
            )
            connection.request(
                "GET", "/v1/events?stream=1",
                headers={"Authorization": f"Bearer {token}"},
            )
            response = connection.getresponse()
            body = json.loads(response.read().decode())
            assert response.status == 422
            assert body["error"]["code"] == "unsupported"
            assert "asyncio" in body["error"]["message"]
        finally:
            connection.close()
            server.shutdown()
            server.server_close()

    def test_plain_events_poll_still_works(self):
        gateway = make_gateway()
        server, _ = serve_background(gateway, frontend="threading")
        try:
            client, _ = onboard(gateway, server)
            response = client.events()
            assert response is not None
        finally:
            server.shutdown()
            server.server_close()
