"""The inference data plane end to end: vectorized predict,
cross-request coalescing, the prediction cache, and rate limits."""

import threading

import numpy as np
import pytest

from service_helpers import (
    MOONS_PROGRAM,
    make_gateway,
    task_payload,
)

from repro.engine.events import EventKind
from repro.infer import InferPlane, InferPlaneConfig
from repro.obs import MetricsRegistry
from repro.service.api import (
    ApiError,
    ApiErrorCode,
    FeedRequest,
    InferRequest,
    JobStatusRequest,
    RegisterAppRequest,
    SubmitTrainingRequest,
)
from repro.service.gateway import TenantQuota


def onboard(gateway, tenant="alice", app="moons", quota=None, steps=2):
    token = gateway.create_tenant(tenant, quota)
    gateway.handle(
        RegisterAppRequest(
            auth_token=token, app=app, program=MOONS_PROGRAM
        )
    )
    inputs, outputs = task_payload("moons")
    gateway.handle(
        FeedRequest(
            auth_token=token, app=app, inputs=inputs, outputs=outputs
        )
    )
    handles = gateway.handle(
        SubmitTrainingRequest(auth_token=token, app=app, steps=steps)
    ).handles
    for handle in handles:
        while not gateway.handle(
            JobStatusRequest(auth_token=token, job_id=handle.job_id)
        ).done:
            pass
    return token, inputs


@pytest.fixture
def trained(gateway):
    token, inputs = onboard(gateway)
    return gateway, token, inputs


def infer(gateway, token, rows, app="moons"):
    return gateway.handle(
        InferRequest(auth_token=token, app=app, rows=tuple(rows))
    )


class TestVectorizedParity:
    def test_batch_bit_identical_to_per_row(self, trained):
        gateway, token, inputs = trained
        probes = inputs[:10]
        singles = [
            gateway.handle(
                InferRequest(auth_token=token, app="moons", x=row)
            ).prediction
            for row in probes
        ]
        batch = infer(gateway, token, probes)
        assert list(batch.predictions) == singles

    def test_one_infer_event_per_batch_with_rows(self, trained):
        gateway, token, inputs = trained
        log = gateway.server.log
        before = len(log.of_kind(EventKind.INFER))
        infer(gateway, token, inputs[:7])
        events = log.of_kind(EventKind.INFER)
        assert len(events) == before + 1
        assert events[-1].payload["rows"] == 7

    def test_single_row_also_logs_rows(self, trained):
        gateway, token, inputs = trained
        gateway.handle(
            InferRequest(auth_token=token, app="moons", x=inputs[0])
        )
        event = gateway.server.log.of_kind(EventKind.INFER)[-1]
        assert event.payload["rows"] == 1


class TestEdgeCases:
    def test_ragged_rows_name_the_row(self, trained):
        gateway, token, inputs = trained
        with pytest.raises(ApiError) as err:
            infer(gateway, token, (inputs[0], (1.0,)))
        assert err.value.code is ApiErrorCode.INVALID_ARGUMENT
        assert "row 1 has 1 scalars" in str(err.value)
        assert err.value.details["row"] == 1

    def test_non_numeric_row_named(self, trained):
        gateway, token, inputs = trained
        with pytest.raises(ApiError) as err:
            infer(gateway, token, (inputs[0], ("a", "b")))
        assert err.value.code is ApiErrorCode.INVALID_ARGUMENT
        assert "row 1 is not numeric" in str(err.value)

    def test_empty_batch_rejected(self, trained):
        gateway, token, _ = trained
        with pytest.raises(ApiError) as err:
            infer(gateway, token, ())
        assert err.value.code is ApiErrorCode.INVALID_ARGUMENT

    def test_nan_rows_rejected(self, trained):
        gateway, token, inputs = trained
        with pytest.raises(ApiError) as err:
            infer(gateway, token, (inputs[0], (float("nan"), 1.0)))
        assert err.value.code is ApiErrorCode.INVALID_ARGUMENT
        assert "non-finite" in str(err.value)
        assert err.value.details["row"] == 1

    def test_inf_rows_rejected(self, trained):
        gateway, token, inputs = trained
        with pytest.raises(ApiError) as err:
            infer(gateway, token, ((float("inf"), 1.0),))
        assert "non-finite" in str(err.value)

    def test_both_x_and_rows_rejected(self, trained):
        gateway, token, inputs = trained
        with pytest.raises(ApiError, match="not both"):
            gateway.handle(InferRequest(
                auth_token=token, app="moons",
                x=inputs[0], rows=(inputs[1],),
            ))

    def test_untrained_app_failed_precondition(self, gateway):
        token = gateway.create_tenant("cold")
        gateway.handle(RegisterAppRequest(
            auth_token=token, app="fresh", program=MOONS_PROGRAM
        ))
        with pytest.raises(ApiError) as err:
            infer(gateway, token, ((1.0, 2.0),), app="fresh")
        assert err.value.code is ApiErrorCode.FAILED_PRECONDITION
        assert "submit training" in str(err.value)


class TestPredictionCache:
    def test_repeat_rows_served_from_cache(self, trained):
        gateway, token, inputs = trained
        probes = inputs[:5]
        first = infer(gateway, token, probes)
        log = gateway.server.log
        flushes = len(log.of_kind(EventKind.INFER))
        second = infer(gateway, token, probes)
        assert second.predictions == first.predictions
        # A full cache hit answers without touching the model.
        assert len(log.of_kind(EventKind.INFER)) == flushes
        hits = gateway.metrics.get("infer_cache_hits_total")
        assert hits.labels("moons").value >= len(probes)

    def test_promotion_invalidates_cache(self, trained):
        gateway, token, inputs = trained
        infer(gateway, token, inputs[:5])
        assert len(gateway.infer_plane.cache) > 0
        app = gateway.server.get_app("moons")
        gateway._on_promotion(app)
        assert len(gateway.infer_plane.cache) == 0

    def test_promotion_hook_is_registered(self, trained):
        gateway, _, _ = trained
        assert (
            gateway._on_promotion
            in gateway.server._promotion_callbacks
        )

    def test_version_race_reexecutes_against_new_model(self):
        """A promotion between the cache read and the flush must not
        mix old-model cached rows with new-model flush rows."""
        plane = InferPlane(
            config=InferPlaneConfig(mode="off", cache_rows=64),
            metrics=MetricsRegistry(),
        )
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        calls = []

        def execute_v1(X_flush):
            calls.append(len(X_flush))
            return (
                np.zeros(len(X_flush), dtype=np.int64),
                {"model": "m", "model_version": "v1"},
            )

        plane.predict("app", X, execute_v1, peek=lambda: ("m", "v1"))

        def execute_v2(X_flush):
            calls.append(len(X_flush))
            return (
                np.ones(len(X_flush), dtype=np.int64),
                {"model": "m", "model_version": "v2"},
            )

        # The peek still sees v1 (cache hits), but the flush lands on
        # v2: the plane must re-run the WHOLE batch against v2.
        X2 = np.array([[1.0, 2.0], [9.0, 9.0]])
        predictions, meta, _ = plane.predict(
            "app", X2, execute_v2, peek=lambda: ("m", "v1")
        )
        assert predictions.tolist() == [1, 1]
        assert meta["model_version"] == "v2"
        assert calls[-1] == 2  # full batch re-executed

    def test_cache_disabled_by_config(self, gateway):
        gateway.configure_infer_plane(
            InferPlaneConfig(mode="off", cache_rows=0)
        )
        token, inputs = onboard(gateway)
        infer(gateway, token, inputs[:3])
        infer(gateway, token, inputs[:3])
        assert len(gateway.infer_plane.cache) == 0


class TestRateLimits:
    def test_quota_refuses_with_retry_after(self, gateway):
        quota = TenantQuota(
            infer_rows_per_second=10.0, infer_burst_rows=10.0
        )
        token, inputs = onboard(gateway, quota=quota)
        infer(gateway, token, inputs[:10])
        with pytest.raises(ApiError) as err:
            infer(gateway, token, inputs[:10])
        assert err.value.code is ApiErrorCode.QUOTA_EXCEEDED
        assert err.value.details["retry_after"] > 0
        assert err.value.details["rate_rows_per_second"] == 10.0
        limited = gateway.metrics.get("infer_rate_limited_total")
        assert limited.labels("alice").value == 1

    def test_default_rate_applies_without_quota(self, gateway):
        gateway.configure_infer_plane(
            InferPlaneConfig(mode="off", default_rate=5.0)
        )
        token, inputs = onboard(gateway)
        infer(gateway, token, inputs[:5])
        with pytest.raises(ApiError) as err:
            infer(gateway, token, inputs[:5])
        assert err.value.code is ApiErrorCode.QUOTA_EXCEEDED

    def test_unlimited_by_default(self, trained):
        gateway, token, inputs = trained
        for _ in range(5):
            infer(gateway, token, inputs[:20])


class TestCoalescing:
    def test_concurrent_tenants_coalesce_per_app(self, gateway):
        gateway.configure_infer_plane(InferPlaneConfig(
            mode="fixed", window=0.01, cache_rows=0
        ))
        tenants = [
            onboard(gateway, tenant=f"t{i}", app=f"app-{i}")
            for i in range(2)
        ]
        expected = {}
        for i, (token, inputs) in enumerate(tenants):
            expected[i] = infer(
                gateway, token, inputs[:4], app=f"app-{i}"
            ).predictions
        results = {}
        errors = []
        barrier = threading.Barrier(8)

        def worker(i, j):
            token, inputs = tenants[i]
            barrier.wait()
            try:
                results[(i, j)] = infer(
                    gateway, token, inputs[:4], app=f"app-{i}"
                ).predictions
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, j))
            for i in range(2)
            for j in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for (i, _), predictions in results.items():
            assert predictions == expected[i]

    def test_flush_metrics_observed(self, trained):
        gateway, token, inputs = trained
        infer(gateway, token, inputs[:6])
        sizes = gateway.metrics.get("infer_batch_size")
        assert sizes is not None
        assert sizes.percentile(50) > 0

    def test_adaptive_mode_answers_correctly(self, gateway):
        gateway.configure_infer_plane(
            InferPlaneConfig(mode="adaptive", cache_rows=0)
        )
        token, inputs = onboard(gateway)
        single = gateway.handle(InferRequest(
            auth_token=token, app="moons", x=inputs[0]
        )).prediction
        batch = infer(gateway, token, inputs[:1])
        assert batch.predictions == (single,)


class TestQuotaValidation:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="infer_rows_per_second"):
            TenantQuota(infer_rows_per_second=0.0)

    def test_rejects_sub_row_burst(self):
        with pytest.raises(ValueError, match="infer_burst_rows"):
            TenantQuota(infer_burst_rows=0.5)

    def test_defaults_are_unlimited(self):
        quota = TenantQuota()
        assert quota.infer_rows_per_second is None
        assert quota.infer_burst_rows is None
