"""Access/event logging: formats, enablement, concurrency."""

import io
import json
import threading

from repro.obs import NULL_ACCESS_LOG, AccessLogger


def make_logger(**kwargs):
    stream = io.StringIO()
    return AccessLogger(stream, **kwargs), stream


class TestHumanFormat:
    def test_access_line(self):
        logger, stream = make_logger()
        logger.access(
            method="POST", path="/v1/apps", status=200,
            duration=0.00123, request_id="req-ab", client="127.0.0.1",
        )
        line = stream.getvalue().strip()
        assert '127.0.0.1 "POST /v1/apps" 200 1.2ms req-ab' in line
        assert line.split(" ", 1)[0].endswith("Z")  # UTC stamp first

    def test_access_line_without_request_id(self):
        logger, stream = make_logger()
        logger.access(method="GET", path="/metrics", status=200,
                      duration=0.0)
        assert stream.getvalue().strip().endswith('"GET /metrics" 200 0.0ms')

    def test_event_line(self):
        logger, stream = make_logger()
        logger.event("serve_started", url="http://x", port=80)
        assert "[serve_started] url=http://x port=80" in stream.getvalue()

    def test_route_and_tenant_ride_the_line(self):
        logger, stream = make_logger()
        logger.access(
            method="GET", path="/v1/apps/moons", status=200,
            duration=0.001, request_id="req-1", tenant="acme",
            route="/v1/apps/{app}",
        )
        line = stream.getvalue().strip()
        assert line.endswith("req-1 route=/v1/apps/{app} tenant=acme")


class TestJsonFormat:
    def test_access_record(self):
        logger, stream = make_logger(json_lines=True)
        logger.access(
            method="GET", path="/v1/info", status=200, duration=0.002,
            request_id="req-1", client="c", frontend="asyncio",
            tenant="acme",
        )
        record = json.loads(stream.getvalue())
        assert record["kind"] == "access"
        assert record["method"] == "GET"
        assert record["status"] == 200
        assert record["duration_ms"] == 2.0
        assert record["request_id"] == "req-1"
        assert record["tenant"] == "acme"
        assert record["frontend"] == "asyncio"

    def test_route_template_recorded(self):
        logger, stream = make_logger(json_lines=True)
        logger.access(
            method="GET", path="/v1/apps/moons", status=200,
            duration=0.001, route="/v1/apps/{app}",
        )
        record = json.loads(stream.getvalue())
        assert record["route"] == "/v1/apps/{app}"

    def test_optional_fields_omitted(self):
        logger, stream = make_logger(json_lines=True)
        logger.access(method="GET", path="/metrics", status=200,
                      duration=0.0)
        record = json.loads(stream.getvalue())
        assert "request_id" not in record
        assert "tenant" not in record

    def test_event_record(self):
        logger, stream = make_logger(json_lines=True)
        logger.event("recovery", records=12)
        record = json.loads(stream.getvalue())
        assert record["kind"] == "recovery"
        assert record["records"] == 12
        assert "ts" in record


class TestEnablement:
    def test_disabled_logger_emits_nothing(self):
        logger, stream = make_logger(enabled=False)
        logger.access(method="GET", path="/", status=200, duration=0.0)
        logger.event("anything", x=1)
        assert stream.getvalue() == ""

    def test_null_logger_is_disabled(self):
        assert NULL_ACCESS_LOG.enabled is False

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        logger = AccessLogger(stream)
        stream.close()
        logger.access(method="GET", path="/", status=200, duration=0.0)
        logger.event("late", x=1)


class TestConcurrency:
    def test_lines_never_interleave(self):
        logger, stream = make_logger(json_lines=True)

        def hammer(i):
            for _ in range(50):
                logger.access(
                    method="GET", path=f"/t/{i}", status=200,
                    duration=0.001,
                )

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 400
        for line in lines:
            json.loads(line)  # every line is one intact record
