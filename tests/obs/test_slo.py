"""The SLO engine: window math, burn rates, config loading, gauges."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_OBJECTIVE,
    SLOEngine,
    SLOObjective,
    load_slo_config,
)


def engine(**kwargs):
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("windows", (10, 100))
    return SLOEngine(**kwargs)


class TestObjective:
    def test_defaults(self):
        assert DEFAULT_OBJECTIVE.latency_ms == 1000.0
        assert DEFAULT_OBJECTIVE.target == 0.99

    @pytest.mark.parametrize(
        "kwargs",
        [dict(latency_ms=0.0), dict(latency_ms=-5.0),
         dict(target=0.0), dict(target=1.5)],
    )
    def test_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            SLOObjective(**kwargs)


class TestWindowMath:
    def test_attainment_counts_only_the_window(self):
        slo = engine(default=SLOObjective(latency_ms=100.0, target=0.9))
        # Misses at t=5, hits at t=50: the short window ending at t=55
        # sees only the hits; the long window sees both.
        for _ in range(4):
            slo.record("acme", 0.5, now=5.0)  # 500ms > 100ms: miss
        for _ in range(4):
            slo.record("acme", 0.01, now=50.0)  # hit
        assert slo.attainment("acme", 10, now=55.0) == 1.0
        assert slo.attainment("acme", 100, now=55.0) == 0.5

    def test_window_boundary_is_half_open(self):
        slo = engine()
        slo.record("acme", 10.0, now=0.0)  # miss stamped second 0
        # Window (now-w, now]: second 0 is inside at now=10 (floor=0
        # excludes nothing below stamp 0? floor < stamp: 0 < 0 false)
        assert slo.attainment("acme", 10, now=10.0) == 1.0
        assert slo.attainment("acme", 10, now=9.0) == 0.0
        assert slo.attainment("acme", 11, now=10.0) == 0.0

    def test_stale_buckets_self_clear_on_wraparound(self):
        slo = engine(windows=(5,))
        slo.record("acme", 10.0, now=0.0)  # miss in slot 0 (size 6)
        # One full wrap later the same slot is re-stamped by a hit.
        slo.record("acme", 0.001, now=6.0)
        assert slo.attainment("acme", 5, now=6.0) == 1.0

    def test_idle_tenant_is_in_slo(self):
        slo = engine()
        assert slo.attainment("ghost", 10, now=50.0) == 1.0
        assert slo.burn_rate("ghost", 10, now=50.0) == 0.0

    def test_burn_rate_scales_miss_by_budget(self):
        slo = engine(default=SLOObjective(latency_ms=100.0, target=0.9))
        for _ in range(8):
            slo.record("acme", 0.01, now=5.0)
        for _ in range(2):
            slo.record("acme", 0.5, now=5.0)
        # 20% missing against a 10% budget: burning twice as fast.
        assert slo.burn_rate("acme", 10, now=6.0) == pytest.approx(2.0)

    def test_zero_budget_burns_infinite_on_any_miss(self):
        import math

        slo = engine(default=SLOObjective(latency_ms=100.0, target=1.0))
        slo.record("acme", 0.01, now=5.0)
        assert slo.burn_rate("acme", 10, now=5.0) == 0.0
        slo.record("acme", 9.0, now=5.0)
        assert math.isinf(slo.burn_rate("acme", 10, now=5.0))

    def test_errors_are_misses_regardless_of_latency(self):
        slo = engine(default=SLOObjective(latency_ms=100.0, target=0.9))
        slo.record("acme", 0.001, error=True, now=5.0)
        assert slo.attainment("acme", 10, now=5.0) == 0.0

    def test_per_tenant_objectives_override_the_default(self):
        slo = engine(
            default=SLOObjective(latency_ms=1000.0),
            objectives={"picky": SLOObjective(latency_ms=1.0)},
        )
        slo.record("picky", 0.05, now=5.0)   # 50ms > 1ms: miss
        slo.record("easy", 0.05, now=5.0)    # 50ms < 1000ms: hit
        assert slo.attainment("picky", 10, now=5.0) == 0.0
        assert slo.attainment("easy", 10, now=5.0) == 1.0


class TestExport:
    def test_gauges_land_in_the_registry(self):
        registry = MetricsRegistry(enabled=True)
        slo = SLOEngine(
            registry=registry, windows=(10,),
            default=SLOObjective(latency_ms=100.0, target=0.9),
        )
        for _ in range(4):
            slo.record("acme", 0.01, now=5.0)
        slo.record("acme", 0.5, now=5.0)
        slo.export(now=6.0)
        text = registry.render_prometheus()
        assert 'slo_attainment_ratio{tenant="acme",window="10s"} 0.8' in text
        assert 'slo_error_budget_burn{tenant="acme",window="10s"} 2' in text

    def test_infinite_burn_exports_the_sentinel(self):
        registry = MetricsRegistry(enabled=True)
        slo = SLOEngine(
            registry=registry, windows=(10,),
            default=SLOObjective(latency_ms=100.0, target=1.0),
        )
        slo.record("acme", 9.0, now=5.0)
        slo.export(now=5.0)
        document = registry.to_dict()
        (sample,) = document["slo_error_budget_burn"]["series"]
        assert sample["value"] == float(10 ** 9)

    def test_disabled_engine_records_nothing(self):
        slo = SLOEngine(enabled=False)
        slo.record("acme", 9.0, now=5.0)
        slo.export(now=5.0)
        assert slo.status(now=5.0) == []

    def test_status_is_json_safe(self):
        slo = engine(default=SLOObjective(latency_ms=100.0, target=1.0))
        slo.record("acme", 9.0, now=5.0)
        (row,) = slo.status(now=5.0)
        assert row["tenant"] == "acme"
        assert row["windows"]["10s"]["attainment"] == 0.0
        assert row["windows"]["10s"]["burn"] is None  # inf -> None
        json.dumps(slo.status(now=5.0))  # must not raise


class TestConfig:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "default": {"latency_ms": 500, "target": 0.95},
            "tenants": {"acme": {"latency_ms": 250, "target": 0.999}},
        }))
        default, tenants = load_slo_config(str(path))
        assert default == SLOObjective(latency_ms=500.0, target=0.95)
        assert tenants == {
            "acme": SLOObjective(latency_ms=250.0, target=0.999)
        }

    def test_partial_objective_fills_defaults(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"tenants": {"a": {"target": 0.9}}}))
        default, tenants = load_slo_config(str(path))
        assert default is DEFAULT_OBJECTIVE
        assert tenants["a"] == SLOObjective(latency_ms=1000.0, target=0.9)

    @pytest.mark.parametrize(
        "document",
        [
            ["not", "an", "object"],
            {"defautl": {}},
            {"default": {"latency": 5}},
            {"default": {"latency_ms": -1}},
            {"default": {"target": 2.0}},
            {"tenants": ["a"]},
            {"tenants": {"a": {"burn": 1}}},
        ],
    )
    def test_malformed_config_raises_pointed_errors(
        self, tmp_path, document
    ):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_slo_config(str(path))


class TestRouteClasses:
    def test_class_track_is_additive(self):
        slo = engine(default=SLOObjective(latency_ms=100.0, target=0.9))
        slo.record("acme", 0.01, now=5.0)  # tenant-wide hit
        slo.record("acme", 0.5, now=5.0, route_class="infer")  # miss
        # The tenant-wide track saw both; the class track only its own.
        assert slo.attainment("acme", 10, now=6.0) == 0.5
        assert (
            slo.class_attainment("acme", "infer", 10, now=6.0) == 0.0
        )

    def test_idle_class_is_in_slo(self):
        slo = engine()
        assert slo.class_attainment("ghost", "infer", 10, now=5.0) == 1.0
        assert slo.class_burn_rate("ghost", "infer", 10, now=5.0) == 0.0

    def test_class_burn_uses_the_tenant_objective(self):
        slo = engine(default=SLOObjective(latency_ms=100.0, target=0.9))
        for _ in range(8):
            slo.record("acme", 0.01, now=5.0, route_class="infer")
        for _ in range(2):
            slo.record("acme", 0.5, now=5.0, route_class="infer")
        assert slo.class_burn_rate(
            "acme", "infer", 10, now=6.0
        ) == pytest.approx(2.0)

    def test_class_gauges_export(self):
        registry = MetricsRegistry()
        slo = engine(registry=registry, windows=(10,))
        slo.record("acme", 0.01, now=5.0, route_class="infer")
        slo.export(now=6.0)
        attainment = registry.get("slo_class_attainment_ratio")
        assert attainment.labels("acme", "infer", "10s").value == 1.0
        burn = registry.get("slo_class_error_budget_burn")
        assert burn.labels("acme", "infer", "10s").value == 0.0

    def test_status_includes_classes(self):
        slo = engine(windows=(10,))
        slo.record("acme", 0.01, now=5.0, route_class="infer")
        slo.record("acme", 0.01, now=5.0)
        rows = slo.status(now=6.0)
        row = next(r for r in rows if r["tenant"] == "acme")
        assert row["classes"]["infer"]["10s"]["attainment"] == 1.0
        assert row["classes"]["infer"]["10s"]["burn"] == 0.0

    def test_status_omits_classes_when_none(self):
        slo = engine(windows=(10,))
        slo.record("acme", 0.01, now=5.0)
        (row,) = slo.status(now=6.0)
        assert "classes" not in row
