"""Request tracing context: ids, binding, cross-thread propagation."""

import contextvars
import re
import threading

from repro.obs import (
    RequestContext,
    bind_request,
    clear_request,
    current_request,
    current_request_id,
    new_request_id,
    run_in_context,
)
from repro.obs.context import sanitize_client_id


class TestRequestIds:
    def test_format_and_uniqueness(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(re.fullmatch(r"req-[0-9a-f]{16}", i) for i in ids)

    def test_sanitize_accepts_reasonable_ids(self):
        assert sanitize_client_id("req-abc123") == "req-abc123"
        assert sanitize_client_id("  trace-9 ") == "trace-9"

    def test_sanitize_rejects_junk(self):
        assert sanitize_client_id(None) is None
        assert sanitize_client_id("") is None
        assert sanitize_client_id("   ") is None
        assert sanitize_client_id("a\nb") is None
        assert sanitize_client_id("a\tb") is None
        assert sanitize_client_id("x" * 129) is None
        assert sanitize_client_id("caf\x00e") is None


class TestBinding:
    def teardown_method(self):
        clear_request()

    def test_bind_and_clear(self):
        assert current_request() is None
        assert current_request_id() is None
        context = bind_request(request_id="req-x", frontend="test")
        assert current_request() is context
        assert current_request_id() == "req-x"
        assert context.frontend == "test"
        clear_request()
        assert current_request() is None

    def test_bind_mints_when_missing(self):
        context = bind_request()
        assert context.request_id.startswith("req-")
        assert context.elapsed() >= 0.0

    def test_thread_isolation(self):
        bind_request(request_id="req-main")
        seen = {}

        def probe():
            seen["other"] = current_request_id()

        t = threading.Thread(target=probe)
        t.start()
        t.join()
        assert seen["other"] is None
        assert current_request_id() == "req-main"


class TestRunInContext:
    def teardown_method(self):
        clear_request()

    def test_reenters_snapshot_on_another_thread(self):
        bind_request(request_id="req-captured")
        snapshot = contextvars.copy_context()
        clear_request()
        seen = {}

        def drain():
            seen["id"] = run_in_context(snapshot, current_request_id)

        t = threading.Thread(target=drain)
        t.start()
        t.join()
        assert seen["id"] == "req-captured"

    def test_none_snapshot_runs_directly(self):
        bind_request(request_id="req-ambient")
        assert run_in_context(None, current_request_id) == "req-ambient"

    def test_reentry_falls_back_to_direct_call(self):
        """Context.run refuses re-entry; the helper degrades safely."""
        bind_request(request_id="req-outer")
        snapshot = contextvars.copy_context()

        def nested():
            return run_in_context(snapshot, current_request_id)

        assert snapshot.run(nested) == "req-outer"

    def test_func_runtime_error_propagates_without_rerun(self):
        """A RuntimeError raised by ``func`` itself must NOT trigger
        the re-entry fallback: that would execute ``func`` twice
        (duplicate journal records, double-applied mutations)."""
        bind_request(request_id="req-captured")
        snapshot = contextvars.copy_context()
        clear_request()
        calls = []

        def failing():
            calls.append(current_request_id())
            raise RuntimeError("handler blew up after side-effects")

        try:
            run_in_context(snapshot, failing)
        except RuntimeError as exc:
            assert "blew up" in str(exc)
        else:  # pragma: no cover - the call must raise
            raise AssertionError("expected RuntimeError to propagate")
        assert calls == ["req-captured"]

    def test_func_runtime_error_in_nested_reentry_runs_once(self):
        """Even on the fallback path (re-entry), a failing ``func``
        runs exactly once and its error propagates."""
        bind_request(request_id="req-outer")
        snapshot = contextvars.copy_context()
        calls = []

        def failing():
            calls.append(current_request_id())
            raise RuntimeError("boom")

        def nested():
            return run_in_context(snapshot, failing)

        try:
            snapshot.run(nested)
        except RuntimeError as exc:
            assert "boom" in str(exc)
        else:  # pragma: no cover - the call must raise
            raise AssertionError("expected RuntimeError to propagate")
        assert calls == ["req-outer"]

    def test_context_dataclass_defaults(self):
        context = RequestContext()
        assert context.request_id.startswith("req-")
        assert context.frontend == ""
