"""The metrics substrate: instruments, families, registry, exposition."""

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullInstrument,
    OVERFLOW_LABEL,
)


class TestCounter:
    def test_monotone(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(7)
        assert gauge.value == 8.0


class TestHistogram:
    def test_boundary_lands_in_le_bucket(self):
        """A value exactly on a bound belongs to that bound's bucket."""
        h = Histogram([0.1, 0.2, 0.4])
        h.observe(0.1)
        h.observe(0.2)
        assert h.counts == [1, 1, 0, 0]

    def test_tail_goes_to_inf_bucket(self):
        h = Histogram([0.1, 0.2])
        h.observe(99.0)
        assert h.counts == [0, 0, 1]
        assert h.total == 1
        assert h.sum == 99.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram([0.1, 0.1])
        with pytest.raises(ValueError, match="at least one"):
            Histogram([])

    def test_percentile_interpolates(self):
        # 10 observations spread evenly through the (0.0, 0.1] bucket:
        # the estimator interpolates linearly inside the bucket.
        h = Histogram([0.1, 0.2])
        for _ in range(10):
            h.observe(0.05)
        assert h.percentile(50) == pytest.approx(0.05)
        assert h.percentile(100) == pytest.approx(0.1)

    def test_percentile_across_buckets(self):
        h = Histogram([0.1, 0.2, 0.4])
        for _ in range(8):
            h.observe(0.05)  # first bucket
        for _ in range(2):
            h.observe(0.3)  # third bucket
        # p80 sits exactly at the cumulative edge of bucket one.
        assert h.percentile(80) == pytest.approx(0.1)
        assert h.percentile(99) == pytest.approx(
            0.2 + 0.2 * ((9.9 - 8) / 2)
        )

    def test_percentile_empty_is_nan(self):
        assert math.isnan(Histogram([1.0]).percentile(50))

    def test_percentile_inf_bucket_clamps(self):
        h = Histogram([0.1, 0.2])
        h.observe(50.0)
        assert h.percentile(99) == 0.2

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            Histogram([1.0]).percentile(101)

    def test_time_contextmanager(self):
        h = Histogram(DEFAULT_LATENCY_BUCKETS)
        with h.time():
            pass
        assert h.total == 1
        assert h.sum >= 0.0


class TestThreadSafety:
    def test_concurrent_writers_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labels=["worker"])
        histogram = registry.histogram(
            "lat_seconds", buckets=[0.001, 1.0]
        )
        n_threads, n_iter = 8, 500

        def hammer(worker):
            for _ in range(n_iter):
                counter.labels(worker % 4).inc()
                histogram.observe(0.0005)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(
            child.value for _, child in counter.children()
        )
        assert total == n_threads * n_iter
        assert histogram._solo().total == n_threads * n_iter

    def test_concurrent_label_creation(self):
        registry = MetricsRegistry(max_label_sets=1024)
        family = registry.counter("fan_total", labels=["k"])
        barrier = threading.Barrier(8)

        def create(base):
            barrier.wait()
            for i in range(100):
                family.labels(f"{base}-{i}").inc()

        threads = [
            threading.Thread(target=create, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(family.children()) == 800
        assert all(c.value == 1.0 for _, c in family.children())


class TestCardinalityGuard:
    def test_overflow_collapses(self):
        registry = MetricsRegistry(max_label_sets=4)
        family = registry.counter("c_total", labels=["tenant"])
        for i in range(10):
            family.labels(f"t{i}").inc()
        children = dict(family.children())
        # 4 real children + the shared overflow child.
        assert (OVERFLOW_LABEL,) in children
        assert children[(OVERFLOW_LABEL,)].value == 6.0
        assert registry.overflow.value == 6.0
        # Existing children keep updating post-overflow.
        family.labels("t0").inc()
        assert dict(family.children())[("t0",)].value == 2.0

    def test_overflow_visible_in_exposition(self):
        registry = MetricsRegistry(max_label_sets=1)
        family = registry.counter("c_total", labels=["k"])
        family.labels("a").inc()
        family.labels("b").inc()
        text = registry.render_prometheus()
        assert 'c_total{k="__overflow__"} 1' in text
        assert "obs_label_overflow_total 1" in text


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ["a"])
        second = registry.counter("x_total", "other help", ["a"])
        assert first is second

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=["a"])
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labels=["b"])

    def test_name_and_label_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labels=["bad-label"])

    def test_labels_arity_checked(self):
        family = MetricsRegistry().counter("x_total", labels=["a", "b"])
        with pytest.raises(ValueError, match="declares labels"):
            family.labels("only-one")

    def test_unlabelled_family_needs_no_labels_call(self):
        family = MetricsRegistry().counter("x_total")
        family.inc()
        assert family.value == 1.0
        labelled = MetricsRegistry().counter("y_total", labels=["a"])
        with pytest.raises(ValueError, match="address a child"):
            labelled.inc()


class TestPrometheusExposition:
    def test_golden(self):
        """Byte-for-byte exposition of one small registry."""
        registry = MetricsRegistry()
        requests = registry.counter(
            "http_requests_total", "Requests served.", ["route"]
        )
        requests.labels("/v1/info").inc(3)
        depth = registry.gauge("queue_depth", "Commands waiting.")
        depth.set(2)
        lat = registry.histogram(
            "req_seconds", "Request latency.", buckets=[0.1, 0.5]
        )
        lat.observe(0.05)
        lat.observe(0.05)
        lat.observe(0.3)
        lat.observe(7.0)
        expected = "\n".join([
            "# HELP http_requests_total Requests served.",
            "# TYPE http_requests_total counter",
            'http_requests_total{route="/v1/info"} 3',
            "# HELP obs_label_overflow_total "
            "Label sets collapsed by the cardinality guard.",
            "# TYPE obs_label_overflow_total counter",
            "obs_label_overflow_total 0",
            "# HELP queue_depth Commands waiting.",
            "# TYPE queue_depth gauge",
            "queue_depth 2",
            "# HELP req_seconds Request latency.",
            "# TYPE req_seconds histogram",
            'req_seconds_bucket{le="0.1"} 2',
            'req_seconds_bucket{le="0.5"} 3',
            'req_seconds_bucket{le="+Inf"} 4',
            "req_seconds_sum 7.4",
            "req_seconds_count 4",
        ]) + "\n"
        assert registry.render_prometheus() == expected

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", labels=["path"])
        family.labels('a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert r'x_total{path="a\"b\\c\nd"} 1' in text

    def test_integer_values_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(2)
        assert "x_total 2\n" in registry.render_prometheus()


class TestJsonExposition:
    def test_histogram_series_carry_percentiles(self):
        registry = MetricsRegistry()
        lat = registry.histogram("h_seconds", buckets=[0.1, 0.2])
        for _ in range(10):
            lat.observe(0.05)
        entry = registry.to_dict()["h_seconds"]["series"][0]
        assert entry["count"] == 10
        assert entry["p50"] == pytest.approx(0.05)
        assert entry["p95"] == pytest.approx(0.095)
        assert entry["buckets"][-1]["le"] == "+Inf"

    def test_empty_histogram_percentiles_are_null(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds")
        entry = registry.to_dict()["h_seconds"]["series"][0]
        assert entry["p50"] is None


class TestDisabledRegistry:
    def test_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total", labels=["a"])
        assert isinstance(counter, NullInstrument)
        # The whole instrument surface no-ops without branching.
        counter.labels("t").inc()
        counter.dec()
        counter.set(5)
        counter.observe(1.0)
        with counter.time():
            pass
        assert counter.value == 0.0
        assert math.isnan(counter.percentile(50))

    def test_renders_empty(self):
        assert NULL_REGISTRY.render_prometheus() == "\n"
        assert NULL_REGISTRY.to_dict() == {}
        assert NULL_REGISTRY.families() == []
