"""The span tracer: sampling, retention, eviction, remote joins."""

import pytest

from repro.obs.context import (
    RequestContext,
    bind_request,
    clear_request,
)
from repro.obs.tracing import (
    _NULL_SPAN,
    NULL_TRACER,
    TraceState,
    Tracer,
    add_span,
    span,
)


@pytest.fixture(autouse=True)
def _clean_context():
    clear_request()
    yield
    clear_request()


def finish_kwargs(**overrides):
    kwargs = dict(
        route="/v1/jobs", status=200, tenant="acme", frontend="threading"
    )
    kwargs.update(overrides)
    return kwargs


class TestFastPath:
    def test_span_outside_any_request_is_the_null_singleton(self):
        assert span("anything") is _NULL_SPAN

    def test_sampled_out_request_allocates_no_span(self):
        tracer = Tracer(sample_rate=0.0)
        context = bind_request(RequestContext(request_id="req-1"))
        tracer.start(context)
        assert context.trace is None
        # Identity, not equality: the whole point is one shared object.
        assert span("gateway.handle") is _NULL_SPAN
        add_span("journal.append", 0.0, 1.0)  # must be a silent no-op
        tracer.finish(context, **finish_kwargs())
        assert len(tracer) == 0
        assert tracer.dropped_total == 1

    def test_null_tracer_covers_the_surface(self):
        context = bind_request(RequestContext(request_id="req-1"))
        context.trace = TraceState("req-1")
        NULL_TRACER.start(context)
        NULL_TRACER.finish(context)
        assert context.trace is None
        NULL_TRACER.record_remote("req-1", "replica.apply", 0.001)
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.get("req-1") == []
        assert len(NULL_TRACER) == 0


class TestSpans:
    def test_nesting_records_parent_links(self):
        context = bind_request(RequestContext(request_id="req-1"))
        context.trace = TraceState("req-1")
        with span("outer"):
            with span("inner", detail=7):
                pass
        spans = {s["name"]: s for s in context.trace.spans}
        assert spans["outer"]["parent"] == 0  # root
        assert spans["inner"]["parent"] == spans["outer"]["sid"]
        assert spans["inner"]["attrs"] == {"detail": 7}

    def test_exception_marks_trace_and_span(self):
        context = bind_request(RequestContext(request_id="req-1"))
        context.trace = TraceState("req-1")
        with pytest.raises(RuntimeError):
            with span("gateway.handle"):
                raise RuntimeError("boom")
        assert context.trace.error is True
        (entry,) = context.trace.spans
        assert entry["attrs"]["error"] == "RuntimeError"

    def test_add_span_parents_to_the_active_span(self):
        context = bind_request(RequestContext(request_id="req-1"))
        trace = TraceState("req-1", started=0.0)
        context.trace = trace
        with span("gateway.handle") as handle:
            add_span("journal.append", 10.0, 10.5, seq=3)
        appended = next(
            s for s in trace.spans if s["name"] == "journal.append"
        )
        assert appended["parent"] == handle._sid
        assert appended["start_ms"] == pytest.approx(10_000.0)
        assert appended["duration_ms"] == pytest.approx(500.0)


class TestRetention:
    def test_operator_routes_are_never_retained(self):
        tracer = Tracer()
        for route in ("/metrics", "/v1/metrics", "/v1/traces"):
            context = bind_request(RequestContext(request_id="req-x"))
            tracer.start(context)
            tracer.finish(context, **finish_kwargs(route=route))
        assert len(tracer) == 0

    def test_error_traces_always_kept(self):
        tracer = Tracer(retain_rate=0.0, slow_per_route=0)
        context = bind_request(RequestContext(request_id="req-1"))
        tracer.start(context)
        tracer.finish(context, **finish_kwargs(status=503))
        (entry,) = tracer.snapshot()
        assert entry["kept"] == "error"
        assert entry["error"] is True

    def test_slowest_per_route_are_kept(self):
        tracer = Tracer(retain_rate=0.0, slow_per_route=1, seed=0)
        for request_id in ("req-a", "req-b"):
            context = bind_request(RequestContext(request_id=request_id))
            tracer.start(context)
            tracer.finish(context, **finish_kwargs())
        # Both were "slow" when they finished (heap warms up), but the
        # root span and duration are real either way.
        for entry in tracer.snapshot():
            assert entry["spans"][0]["name"] == "request"
            assert entry["spans"][0]["sid"] == 0
            assert entry["duration_ms"] >= 0.0

    def test_eviction_prefers_sampled_over_slow_over_error(self):
        tracer = Tracer(capacity=3, retain_rate=0.0, slow_per_route=0)
        tracer._insert({"kept": "slow", "trace_id": "t-slow",
                        "tenant": "", "route": "/r", "duration_ms": 1.0})
        tracer._insert({"kept": "error", "trace_id": "t-err",
                        "tenant": "", "route": "/r", "duration_ms": 1.0})
        tracer._insert({"kept": "sampled", "trace_id": "t-samp",
                        "tenant": "", "route": "/r", "duration_ms": 1.0})
        tracer._insert({"kept": "error", "trace_id": "t-err2",
                        "tenant": "", "route": "/r", "duration_ms": 1.0})
        kept = {e["trace_id"] for e in tracer.snapshot(limit=10)}
        assert kept == {"t-slow", "t-err", "t-err2"}  # sampled went first
        tracer._insert({"kept": "error", "trace_id": "t-err3",
                        "tenant": "", "route": "/r", "duration_ms": 1.0})
        kept = {e["trace_id"] for e in tracer.snapshot(limit=10)}
        assert kept == {"t-err", "t-err2", "t-err3"}  # then the slow one

    def test_full_ring_of_errors_evicts_oldest_error(self):
        tracer = Tracer(capacity=2, retain_rate=0.0, slow_per_route=0)
        for name in ("t-1", "t-2", "t-3"):
            tracer._insert({"kept": "error", "trace_id": name,
                            "tenant": "", "route": "/r",
                            "duration_ms": 1.0})
        kept = {e["trace_id"] for e in tracer.snapshot(limit=10)}
        assert kept == {"t-2", "t-3"}

    def test_snapshot_filters_and_orders(self):
        tracer = Tracer(retain_rate=0.0, slow_per_route=0)
        rows = [
            ("t-1", "acme", "/v1/jobs", 5.0),
            ("t-2", "acme", "/v1/apps", 9.0),
            ("t-3", "bob", "/v1/jobs", 7.0),
        ]
        for trace_id, tenant, route, duration in rows:
            tracer._insert({"kept": "error", "trace_id": trace_id,
                            "tenant": tenant, "route": route,
                            "duration_ms": duration})
        assert [e["trace_id"] for e in tracer.snapshot()] == [
            "t-2", "t-3", "t-1"
        ]
        assert [e["trace_id"]
                for e in tracer.snapshot(tenant="acme")] == ["t-2", "t-1"]
        assert [e["trace_id"]
                for e in tracer.snapshot(route="/v1/jobs", min_ms=6.0)
                ] == ["t-3"]
        assert [e["trace_id"] for e in tracer.snapshot(limit=1)] == ["t-2"]


class TestRemoteJoin:
    def test_remote_span_joins_by_trace_id(self):
        tracer = Tracer(retain_rate=0.0, slow_per_route=1)
        context = bind_request(RequestContext(request_id="req-1"))
        tracer.start(context)
        tracer.finish(context, **finish_kwargs())
        tracer.record_remote("req-1", "replica.apply", 0.002, seq=4)
        entries = tracer.get("req-1")
        assert {e["kept"] for e in entries} == {"slow", "remote"}
        remote = next(e for e in entries if e["kept"] == "remote")
        assert remote["frontend"] == "replica"
        assert remote["spans"][0]["name"] == "replica.apply"
        assert remote["spans"][0]["duration_ms"] == pytest.approx(2.0)
        assert remote["spans"][0]["attrs"]["seq"] == 4
