"""Tests for the typed schemas and the Figure 2 DSL parser."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.dsl import (
    DSLSyntaxError,
    parse_program,
    program_from_shapes,
    tokenize,
)
from repro.platform.schema import (
    DataType,
    NonRecField,
    Program,
    TensorType,
    is_valid_field_name,
    tensor,
)


class TestTensorType:
    def test_shape_and_size(self):
        t = TensorType((256, 256, 3))
        assert t.rank == 3
        assert t.size == 256 * 256 * 3
        assert t.render() == "Tensor[256, 256, 3]"

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            TensorType(())

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            TensorType((3, 0))


class TestDataType:
    def test_flat_size(self):
        dt = DataType((tensor(4, 4), tensor(2)), ())
        assert dt.flat_size == 18

    def test_recursive_flag(self):
        assert DataType((tensor(3),), ("next",)).is_recursive
        assert not DataType((tensor(3),), ()).is_recursive

    def test_duplicate_rec_fields_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DataType((), ("next", "next"))

    def test_invalid_field_names_rejected(self):
        with pytest.raises(ValueError):
            DataType((), ("Next",))  # uppercase not in [a-z0-9_]
        with pytest.raises(ValueError):
            NonRecField(TensorType((3,)), "BAD")

    def test_field_name_validation(self):
        assert is_valid_field_name("field_1")
        assert not is_valid_field_name("")
        assert not is_valid_field_name("Field")


class TestParser:
    def test_image_classification_example(self):
        p = parse_program(
            "{input: {[Tensor[256, 256, 3]], []}, "
            "output: {[Tensor[3]], []}}"
        )
        assert p.input.tensor_shapes() == ((256, 256, 3),)
        assert p.output.tensor_shapes() == ((3,),)
        assert not p.input.is_recursive

    def test_time_series_example(self):
        p = parse_program(
            "{input: {[Tensor[10]], [next]}, "
            "output: {[Tensor[10]], [next]}}"
        )
        assert p.input.rec_fields == ("next",)
        assert p.output.rec_fields == ("next",)

    def test_named_fields(self):
        p = parse_program(
            "{input: {[field1 :: Tensor[8]], []}, "
            "output: {[Tensor[2]], []}}"
        )
        assert p.input.tensors[0].name == "field1"

    def test_multiple_tensors_and_recs(self):
        p = parse_program(
            "{input: {[Tensor[4], Tensor[2, 2]], [left, right]}, "
            "output: {[Tensor[1]], []}}"
        )
        assert len(p.input.tensors) == 2
        assert p.input.rec_fields == ("left", "right")

    def test_whitespace_insensitive(self):
        compact = parse_program(
            "{input:{[Tensor[3]],[]},output:{[Tensor[2]],[]}}"
        )
        spaced = parse_program(
            "{ input : { [ Tensor[ 3 ] ] , [ ] } , "
            "output : { [ Tensor[ 2 ] ] , [ ] } }"
        )
        assert compact == spaced

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "{input: {[Tensor[3]], []}}",  # missing output
            "{output: {[Tensor[3]], []}, input: {[Tensor[3]], []}}",
            "{input: {[Tensor[]], []}, output: {[Tensor[2]], []}}",
            "{input: {[Tensor[3]], []}, output: {[Tensor[2]], []}} junk",
            "{input: {[Tensor[3]]}, output: {[Tensor[2]], []}}",
            "{input: {[Tensor[3]], []}, output: {[Tensor[-2]], []}}",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises((DSLSyntaxError, ValueError)):
            parse_program(bad)

    def test_error_reports_position(self):
        with pytest.raises(DSLSyntaxError, match="position"):
            parse_program("{input: ???}")

    def test_tokenize_kinds(self):
        tokens = tokenize("{input: Tensor[3] :: , x}")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "lbrace", "input", "colon", "tensor", "lbracket", "int",
            "rbracket", "dcolon", "comma", "ident", "rbrace",
        ]


class TestRoundTrip:
    def test_render_parse_roundtrip_examples(self):
        examples = [
            program_from_shapes([256, 256, 3], [3]),
            Program(
                DataType((tensor(10),), ("next",)),
                DataType((tensor(10),), ("next",)),
            ),
            Program(
                DataType((tensor(4), tensor(2, 2)), ("left", "right")),
                DataType((tensor(1),), ()),
            ),
        ]
        for program in examples:
            assert parse_program(program.render()) == program

    @settings(max_examples=40, deadline=None)
    @given(
        in_shape=st.lists(st.integers(1, 64), min_size=1, max_size=3),
        out_shape=st.lists(st.integers(1, 64), min_size=1, max_size=3),
        rec=st.lists(
            st.sampled_from(["next", "left", "right", "a0"]),
            max_size=2,
            unique=True,
        ),
    )
    def test_property_roundtrip(self, in_shape, out_shape, rec):
        program = Program(
            DataType((tensor(*in_shape),), tuple(rec)),
            DataType((tensor(*out_shape),), ()),
        )
        assert parse_program(program.render()) == program

    def test_program_from_shapes_named(self):
        p = program_from_shapes([5], [2], name="myapp")
        assert p.name == "myapp"
        # name is excluded from equality
        assert p == program_from_shapes([5], [2])
