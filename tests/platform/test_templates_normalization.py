"""Tests for Figure 4 template matching and Figure 5 normalization."""

import numpy as np
import pytest

from repro.platform.candidates import generate_candidates
from repro.platform.dsl import parse_program, program_from_shapes
from repro.platform.normalization import (
    DEFAULT_KS,
    NormalizationFunction,
    default_normalization_family,
    prescale_unit,
)
from repro.platform.schema import DataType, Program, tensor
from repro.platform.templates import (
    TEMPLATES,
    WorkloadKind,
    match_template,
    matching_templates,
)


class TestTemplateTable:
    def test_seven_templates_in_order(self):
        kinds = [t.kind for t in TEMPLATES]
        assert kinds == [
            WorkloadKind.IMAGE_CLASSIFICATION,
            WorkloadKind.IMAGE_RECOVERY,
            WorkloadKind.TIMESERIES_CLASSIFICATION,
            WorkloadKind.TIMESERIES_TRANSLATION,
            WorkloadKind.TREE_CLASSIFICATION,
            WorkloadKind.GENERAL_CLASSIFICATION,
            WorkloadKind.GENERAL_AUTOENCODER,
        ]

    def test_image_classification_models(self):
        template = TEMPLATES[0]
        assert set(template.models) == {
            "NIN", "GoogLeNet", "ResNet-50", "AlexNet",
            "BN-AlexNet", "ResNet-18", "VGG-16", "SqueezeNet",
        }


class TestMatching:
    def test_image_classification(self):
        p = program_from_shapes([256, 256, 3], [3])
        assert match_template(p).kind is WorkloadKind.IMAGE_CLASSIFICATION

    def test_image_recovery(self):
        p = program_from_shapes([64, 64, 3], [64, 64, 3])
        assert match_template(p).kind is WorkloadKind.IMAGE_RECOVERY

    def test_timeseries_classification(self):
        p = parse_program(
            "{input: {[Tensor[10]], [next]}, output: {[Tensor[4]], []}}"
        )
        assert (
            match_template(p).kind
            is WorkloadKind.TIMESERIES_CLASSIFICATION
        )

    def test_timeseries_translation(self):
        p = parse_program(
            "{input: {[Tensor[10]], [next]}, "
            "output: {[Tensor[10]], [next]}}"
        )
        assert (
            match_template(p).kind is WorkloadKind.TIMESERIES_TRANSLATION
        )

    def test_tree_classification(self):
        p = parse_program(
            "{input: {[Tensor[8]], [left, right]}, "
            "output: {[Tensor[2]], []}}"
        )
        assert match_template(p).kind is WorkloadKind.TREE_CLASSIFICATION

    def test_general_classification_fallback(self):
        p = program_from_shapes([7], [3])  # rank-1 in, rank-1 out
        assert (
            match_template(p).kind is WorkloadKind.GENERAL_CLASSIFICATION
        )

    def test_general_autoencoder_fallback(self):
        p = program_from_shapes([4, 4], [2, 2])
        assert match_template(p).kind is WorkloadKind.GENERAL_AUTOENCODER

    def test_top_to_bottom_priority(self):
        """An image-classification-shaped program also matches the
        general templates; the first (most specific) must win."""
        p = program_from_shapes([32, 32, 3], [10])
        matches = matching_templates(p)
        assert len(matches) >= 2
        assert matches[0].kind is WorkloadKind.IMAGE_CLASSIFICATION

    def test_every_program_matches_something(self):
        odd = Program(
            DataType((tensor(2), tensor(3), tensor(4)), ("a", "b")),
            DataType((tensor(2, 2, 2, 2),), ("z",)),
        )
        assert match_template(odd).kind is WorkloadKind.GENERAL_AUTOENCODER


class TestNormalization:
    def test_figure5_family_ks(self):
        family = default_normalization_family()
        assert tuple(f.k for f in family) == DEFAULT_KS

    def test_formula_unscaled(self):
        f = NormalizationFunction(0.5, rescale=False)
        x = np.array([0.25])
        # -x^{2k} + x^k with k=0.5: -(0.25^1) + 0.25^0.5 = 0.25
        assert f(x)[0] == pytest.approx(0.25)

    def test_rescaled_peak_is_one(self):
        for k in DEFAULT_KS:
            f = NormalizationFunction(k)
            assert f(np.array([f.peak]))[0] == pytest.approx(1.0)

    def test_endpoints_map_to_zero(self):
        f = NormalizationFunction(0.4)
        assert f(np.array([0.0]))[0] == pytest.approx(0.0)
        assert f(np.array([1.0]))[0] == pytest.approx(0.0)

    def test_output_range(self):
        f = NormalizationFunction(0.6)
        x = np.linspace(0, 1, 101)
        out = f(x)
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.0 + 1e-12)

    def test_input_range_enforced(self):
        f = NormalizationFunction(0.5)
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            f(np.array([1.5]))

    def test_duplicate_ks_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            default_normalization_family([0.2, 0.2])

    def test_prescale_unit(self):
        x = np.array([-5.0, 0.0, 15.0])
        out = prescale_unit(x)
        assert out[0] == 0.0
        assert out[-1] == 1.0

    def test_prescale_constant_input(self):
        assert np.allclose(prescale_unit(np.full(4, 7.0)), 0.0)

    def test_prescale_huge_dynamic_range(self):
        """The astrophysics motivation: ten orders of magnitude."""
        x = np.array([1e-5, 1.0, 1e5])
        out = prescale_unit(x)
        assert np.all((out >= 0.0) & (out <= 1.0))


class TestCandidates:
    def test_image_program_gets_normalization_variants(self):
        p = program_from_shapes([64, 64, 3], [5])
        candidates = generate_candidates(p)
        # 8 plain + 8 * 4 normalized
        assert len(candidates) == 8 + 8 * len(DEFAULT_KS)
        plain = [c for c in candidates if c.normalization is None]
        assert len(plain) == 8

    def test_tabular_program_gets_no_normalization(self):
        p = program_from_shapes([7], [3])
        candidates = generate_candidates(p)
        assert all(c.normalization is None for c in candidates)
        assert [c.base_model for c in candidates] == ["Bit-level-RNN"]

    def test_normalization_can_be_disabled(self):
        p = program_from_shapes([64, 64, 3], [5])
        candidates = generate_candidates(p, include_normalization=False)
        assert len(candidates) == 8

    def test_candidate_names_unique(self):
        p = program_from_shapes([64, 64, 3], [5])
        names = [c.name for c in generate_candidates(p)]
        assert len(set(names)) == len(names)

    def test_candidate_name_format(self):
        p = program_from_shapes([64, 64, 3], [5])
        names = {c.name for c in generate_candidates(p)}
        assert "NIN" in names
        assert "NIN+norm(k=0.2)" in names
