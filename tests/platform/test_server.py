"""Tests for the ease.ml server (apps, operators, scheduling)."""

import numpy as np
import pytest

from repro.engine.events import EventKind
from repro.ml.data import TaskSpec, make_task
from repro.ml.zoo import default_zoo
from repro.platform.dsl import program_from_shapes
from repro.platform.server import EaseMLServer


SMALL_ZOO = ["naive-bayes", "ridge", "tree-d4", "knn-5"]


def make_server(**kwargs):
    zoo = default_zoo().subset(SMALL_ZOO)
    defaults = dict(strategy="hybrid", seed=0, min_examples=10)
    defaults.update(kwargs)
    return EaseMLServer(zoo, **defaults)


def feed_task(app, kind, n=120, seed=0, n_classes=None):
    X, y = make_task(TaskSpec(kind, n, 0.3, seed=seed))
    app.feed(list(X), [int(v) for v in y])
    return X, y


class TestRegistration:
    def test_register_from_text(self):
        server = make_server()
        app = server.register_app(
            "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}",
            "moons",
        )
        assert app.name == "moons"
        assert app.n_classes == 2

    def test_register_from_program(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [3]), "blobs")
        assert app.template.kind.value == "general classification"

    def test_duplicate_name_rejected(self):
        server = make_server()
        server.register_app(program_from_shapes([2], [2]), "a")
        with pytest.raises(ValueError, match="already"):
            server.register_app(program_from_shapes([2], [2]), "a")

    def test_autoencoder_workload_rejected_for_live_training(self):
        server = make_server()
        with pytest.raises(NotImplementedError):
            server.register_app(
                program_from_shapes([4, 4], [2, 2]), "ae"
            )

    def test_registration_open_after_run(self):
        # Dynamic membership: an app registered after scheduling has
        # started joins the live run once it is fed past the threshold.
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        feed_task(app, "moons")
        server.run(max_steps=2)
        late = server.register_app(program_from_shapes([2], [2]), "b")
        assert not server.is_admitted("b")
        feed_task(late, "moons", seed=1)
        records = server.run(max_steps=4)
        assert server.is_admitted("b")
        late_user = server.apps.index(late)
        assert any(r.user == late_user for r in records)
        arrivals = server.log.filter(EventKind.USER_ARRIVED, user=late_user)
        assert len(arrivals) == 1

    def test_retire_app_leaves_run(self):
        server = make_server()
        a = server.register_app(program_from_shapes([2], [2]), "a")
        b = server.register_app(program_from_shapes([2], [2]), "b")
        feed_task(a, "moons")
        feed_task(b, "moons", seed=1)
        server.run(max_steps=4)
        server.retire_app("a")
        assert a.closed
        assert not server.is_admitted("a")
        records = server.run(max_steps=4)
        assert all(r.user != server.apps.index(a) for r in records)
        departures = server.log.filter(EventKind.USER_DEPARTED, user=0)
        assert len(departures) == 1
        with pytest.raises(RuntimeError, match="already closed"):
            server.retire_app("a")

    def test_image_app_gets_normalization_candidates(self):
        server = make_server()
        app = server.register_app(
            program_from_shapes([4, 4, 3], [2]), "img"
        )
        names = app.candidate_names()
        assert any("+norm(k=" in n for n in names)
        assert len(names) == len(SMALL_ZOO) * 5  # plain + 4 ks

    def test_paper_candidates_preserved(self):
        server = make_server()
        app = server.register_app(
            program_from_shapes([4, 4, 3], [2]), "img"
        )
        paper_names = {c.base_model for c in app.paper_candidates}
        assert "AlexNet" in paper_names


class TestOperators:
    def test_feed_validates_shapes(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        with pytest.raises(ValueError, match="scalars"):
            app.feed([np.ones(3)], [0])
        with pytest.raises(ValueError, match="inputs"):
            app.feed([np.ones(2)], [0, 1])

    def test_feed_label_encoding(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [3]), "a")
        app.feed([np.ones(2)], [2])
        _, Y = app.store.enabled_arrays()
        assert np.allclose(Y[0], [0, 0, 1])

    def test_feed_label_range_checked(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        with pytest.raises(ValueError, match="label"):
            app.feed([np.ones(2)], [5])

    def test_feed_accepts_output_vectors(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        app.feed([np.ones(2)], [np.array([0.0, 1.0])])
        assert len(app.store) == 1

    def test_refine_lists_and_toggles(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        app.feed([np.ones(2), np.zeros(2)], [0, 1])
        view = app.refine()
        assert view == [(0, True), (1, True)]
        app.set_example_enabled(0, False)
        assert app.refine() == [(0, False), (1, True)]

    def test_infer_before_training_rejected(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        with pytest.raises(RuntimeError, match="no trained model"):
            app.infer(np.ones(2))

    def test_feed_events_logged(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        feed_task(app, "moons")
        assert len(server.log.of_kind(EventKind.FEED)) == 1


class TestSchedulingLoop:
    def test_run_requires_examples(self):
        server = make_server()
        server.register_app(program_from_shapes([2], [2]), "a")
        with pytest.raises(RuntimeError, match="enabled examples"):
            server.run(max_steps=1)

    def test_end_to_end_improves_and_infers(self):
        server = make_server()
        apps = []
        for i, kind in enumerate(["blobs", "moons"]):
            n_classes = 3 if kind == "blobs" else 2
            app = server.register_app(
                program_from_shapes([2], [n_classes]), kind
            )
            feed_task(app, kind, seed=i)
            apps.append(app)
        records = server.run(max_steps=10)
        assert len(records) == 10
        for app in apps:
            assert app.best_accuracy > 0.5
            assert app.best_candidate is not None
            # report() only lists improvements, in increasing order.
            improvements = [o.accuracy for o in app.report()]
            assert improvements == sorted(improvements)
        X, _ = make_task(TaskSpec("moons", 8, 0.3, seed=9))
        prediction = apps[1].infer(X[0])
        assert prediction in (0, 1)

    def test_every_step_serves_exactly_one_app(self):
        server = make_server()
        for i, kind in enumerate(["blobs", "moons"]):
            n_classes = 3 if kind == "blobs" else 2
            app = server.register_app(
                program_from_shapes([2], [n_classes]), kind
            )
            feed_task(app, kind, seed=i)
        server.run(max_steps=8)
        total_runs = sum(len(a.history) for a in server.apps)
        assert total_runs == 8

    def test_cost_budget_run(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        feed_task(app, "moons")
        records = server.run(cost_budget=0.5)
        assert records  # at least one job ran
        assert server.scheduler.total_cost >= 0.5 or len(records) >= 1

    def test_strategies_accepted(self):
        for strategy in ("hybrid", "greedy", "round_robin", "random"):
            server = make_server(strategy=strategy)
            app = server.register_app(
                program_from_shapes([2], [2]), "a"
            )
            feed_task(app, "moons")
            server.run(max_steps=3)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            make_server(strategy="psychic")

    def test_clock_advances_with_training(self):
        server = make_server()
        app = server.register_app(program_from_shapes([2], [2]), "a")
        feed_task(app, "moons")
        server.run(max_steps=4)
        assert server.clock.now > 0.0


class TestRuntimeBackend:
    def register_two(self, server):
        apps = []
        for i, kind in enumerate(["blobs", "moons"]):
            n_classes = 3 if kind == "blobs" else 2
            app = server.register_app(
                program_from_shapes([2], [n_classes]), kind
            )
            feed_task(app, kind, seed=i)
            apps.append(app)
        return apps

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="runtime_placement"):
            make_server(runtime_placement="psychic")

    def test_runtime_backend_end_to_end(self):
        server = make_server(
            runtime_placement="partition", n_gpus=4,
            scaling_efficiency=1.0,
        )
        apps = self.register_two(server)
        records = server.run(max_steps=10)
        assert len(records) == 10
        total_runs = sum(len(a.history) for a in server.apps)
        assert total_runs == 10
        for app in apps:
            assert app.best_accuracy > 0.5
        # The concurrent timeline is on the shared clock and log.
        assert server.clock.now > 0.0
        assert len(server.log.filter(EventKind.JOB_FINISHED)) == 10
        # Per-completion events (oracle-level, {user, model, reward})
        # plus the app-level improvement events the synchronous
        # backend also emits ({app, candidate, accuracy}).
        returned = server.log.filter(EventKind.MODEL_RETURNED)
        assert len([e for e in returned if "user" in e.payload]) == 10
        improvements = [e for e in returned if "app" in e.payload]
        assert improvements
        assert {"app", "candidate", "accuracy"} <= set(
            improvements[0].payload
        )

    def test_runtime_backend_overlaps_jobs(self):
        server = make_server(
            runtime_placement="dedicated", n_gpus=4, strategy="round_robin",
        )
        self.register_two(server)
        server.run(max_steps=8)
        jobs = server._runtime_oracle.finished_jobs()
        assert len(jobs) == 8
        spans = sorted((j.start_time, j.end_time) for j in jobs)
        assert any(
            later_start < earlier_end
            for (_, earlier_end), (later_start, _) in zip(spans, spans[1:])
        )

    def test_runtime_backend_cost_budget(self):
        server = make_server(runtime_placement="single", n_gpus=2)
        self.register_two(server)
        records = server.run(cost_budget=0.05)
        assert records
        assert server.scheduler.total_cost > 0.0
