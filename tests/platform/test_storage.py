"""Tests for the shared example store (feed/refine backing)."""

import numpy as np
import pytest

from repro.platform.storage import ExampleStore, SharedStorage


class TestExampleStore:
    def test_add_and_len(self):
        store = ExampleStore("app")
        eid = store.add(np.ones(4), np.array([1.0, 0.0]))
        assert len(store) == 1
        assert eid == 0

    def test_add_pairs(self):
        store = ExampleStore()
        ids = store.add_pairs([(np.ones(2), np.zeros(2))] * 3)
        assert ids == [0, 1, 2]

    def test_enable_disable(self):
        store = ExampleStore()
        store.add(np.ones(2), np.zeros(1))
        store.add(np.ones(2), np.zeros(1))
        store.set_enabled(0, False)
        assert store.n_enabled == 1
        assert not store.get(0).enabled
        store.set_enabled(0, True)
        assert store.n_enabled == 2

    def test_enabled_arrays_filters(self):
        store = ExampleStore()
        store.add(np.array([1.0, 2.0]), np.array([1.0]))
        store.add(np.array([3.0, 4.0]), np.array([0.0]))
        store.set_enabled(0, False)
        X, Y = store.enabled_arrays()
        assert X.shape == (1, 2)
        assert np.allclose(X[0], [3.0, 4.0])

    def test_enabled_arrays_flattens(self):
        store = ExampleStore()
        store.add(np.ones((2, 2)), np.ones((1, 3)))
        X, Y = store.enabled_arrays()
        assert X.shape == (1, 4)
        assert Y.shape == (1, 3)

    def test_empty_enabled_rejected(self):
        store = ExampleStore("empty")
        with pytest.raises(ValueError, match="enabled"):
            store.enabled_arrays()

    def test_bad_id_rejected(self):
        store = ExampleStore()
        with pytest.raises(IndexError):
            store.get(0)

    def test_summary(self):
        store = ExampleStore()
        store.add(np.ones(1), np.ones(1))
        store.add(np.ones(1), np.ones(1))
        store.set_enabled(1, False)
        assert store.summary() == {
            "total": 2, "enabled": 1, "disabled": 1
        }


class TestSharedStorage:
    def test_create_and_get(self):
        shared = SharedStorage()
        store = shared.create("app1")
        assert shared.get("app1") is store
        assert "app1" in shared

    def test_duplicate_rejected(self):
        shared = SharedStorage()
        shared.create("app1")
        with pytest.raises(ValueError, match="already"):
            shared.create("app1")

    def test_missing_rejected(self):
        with pytest.raises(KeyError):
            SharedStorage().get("ghost")

    def test_totals(self):
        shared = SharedStorage()
        a = shared.create("a")
        b = shared.create("b")
        a.add(np.ones(1), np.ones(1))
        b.add_pairs([(np.ones(1), np.ones(1))] * 2)
        assert shared.total_examples() == 3
        assert shared.names() == ["a", "b"]
