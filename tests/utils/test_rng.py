"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    RandomState,
    derive_seed,
    permutation_without_replacement,
    spawn_rngs,
)


class TestRandomState:
    def test_none_gives_generator(self):
        assert isinstance(RandomState(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = RandomState(42).integers(0, 1000, 10)
        b = RandomState(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomState(1).integers(0, 10**9)
        b = RandomState(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert RandomState(gen) is gen


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "fig9", 3) == derive_seed(42, "fig9", 3)

    def test_label_sensitivity(self):
        assert derive_seed(42, "fig9", 3) != derive_seed(42, "fig9", 4)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_label_path_not_concatenation(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_returns_nonnegative_int(self):
        value = derive_seed(7, "anything")
        assert isinstance(value, int)
        assert value >= 0


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent_and_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(0, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(0, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2


class TestPermutationWithoutReplacement:
    def test_full_permutation(self):
        result = permutation_without_replacement(
            np.random.default_rng(0), range(10)
        )
        assert sorted(result) == list(range(10))

    def test_subset_is_distinct(self):
        result = permutation_without_replacement(
            np.random.default_rng(0), range(10), size=4
        )
        assert len(result) == 4
        assert len(set(result)) == 4

    def test_oversample_rejected(self):
        with pytest.raises(ValueError):
            permutation_without_replacement(
                np.random.default_rng(0), range(3), size=4
            )
