"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
    check_type,
    check_vector,
)


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type(3, int, "x") == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("3", int, "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="finite"):
            check_positive(bad, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_one_sided(self):
        assert check_in_range(5.0, "x", low=1.0) == 5.0
        with pytest.raises(ValueError):
            check_in_range(0.5, "x", low=1.0)


class TestCheckMatrix:
    def test_coerces_to_float_2d(self):
        out = check_matrix([[1, 2], [3, 4]], "m")
        assert out.dtype == float
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix([1, 2, 3], "m")

    def test_square_constraint(self):
        with pytest.raises(ValueError, match="square"):
            check_matrix(np.ones((2, 3)), "m", square=True)

    def test_shape_constraint_partial(self):
        out = check_matrix(np.ones((2, 3)), "m", shape=(2, None))
        assert out.shape == (2, 3)
        with pytest.raises(ValueError):
            check_matrix(np.ones((2, 3)), "m", shape=(3, None))

    def test_rejects_nan(self):
        bad = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError, match="finite"):
            check_matrix(bad, "m")


class TestCheckVector:
    def test_length_constraint(self):
        out = check_vector([1.0, 2.0], "v", size=2)
        assert out.shape == (2,)
        with pytest.raises(ValueError):
            check_vector([1.0, 2.0], "v", size=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_vector(np.ones((2, 2)), "v")
