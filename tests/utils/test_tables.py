"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import (
    ascii_series,
    ascii_table,
    format_float,
    sparkline,
)


class TestFormatFloat:
    def test_default_precision(self):
        assert format_float(0.123456) == "0.1235"

    def test_custom_precision(self):
        assert format_float(1.0, 2) == "1.00"


class TestAsciiTable:
    def test_contains_headers_and_cells(self):
        out = ascii_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "a" in out and "b" in out
        assert "2.5000" in out
        assert "x" in out

    def test_title_rendered(self):
        out = ascii_table(["a"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_alignment_width(self):
        out = ascii_table(["col"], [["longvalue"]])
        lines = out.splitlines()
        # header line padded to widest cell
        assert len(lines[0]) == len("longvalue")

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            ascii_table(["a", "b"], [[1]])


class TestAsciiSeries:
    def test_basic_rendering(self):
        out = ascii_series(
            [0.0, 1.0, 2.0],
            {"loss": [0.3, 0.2, 0.1]},
            x_label="t",
        )
        assert "t" in out and "loss" in out
        assert "0.1000" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            ascii_series([0.0, 1.0], {"s": [1.0]})

    def test_thinning_keeps_endpoints(self):
        x = list(range(100))
        out = ascii_series(x, {"y": [float(v) for v in x]}, max_rows=10)
        assert "99.0000" in out  # the final point survives thinning
        assert "0.0000" in out


class TestSparkline:
    def test_constant_series(self):
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"

    def test_monotone_series_ends_high(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_width_cap(self):
        assert len(sparkline(list(range(200)), width=40)) == 40
