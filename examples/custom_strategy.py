"""Plugging a custom scheduling policy into the framework.

The scheduler core is policy-agnostic: a user picker is any object with
``pick(scheduler) -> tenant index`` (plus optional ``notify``/``reset``
hooks).  This example implements a "stingiest-first" picker —
prioritise the tenant that has consumed the least cost so far, a
budget-fairness policy the paper lists as future work ("hard rules
such as each user's deadline") — and races it against the built-ins.

Run:  python examples/custom_strategy.py
"""

import numpy as np

from repro.core import (
    AlgorithmOneBeta,
    GPUCBPicker,
    HybridPicker,
    MatrixOracle,
    MultiTenantScheduler,
    RoundRobinPicker,
)
from repro.core.user_picking import UserPicker
from repro.datasets import load_deeplearning
from repro.gp import empirical_model_covariance
from repro.utils.tables import ascii_table


class LeastSpendPicker(UserPicker):
    """Serve the tenant with the smallest total cost consumed so far.

    This enforces *budget* fairness instead of ROUNDROBIN's *turn*
    fairness: a tenant whose models are cheap gets served more often.
    """

    def pick(self, scheduler):
        spend = [t.total_cost for t in scheduler.tenants]
        return int(np.argmin(spend))


def run_strategy(dataset, user_picker, budget):
    oracle = MatrixOracle(
        dataset.quality, dataset.cost, noise_std=0.02, seed=11
    )
    cov = empirical_model_covariance(dataset.quality)
    prior_mean = dataset.quality.mean(axis=0)
    pickers = [
        GPUCBPicker(
            cov,
            AlgorithmOneBeta(dataset.n_models),
            oracle.costs(i),
            noise=0.05,
            prior_mean=prior_mean,
        )
        for i in range(dataset.n_users)
    ]
    scheduler = MultiTenantScheduler(oracle, pickers, user_picker)
    result = scheduler.run(cost_budget=budget)

    best = np.zeros(dataset.n_users)
    for record in result.records:
        quality = dataset.quality[record.user, record.arm]
        best[record.user] = max(best[record.user], quality)
    losses = dataset.best_qualities() - best
    spend = np.array([t.total_cost for t in scheduler.tenants])
    return {
        "avg loss": float(np.mean(losses)),
        "worst user loss": float(np.max(losses)),
        "spend stddev": float(np.std(spend)),
        "steps": result.n_steps,
    }


dataset = load_deeplearning(seed=0).subset_users(range(10))
budget = 0.15 * dataset.total_cost()

rows = []
for name, picker in [
    ("easeml (hybrid)", HybridPicker()),
    ("round_robin", RoundRobinPicker()),
    ("least_spend (custom)", LeastSpendPicker()),
]:
    stats = run_strategy(dataset, picker, budget)
    rows.append(
        [
            name,
            stats["avg loss"],
            stats["worst user loss"],
            stats["spend stddev"],
            stats["steps"],
        ]
    )

print(
    ascii_table(
        [
            "user picker",
            "avg loss",
            "worst user loss",
            "per-user spend stddev",
            "models trained",
        ],
        rows,
        title=f"custom scheduling policy on DEEPLEARNING "
        f"(budget = 15% of total cost)",
    )
)
print(
    "\nnote: least_spend equalises budget (small spend stddev) but "
    "pays for it in global accuracy loss — the trade-off the paper's "
    "'global satisfaction' objective formalises."
)
