"""The multi-tenant service, end to end over a real socket.

Starts the versioned v1 HTTP service in-process, onboards two tenants
with their own auth tokens, and drives them through the SDK: declare
apps, feed examples, submit *asynchronous* training (job handles come
back immediately), poll the handles while the shared cluster
interleaves the two tenants' jobs, and serve predictions.  Also shows
the typed error model — the service answers failures with ApiError
codes, never raw tracebacks.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

from repro.ml import TaskSpec, make_task
from repro.service import ApiError, EaseMLClient, ServiceGateway
from repro.service.http import serve_background

# ----------------------------------------------------------------------
# 1. Operator side: start the service and mint tenant tokens.
#    (`python -m repro serve` does exactly this from the shell.)
# ----------------------------------------------------------------------
gateway = ServiceGateway(placement="partition", n_gpus=4, seed=0)
alice_token = gateway.create_tenant("alice")
bob_token = gateway.create_tenant("bob")
server, _ = serve_background(gateway)
print(f"service listening on {server.url} (API v1)")

# ----------------------------------------------------------------------
# 2. Tenant side: each tenant declares an app and feeds supervision
#    through its own client.
# ----------------------------------------------------------------------
alice = EaseMLClient(server.url, alice_token)
bob = EaseMLClient(server.url, bob_token)

alice.register_app(
    "moons", "{input: {[Tensor[2]], []}, output: {[Tensor[2]], []}}"
)
bob.register_app(
    "blobs", "{input: {[Tensor[2]], []}, output: {[Tensor[3]], []}}"
)
Xa, ya = make_task(TaskSpec("moons", 80, 0.3, seed=0))
Xb, yb = make_task(TaskSpec("blobs", 80, 0.3, seed=1))
alice.feed("moons", Xa.tolist(), [int(v) for v in ya])
bob.feed("blobs", Xb.tolist(), [int(v) for v in yb])

# ----------------------------------------------------------------------
# 3. Async training: handles return immediately; completions land out
#    of submission order as the cluster schedules both tenants.
# ----------------------------------------------------------------------
handles_a = alice.submit_training("moons", steps=3)
handles_b = bob.submit_training("blobs", steps=3)
print(f"alice submitted {[h.job_id for h in handles_a]}")
print(f"bob submitted   {[h.job_id for h in handles_b]}")

for status in alice.wait_all(handles_a):
    print(f"alice {status.job_id}: {status.candidate} "
          f"acc={status.accuracy:.3f} improved={status.improved}")
for status in bob.wait_all(handles_b):
    print(f"bob   {status.job_id}: {status.candidate} "
          f"acc={status.accuracy:.3f} improved={status.improved}")

# ----------------------------------------------------------------------
# 4. Inference with the best model so far.
# ----------------------------------------------------------------------
print(f"alice infer -> {alice.infer('moons', Xa[0].tolist()).prediction} "
      f"(true {int(ya[0])})")
print(f"bob infer   -> {bob.infer('blobs', Xb[0].tolist()).prediction} "
      f"(true {int(yb[0])})")

# ----------------------------------------------------------------------
# 5. The typed error model: tenants are isolated, failures are coded.
# ----------------------------------------------------------------------
try:
    bob.app_status("moons")  # alice's app — invisible to bob
except ApiError as error:
    print(f"bob reading alice's app -> {error.code.value}: {error}")

server.shutdown()
server.server_close()
