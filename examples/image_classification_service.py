"""The image-classification service (trace-driven, Section 5.2).

Replays the DEEPLEARNING workload: 22 users, each matched to the eight
CNN architectures, scheduled on a simulated 24-GPU single-device pool.
Compares ease.ml's scheduler against the two heuristics its users
relied on before (most-cited-first, most-recent-first) and prints the
average accuracy-loss curve and the time-to-quality speedups.

Run:  python examples/image_classification_service.py
"""

import numpy as np

from repro.datasets import load_deeplearning
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.figures import FIG9_THRESHOLDS
from repro.platform import generate_candidates, match_template, parse_program
from repro.utils.tables import ascii_table, sparkline

# ----------------------------------------------------------------------
# What a user submits: the schema of Figure 1.
# ----------------------------------------------------------------------
program = parse_program(
    "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[3]], []}}"
)
template = match_template(program)
candidates = generate_candidates(program, include_normalization=False)
print(f"user program:  {program.render()}")
print(f"workload kind: {template.kind.value}")
print(f"candidates:    {', '.join(c.name for c in candidates)}")

# ----------------------------------------------------------------------
# The multi-tenant experiment (Figure 9 protocol): 10 test users,
# budget = 10% of the total runtime, repeated over random splits.
# ----------------------------------------------------------------------
dataset = load_deeplearning(seed=0)
config = ExperimentConfig(
    n_trials=20,
    budget_fraction=0.10,
    cost_aware=True,
    noise_std=0.02,
    n_checkpoints=81,
    base_seed=0,
)
result = run_experiment(
    dataset, ["easeml", "most_cited", "most_recent"], config
)

print()
print(result.render(max_rows=12))

print("\nloss-curve sparklines (lower is better):")
for name, strategy in result.strategies.items():
    print(f"  {name:<12} {sparkline(strategy.mean_curve)}")

rows = []
for competitor, (ratio, threshold) in result.speedups(
    thresholds=FIG9_THRESHOLDS
).items():
    rows.append([competitor, ratio, threshold])
print()
print(
    ascii_table(
        ["competitor", "max speedup (x)", "at loss threshold"],
        rows,
        title="time-to-quality speedup of ease.ml (paper: up to 9.8x)",
        precision=2,
    )
)
