"""Tour of the declarative surface: DSL, templates, normalization (§2).

Shows how every workload class of Figure 4 is declared in the Figure 2
grammar, which candidate models each one matches, and how the automatic
normalization family of Figure 5 expands the candidate set for
image-shaped data with extreme dynamic range (the astrophysics
motivation).

Run:  python examples/declarative_workloads.py
"""

import numpy as np

from repro.platform import (
    generate_candidates,
    match_template,
    parse_program,
)
from repro.platform.normalization import (
    default_normalization_family,
    prescale_unit,
)
from repro.utils.tables import ascii_table

PROGRAMS = {
    "image classification": (
        "{input: {[Tensor[256, 256, 3]], []}, output: {[Tensor[3]], []}}"
    ),
    "image recovery": (
        "{input: {[Tensor[64, 64, 3]], []}, "
        "output: {[Tensor[64, 64, 3]], []}}"
    ),
    "time-series classification": (
        "{input: {[Tensor[10]], [next]}, output: {[Tensor[4]], []}}"
    ),
    "time-series translation": (
        "{input: {[Tensor[10]], [next]}, output: {[Tensor[10]], [next]}}"
    ),
    "tree classification": (
        "{input: {[Tensor[8]], [left, right]}, output: {[Tensor[2]], []}}"
    ),
    "general classification": (
        "{input: {[Tensor[7]], []}, output: {[Tensor[3]], []}}"
    ),
    "general auto-encoder": (
        "{input: {[Tensor[4, 4]], []}, output: {[Tensor[2, 2]], []}}"
    ),
}

rows = []
for label, text in PROGRAMS.items():
    program = parse_program(text)
    template = match_template(program)
    candidates = generate_candidates(program)
    rows.append(
        [
            label,
            template.kind.value,
            len(candidates),
            ", ".join(template.models[:3])
            + (", ..." if len(template.models) > 3 else ""),
        ]
    )
print(
    ascii_table(
        ["declared task", "matched template", "#candidates", "models"],
        rows,
        title="Figure 4 template matching (top-to-bottom, most "
        "specific first)",
    )
)

# ----------------------------------------------------------------------
# Automatic normalization: a galaxy-like tensor spanning ten orders of
# magnitude becomes usable after f_k; each k is one extra candidate.
# ----------------------------------------------------------------------
print("\nautomatic normalization (Figure 5):")
rng = np.random.default_rng(0)
galaxy = 10.0 ** rng.uniform(-5, 5, size=(8,))  # huge dynamic range
unit = prescale_unit(galaxy)
print(f"  raw range: [{galaxy.min():.2e}, {galaxy.max():.2e}]")
for func in default_normalization_family():
    out = func(unit)
    print(
        f"  f_k(x) with k={func.k:<4} peaks at x={func.peak:.3f}; "
        f"sample output: {np.round(out[:4], 3)}"
    )

image_program = parse_program(PROGRAMS["image classification"])
with_norm = generate_candidates(image_program)
without = generate_candidates(image_program, include_normalization=False)
print(
    f"\nimage candidates without normalization: {len(without)}; "
    f"with the k-family: {len(with_norm)} "
    f"(each (model, k) pair is one candidate)"
)
