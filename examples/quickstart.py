"""Quickstart: the ease.ml user experience in five steps.

This is the paper's introduction scenario (Figures 1 and 3): declare a
machine-learning task as a function approximator, feed examples, let
the shared service explore candidate models, and serve predictions
with the best model found so far.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ml import TaskSpec, make_task
from repro.platform import EaseMLServer, program_from_shapes

# ----------------------------------------------------------------------
# 1. Declare the task.  The user only states input/output shapes —
#    here, 2-feature vectors mapping to 3 classes.  (The paper's image
#    users write Input = [256, 256, 3], Output = [3].)
# ----------------------------------------------------------------------
server = EaseMLServer(seed=0)
app = server.register_app(program_from_shapes([2], [3]), name="myapp")
print(f"declared app {app.name!r}: {app.program.render()}")
print(f"matched workload template: {app.template.kind.value}")
print(f"candidate models: {', '.join(app.candidate_names()[:6])}, ...")

# ----------------------------------------------------------------------
# 2. Feed supervision — input/output example pairs.  We hold the last
#    ten points back to play the role of future inference requests.
# ----------------------------------------------------------------------
X_all, y_all = make_task(TaskSpec("blobs", 210, difficulty=0.3, seed=1))
X, y = X_all[:-10], y_all[:-10]
X_new, y_new = X_all[-10:], y_all[-10:]
ids = app.feed(list(X), [int(label) for label in y])
print(f"\nfed {len(ids)} labelled examples")

# ----------------------------------------------------------------------
# 3. (Optional) refine: inspect fed examples and disable noisy ones.
# ----------------------------------------------------------------------
app.set_example_enabled(ids[0], False)  # pretend example 0 was mislabelled
print(f"refine: {app.store.n_enabled} examples enabled after cleanup")

# ----------------------------------------------------------------------
# 4. Let the service explore.  ease.ml's scheduler (HYBRID user
#    picking + cost-aware GP-UCB model picking) trains candidates and
#    always keeps the best model on hand.
# ----------------------------------------------------------------------
server.run(max_steps=8)
print("\nexploration report (every improvement, like Figure 3d):")
for outcome in app.report():
    print(
        f"  step {outcome.step:>2}: {outcome.candidate:<22} "
        f"accuracy {outcome.accuracy:.3f}  (cost {outcome.cost:.3f})"
    )
print(
    f"best model so far: {app.best_candidate} "
    f"at accuracy {app.best_accuracy:.3f}"
)

# ----------------------------------------------------------------------
# 5. Infer with the best model so far.
# ----------------------------------------------------------------------
predictions = [app.infer(x) for x in X_new]
agreement = float(np.mean(np.array(predictions) == y_new))
print(f"\ninfer on 10 fresh points -> {predictions}")
print(f"agreement with true labels: {agreement:.0%}")
