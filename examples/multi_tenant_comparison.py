"""Multi-tenant scheduling strategies on synthetic workloads (§5.3).

Generates a SYN dataset from the Appendix-B model, then races every
scheduling strategy in the registry — including the FCFS strawman whose
Θ(T) regret motivates the whole paper — under the cost-aware protocol.

Run:  python examples/multi_tenant_comparison.py
"""

from repro.datasets import generate_syn
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.metrics import area_under_loss
from repro.utils.tables import ascii_table

dataset = generate_syn(0.5, 1.0, n_users=60, n_models=40, seed=7)
print(f"dataset: {dataset.name} ({dataset.n_users} users, "
      f"{dataset.n_models} models)")

config = ExperimentConfig(
    n_test_users=8,
    n_trials=10,
    budget_fraction=0.4,
    cost_aware=True,
    noise_std=0.05,
    base_seed=3,
)
strategies = [
    "easeml",        # HYBRID + cost-aware GP-UCB (the paper's default)
    "greedy",        # Algorithm 2 without the hybrid fallback
    "round_robin",   # Theorem 2's fair baseline
    "random",        # uniform user sampling
    "fcfs",          # the Section 4.1 pathology
    "most_cited",    # heuristic model picking
    "random_model",  # uniform model picking
]
result = run_experiment(dataset, strategies, config)

grid = result.grid
rows = []
for name, strategy in sorted(
    result.strategies.items(),
    key=lambda kv: area_under_loss(grid, kv[1].mean_curve),
):
    mid = int(0.5 * (len(grid) - 1))
    rows.append(
        [
            name,
            area_under_loss(grid, strategy.mean_curve),
            strategy.mean_curve[mid],
            strategy.final_mean_loss,
            strategy.worst_curve[-1],
        ]
    )
print()
print(
    ascii_table(
        [
            "strategy",
            "AUC(mean loss)",
            "loss @50% budget",
            "final mean loss",
            "final worst-case",
        ],
        rows,
        title="strategies ranked by area under the mean loss curve",
    )
)

best = rows[0][0]
worst = rows[-1][0]
print(f"\nbest strategy: {best}; worst: {worst} "
      f"(the paper predicts easeml/greedy on top and fcfs at the bottom)")
