"""repro — a reproduction of "Ease.ml: Towards Multi-tenant Resource
Sharing for Machine Learning Workloads" (Li, Zhong, Liu, Wu, Zhang;
VLDB 2018).

Public surface
--------------
The subpackages are importable directly; the names re-exported here
cover the common workflow:

1. declare apps / load datasets (:mod:`repro.platform`,
   :mod:`repro.datasets`),
2. schedule multi-tenant model selection (:mod:`repro.core`),
3. execute on the simulated cluster or live trainers
   (:mod:`repro.engine`, :mod:`repro.ml`), synchronously or on the
   event-driven concurrent runtime (:mod:`repro.runtime`),
4. reproduce the paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        EaseMLServer, program_from_shapes, load_deeplearning,
        ExperimentConfig, run_experiment,
    )

    # Trace-driven multi-tenant scheduling on the DEEPLEARNING matrix:
    result = run_experiment(
        load_deeplearning(),
        ["easeml", "most_cited", "most_recent"],
        ExperimentConfig(n_trials=5, cost_aware=True,
                         budget_fraction=0.10),
    )
    print(result.render())
"""

from repro.core import (
    GPUCB,
    UCB1,
    AlgorithmOneBeta,
    FCFSPicker,
    GPUCBPicker,
    GreedyPicker,
    HybridPicker,
    MatrixOracle,
    MostCitedPicker,
    MostRecentPicker,
    MultiTenantRegretTracker,
    MultiTenantScheduler,
    RandomUserPicker,
    RoundRobinPicker,
    SingleTenantRegretTracker,
    TheoremBeta,
)
from repro.datasets import (
    ModelSelectionDataset,
    generate_syn,
    load_179classifier,
    load_benchmark_suite,
    load_deeplearning,
)
from repro.engine import ClusterOracle, GPUPool, TraceTrainer
from repro.experiments import (
    ExperimentConfig,
    run_experiment,
)
from repro.gp import RBF, ConstantKernel, FiniteArmGP, Matern
from repro.ml import default_zoo
from repro.platform import (
    EaseMLServer,
    parse_program,
    program_from_shapes,
)
from repro.runtime import (
    AsyncClusterOracle,
    ClusterRuntime,
    WorkloadGenerator,
    WorkloadTrace,
    diff_event_logs,
    first_divergence,
    make_placement,
    replay_trace,
)
from repro.service import (
    API_VERSION,
    ApiError,
    ApiErrorCode,
    EaseMLClient,
    ServiceGateway,
    TenantQuota,
)

__version__ = "1.5.0"

__all__ = [
    "__version__",
    # core
    "GPUCB",
    "UCB1",
    "AlgorithmOneBeta",
    "TheoremBeta",
    "MatrixOracle",
    "MultiTenantScheduler",
    "GPUCBPicker",
    "MostCitedPicker",
    "MostRecentPicker",
    "FCFSPicker",
    "RoundRobinPicker",
    "RandomUserPicker",
    "GreedyPicker",
    "HybridPicker",
    "SingleTenantRegretTracker",
    "MultiTenantRegretTracker",
    # datasets
    "ModelSelectionDataset",
    "load_deeplearning",
    "load_179classifier",
    "load_benchmark_suite",
    "generate_syn",
    # engine
    "ClusterOracle",
    "GPUPool",
    "TraceTrainer",
    # runtime
    "ClusterRuntime",
    "AsyncClusterOracle",
    "WorkloadGenerator",
    "WorkloadTrace",
    "make_placement",
    "replay_trace",
    "first_divergence",
    "diff_event_logs",
    # service
    "API_VERSION",
    "ApiError",
    "ApiErrorCode",
    "ServiceGateway",
    "TenantQuota",
    "EaseMLClient",
    # gp
    "FiniteArmGP",
    "RBF",
    "Matern",
    "ConstantKernel",
    # ml
    "default_zoo",
    # platform
    "EaseMLServer",
    "parse_program",
    "program_from_shapes",
    # experiments
    "ExperimentConfig",
    "run_experiment",
]
