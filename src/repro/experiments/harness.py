"""The experiment harness: run strategies, collect loss curves.

One *trial* = one random train/test user split, one prior built from
the training users, and one scheduler run per strategy on the *same*
split and the same observation-noise seed — so strategy differences
are never split artefacts.  :func:`run_experiment` repeats trials and
aggregates the average and worst-case accuracy-loss curves the paper
plots in every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.multitenant import MultiTenantScheduler, RunResult
from repro.core.oracles import MatrixOracle
from repro.core.regret import accuracy_loss_curve
from repro.datasets.base import ModelSelectionDataset
from repro.experiments.metrics import max_speedup, summarize_speedups
from repro.experiments.protocol import (
    ExperimentConfig,
    build_prior,
    make_model_picker,
    make_user_picker,
)
from repro.utils.rng import derive_seed
from repro.utils.tables import ascii_series


@dataclass
class StrategyResult:
    """Aggregated loss curves for one strategy."""

    name: str
    grid: np.ndarray  # budget fractions in [0, 1]
    trial_curves: np.ndarray  # (n_trials, n_checkpoints)

    @property
    def mean_curve(self) -> np.ndarray:
        """Average accuracy loss across trials (figures' column a)."""
        return self.trial_curves.mean(axis=0)

    @property
    def worst_curve(self) -> np.ndarray:
        """Worst-case accuracy loss across trials (column b)."""
        return self.trial_curves.max(axis=0)

    @property
    def final_mean_loss(self) -> float:
        return float(self.mean_curve[-1])


@dataclass
class ExperimentResult:
    """All strategies on one dataset under one config."""

    dataset_name: str
    config: ExperimentConfig
    strategies: Dict[str, StrategyResult]

    @property
    def x_label(self) -> str:
        return "% of total cost" if self.config.cost_aware else "% of runs"

    @property
    def grid(self) -> np.ndarray:
        first = next(iter(self.strategies.values()))
        return first.grid

    def mean_curves(self) -> Dict[str, np.ndarray]:
        return {n: r.mean_curve for n, r in self.strategies.items()}

    def worst_curves(self) -> Dict[str, np.ndarray]:
        return {n: r.worst_curve for n, r in self.strategies.items()}

    def speedups(
        self,
        reference: str = "easeml",
        *,
        worst_case: bool = False,
        thresholds: Optional[Sequence[float]] = None,
    ) -> Dict[str, Tuple[float, float]]:
        """Max speedup of ``reference`` vs each competitor."""
        curves = self.worst_curves() if worst_case else self.mean_curves()
        return summarize_speedups(
            self.grid, curves, reference, thresholds
        )

    def render(self, *, worst_case: bool = False, max_rows: int = 15) -> str:
        curves = self.worst_curves() if worst_case else self.mean_curves()
        title = (
            f"{self.dataset_name} — "
            f"{'worst-case' if worst_case else 'average'} accuracy loss "
            f"vs {self.x_label}"
        )
        return ascii_series(
            100.0 * self.grid,
            {k: v for k, v in curves.items()},
            x_label=self.x_label,
            title=title,
            max_rows=max_rows,
        )


def _loss_series(
    result: RunResult,
    test_quality: np.ndarray,
    *,
    cost_axis: bool,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """(step positions, avg loss after each step, initial loss)."""
    n_users = test_quality.shape[0]
    a_star = test_quality.max(axis=1)
    best = np.zeros(n_users)
    losses = np.empty(result.n_steps)
    for i, record in enumerate(result.records):
        quality = test_quality[record.user, record.arm]
        if quality > best[record.user]:
            best[record.user] = quality
        losses[i] = float(np.mean(a_star - best))
    positions = (
        result.cumulative_costs()
        if cost_axis
        else np.arange(1, result.n_steps + 1, dtype=float)
    )
    return positions, losses, float(np.mean(a_star))


def run_trial(
    dataset: ModelSelectionDataset,
    strategies: Sequence[str],
    config: ExperimentConfig,
    trial_index: int,
) -> Dict[str, np.ndarray]:
    """One split, all strategies; returns checkpoint loss curves."""
    split_seed = derive_seed(config.base_seed, "split", trial_index)
    train_ds, test_ds = dataset.split_users(
        min(config.n_test_users, dataset.n_users - 1), seed=split_seed
    )
    prior_seed = derive_seed(config.base_seed, "prior", trial_index)
    prior_cov, prior_mean, gp_noise = build_prior(
        train_ds.quality, config, prior_seed
    )

    if config.cost_aware:
        budget = config.budget_fraction * float(np.sum(test_ds.cost))
        max_steps: Optional[int] = None
        cost_budget: Optional[float] = budget
    else:
        budget = float(
            max(1, int(config.budget_fraction * test_ds.n_users
                       * test_ds.n_models))
        )
        max_steps = int(budget)
        cost_budget = None

    grid = np.linspace(0.0, 1.0, config.n_checkpoints)
    out: Dict[str, np.ndarray] = {}
    for strategy in strategies:
        noise_seed = derive_seed(
            config.base_seed, "noise", trial_index, strategy
        )
        oracle = MatrixOracle(
            test_ds.quality,
            test_ds.cost if config.cost_aware else None,
            noise_std=config.noise_std,
            seed=noise_seed,
        )
        picker_seed = derive_seed(
            config.base_seed, "picker", trial_index, strategy
        )
        pickers = [
            make_model_picker(
                strategy,
                test_ds,
                user,
                prior_cov,
                prior_mean,
                gp_noise,
                config,
                seed=derive_seed(picker_seed, user),
            )
            for user in range(test_ds.n_users)
        ]
        user_picker = make_user_picker(strategy, config, seed=picker_seed)
        scheduler = MultiTenantScheduler(
            oracle,
            pickers,
            user_picker,
            clamp_potential=config.clamp_potential,
        )
        result = scheduler.run(max_steps=max_steps, cost_budget=cost_budget)
        positions, losses, initial = _loss_series(
            result, test_ds.quality, cost_axis=config.cost_aware
        )
        out[strategy] = accuracy_loss_curve(
            grid * budget, positions, losses, initial_loss=initial
        )
    return out


def run_experiment(
    dataset: ModelSelectionDataset,
    strategies: Sequence[str],
    config: ExperimentConfig,
) -> ExperimentResult:
    """Repeat :func:`run_trial` ``config.n_trials`` times and aggregate."""
    if not strategies:
        raise ValueError("at least one strategy is required")
    grid = np.linspace(0.0, 1.0, config.n_checkpoints)
    per_strategy: Dict[str, List[np.ndarray]] = {s: [] for s in strategies}
    for trial in range(config.n_trials):
        curves = run_trial(dataset, strategies, config, trial)
        for strategy in strategies:
            per_strategy[strategy].append(curves[strategy])
    results = {
        strategy: StrategyResult(
            name=strategy,
            grid=grid,
            trial_curves=np.vstack(curve_list),
        )
        for strategy, curve_list in per_strategy.items()
    }
    return ExperimentResult(
        dataset_name=dataset.name, config=config, strategies=results
    )
