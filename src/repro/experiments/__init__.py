"""Experiment protocol, metrics and per-figure reproduction drivers.

The paper's protocol (Sections 5.2–5.3, Appendix A):

* sample ``n_test`` users as the test set; the remaining users are the
  *training set* whose quality vectors define the model kernel;
* run each scheduling strategy on the test users for a fixed budget
  (a fraction of the number of runs when cost-oblivious, a fraction of
  total runtime when cost-aware);
* repeat with 50 random splits; report the *average* and the
  *worst-case* accuracy loss across repetitions at every point of the
  budget axis.

:mod:`repro.experiments.figures` packages one driver per paper figure
(F6b and F8–F15); the benchmark modules under ``benchmarks/`` call
those drivers and print the series.
"""

from repro.experiments.harness import (
    ExperimentResult,
    StrategyResult,
    run_experiment,
    run_trial,
)
from repro.experiments.metrics import (
    max_speedup,
    speedup_at,
    time_to_threshold,
)
from repro.experiments.protocol import (
    STRATEGY_NAMES,
    ExperimentConfig,
    build_prior,
    make_model_picker,
    make_user_picker,
)

__all__ = [
    "ExperimentConfig",
    "STRATEGY_NAMES",
    "build_prior",
    "make_user_picker",
    "make_model_picker",
    "run_trial",
    "run_experiment",
    "StrategyResult",
    "ExperimentResult",
    "time_to_threshold",
    "speedup_at",
    "max_speedup",
]
