"""Serialisation of experiment results (JSON and CSV).

A service operator wants scheduler comparisons to land somewhere a
dashboard can read; these helpers turn :class:`ExperimentResult` and
:class:`FigureReport` objects into plain dictionaries, JSON files and
CSV curve tables, and back (for results; figure reports are write-only
summaries).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.experiments.harness import ExperimentResult, StrategyResult
from repro.experiments.protocol import ExperimentConfig

PathLike = Union[str, Path]


def result_to_dict(result: ExperimentResult) -> Dict[str, object]:
    """Plain-dict form of an :class:`ExperimentResult` (JSON-safe)."""
    return {
        "dataset_name": result.dataset_name,
        "config": {
            field: getattr(result.config, field)
            for field in ExperimentConfig.__dataclass_fields__
        },
        "strategies": {
            name: {
                "grid": strategy.grid.tolist(),
                "trial_curves": strategy.trial_curves.tolist(),
            }
            for name, strategy in result.strategies.items()
        },
    }


def result_from_dict(data: Dict[str, object]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    config = ExperimentConfig(**data["config"])
    strategies = {
        name: StrategyResult(
            name=name,
            grid=np.asarray(payload["grid"], dtype=float),
            trial_curves=np.asarray(payload["trial_curves"], dtype=float),
        )
        for name, payload in data["strategies"].items()
    }
    return ExperimentResult(
        dataset_name=str(data["dataset_name"]),
        config=config,
        strategies=strategies,
    )


def save_result_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write an experiment result as JSON; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle)
    return path


def load_result_json(path: PathLike) -> ExperimentResult:
    """Read an experiment result written by :func:`save_result_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return result_from_dict(json.load(handle))


def save_curves_csv(result: ExperimentResult, path: PathLike) -> Path:
    """Write the mean/worst loss curves as a tidy CSV.

    Columns: budget_fraction, strategy, mean_loss, worst_loss — one row
    per (checkpoint, strategy), ready for any plotting tool.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["budget_fraction", "strategy", "mean_loss", "worst_loss"]
        )
        grid = result.grid
        for name, strategy in result.strategies.items():
            mean = strategy.mean_curve
            worst = strategy.worst_curve
            for i, fraction in enumerate(grid):
                writer.writerow(
                    [f"{fraction:.6f}", name,
                     f"{mean[i]:.8f}", f"{worst[i]:.8f}"]
                )
    return path
