"""Experiment configuration and the strategy registry.

A *strategy* is a named (user picker, model picker) combination.  The
registry covers everything the paper evaluates:

=================  =======================  ==============================
name               user picking             model picking
=================  =======================  ==============================
``easeml``         HYBRID (§4.4)            GP-UCB (cost-aware if config)
``greedy``         GREEDY (Alg. 2)          GP-UCB
``round_robin``    ROUNDROBIN (§4.2)        GP-UCB
``random``         RANDOM                   GP-UCB
``fcfs``           FCFS (§4.1)              GP-UCB
``most_cited``     ROUNDROBIN               citation-count heuristic
``most_recent``    ROUNDROBIN               publication-date heuristic
``easeml_no_cost`` HYBRID                   GP-UCB, cost term disabled
``random_model``   ROUNDROBIN               uniformly random model
``ucb1``           ROUNDROBIN               classic UCB1 (no kernel)
=================  =======================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.beta import AlgorithmOneBeta, TheoremBeta
from repro.core.model_picking import (
    GPUCBPicker,
    ModelPicker,
    MostCitedPicker,
    MostRecentPicker,
    RandomModelPicker,
    UCB1Picker,
)
from repro.core.user_picking import (
    FCFSPicker,
    GreedyPicker,
    HybridPicker,
    RandomUserPicker,
    RoundRobinPicker,
    UserPicker,
)
from repro.datasets.base import ModelSelectionDataset
from repro.gp.covariance import empirical_model_covariance
from repro.gp.kernels import RBF, ConstantKernel
from repro.gp.likelihood import fit_kernel_pooled
from repro.utils.rng import RandomState, SeedLike

#: Strategies understood by :func:`make_user_picker` / the harness.
STRATEGY_NAMES: Tuple[str, ...] = (
    "easeml",
    "greedy",
    "round_robin",
    "random",
    "fcfs",
    "most_cited",
    "most_recent",
    "easeml_no_cost",
    "random_model",
    "ucb1",
)

#: Strategies whose model picker is GP-UCB.
_GP_STRATEGIES = (
    "easeml",
    "greedy",
    "round_robin",
    "random",
    "fcfs",
    "easeml_no_cost",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the Section 5 protocol.

    Attributes
    ----------
    n_test_users / n_trials:
        Test-set size per split and number of random splits (the paper
        uses 10 and 50).
    budget_fraction:
        Cost-oblivious: fraction of the total number of (user, model)
        runs available; cost-aware: fraction of the test users' total
        runtime.
    cost_aware:
        Whether costs drive both the budget axis and the GP-UCB rule.
    noise_std:
        Observation noise added by the oracle on each draw.
    kernel_mode:
        ``"empirical"`` — shrunk empirical covariance of model columns
        (fast); ``"lml"`` — scaled-RBF kernel over model quality
        vectors with hyperparameters fitted by log-marginal-likelihood
        maximisation (the paper's protocol, slower).
    train_fraction:
        Fraction of the *training users* made available to the kernel
        (Figure 14 sweeps 10% / 50% / 100%).
    hybrid_s:
        The freezing-detection window of the HYBRID picker (paper: 10).
    """

    n_test_users: int = 10
    n_trials: int = 50
    budget_fraction: float = 0.5
    cost_aware: bool = False
    noise_std: float = 0.01
    gp_noise: float = 0.05
    delta: float = 0.1
    kernel_mode: str = "empirical"
    shrinkage: float = 0.1
    train_fraction: float = 1.0
    n_checkpoints: int = 51
    hybrid_s: int = 10
    clamp_potential: bool = False
    base_seed: int = 0
    lml_max_targets: int = 16
    lml_restarts: int = 1
    #: Give each tenant's GP a prior mean equal to the per-model average
    #: training quality.  The paper's convention is a zero-mean GP
    #: (Appendix A); the informed mean is this repository's extension
    #: and is ablated in benchmarks/bench_ablation_prior_mean.py.
    use_prior_mean: bool = True

    def __post_init__(self) -> None:
        if self.kernel_mode not in ("empirical", "lml"):
            raise ValueError(
                "kernel_mode must be 'empirical' or 'lml', "
                f"got {self.kernel_mode!r}"
            )
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
            )
        if not 0.0 < self.train_fraction <= 1.0:
            raise ValueError(
                f"train_fraction must be in (0, 1], got {self.train_fraction}"
            )

    def with_changes(self, **kwargs) -> "ExperimentConfig":
        """Copy with fields replaced."""
        return replace(self, **kwargs)


def build_prior(
    train_quality: np.ndarray,
    config: ExperimentConfig,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, Optional[np.ndarray], float]:
    """Prior (covariance, mean, gp_noise) over models, from training users.

    Appendix A: a model's feature vector is its quality vector on the
    training users.  The prior *mean* is each model's average training
    quality — the transferable part of the multi-task estimate ("the
    performance of a model on other users' data sets defines the
    similarity between models", §5.3.2) — and the covariance captures
    the residual correlation structure.  ``train_fraction < 1`` first
    drops training users (Figure 14's sweep).
    """
    rng = RandomState(seed)
    train_quality = np.asarray(train_quality, dtype=float)
    n_train = train_quality.shape[0]
    kept = max(2, int(round(config.train_fraction * n_train)))
    if kept < n_train:
        rows = rng.choice(n_train, kept, replace=False)
        train_quality = train_quality[rows]
    prior_mean = (
        train_quality.mean(axis=0) if config.use_prior_mean else None
    )

    if config.kernel_mode == "empirical":
        cov = empirical_model_covariance(
            train_quality, shrinkage=config.shrinkage
        )
        return cov, prior_mean, config.gp_noise

    # "lml": scaled RBF over model feature vectors, hyperparameters by
    # pooled log-marginal-likelihood maximisation over (a subsample of)
    # training users.
    features = train_quality.T  # (n_models, n_train_users)
    n_targets = min(config.lml_max_targets, train_quality.shape[0])
    target_rows = rng.choice(
        train_quality.shape[0], n_targets, replace=False
    )
    targets = [train_quality[r] for r in target_rows]
    template = ConstantKernel(0.05, bounds=(1e-4, 1.0)) * RBF(
        1.0, bounds=(1e-2, 1e3)
    )
    fit = fit_kernel_pooled(
        template,
        features,
        targets,
        noise=config.gp_noise,
        n_restarts=config.lml_restarts,
        noise_bounds=(1e-3, 0.5),
        seed=rng,
    )
    cov = fit.kernel(features)
    return 0.5 * (cov + cov.T), prior_mean, fit.noise


def make_user_picker(
    strategy: str, config: ExperimentConfig, seed: SeedLike = None
) -> UserPicker:
    """The user-picking half of a strategy."""
    if strategy not in STRATEGY_NAMES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGY_NAMES}"
        )
    if strategy in ("easeml", "easeml_no_cost"):
        return HybridPicker(s=config.hybrid_s, seed=seed)
    if strategy == "greedy":
        return GreedyPicker(seed=seed)
    if strategy == "random":
        return RandomUserPicker(seed=seed)
    if strategy == "fcfs":
        return FCFSPicker()
    # round_robin, most_cited, most_recent, random_model all schedule
    # users round-robin (Section 5.2: "different users are scheduled
    # with a round-robin scheduler").
    return RoundRobinPicker()


def make_model_picker(
    strategy: str,
    dataset: ModelSelectionDataset,
    user: int,
    prior_cov: np.ndarray,
    prior_mean: Optional[np.ndarray],
    gp_noise: float,
    config: ExperimentConfig,
    seed: SeedLike = None,
) -> ModelPicker:
    """The model-picking half of a strategy, for one tenant.

    Cost-aware GP-UCB pickers use the Theorem 1–3 β schedule
    (``β_t = 2 c* log(π² n K t² / 6δ)``): the ``c*`` factor makes the
    ``sqrt(β_t / c_k)`` rule invariant to the cost unit, exactly as the
    theory requires.
    """
    if strategy not in STRATEGY_NAMES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGY_NAMES}"
        )
    if strategy == "most_cited":
        return MostCitedPicker(dataset.citations())
    if strategy == "most_recent":
        return MostRecentPicker(dataset.years())
    if strategy == "random_model":
        return RandomModelPicker(dataset.n_models, seed=seed)
    if strategy == "ucb1":
        return UCB1Picker(
            dataset.n_models,
            dataset.cost[user] if config.cost_aware else None,
            seed=seed,
        )

    use_cost = config.cost_aware and strategy != "easeml_no_cost"
    if use_cost:
        costs = dataset.cost[user]
        beta: object = TheoremBeta(
            dataset.n_models,
            config.delta,
            c_star=float(np.max(costs)),
            n_users=dataset.n_users,
        )
    else:
        costs = None
        beta = AlgorithmOneBeta(dataset.n_models, config.delta)
    return GPUCBPicker(
        prior_cov,
        beta,
        costs,
        noise=gp_noise,
        prior_mean=prior_mean,
        seed=seed,
    )
