"""One driver per paper figure (F6b, F8–F15).

Each ``figure*`` function runs the corresponding experiment and returns
a :class:`FigureReport` bundling the raw :class:`ExperimentResult`
objects with the headline numbers the paper quotes, plus a ``render()``
that prints the same series the figure plots.  The benchmark modules
under ``benchmarks/`` are thin wrappers around these drivers.

All drivers accept ``n_trials`` (the paper uses 50; benchmarks default
lower to keep CI runtimes sane) and a ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import (
    load_179classifier,
    load_benchmark_suite,
    load_deeplearning,
    load_all_syn,
)
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.protocol import ExperimentConfig
from repro.utils.tables import ascii_table

#: Loss-threshold band for the Figure 9 speedup metric.  The paper
#: quotes the 0.02–0.1 band of its trace; we extend upward to cover the
#: region our calibrated trace actually traverses (the metric only
#: counts thresholds both curves reach).
FIG9_THRESHOLDS: Tuple[float, ...] = tuple(np.linspace(0.02, 0.35, 34))


@dataclass
class FigureReport:
    """The outcome of one figure reproduction."""

    figure: str
    description: str
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    headline: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self, *, max_rows: int = 13) -> str:
        parts = [f"=== {self.figure}: {self.description} ==="]
        for key, result in self.results.items():
            parts.append(f"--- {key} ---")
            parts.append(result.render(max_rows=max_rows))
            parts.append(result.render(worst_case=True, max_rows=max_rows))
        if self.headline:
            rows = [[k, v] for k, v in self.headline.items()]
            parts.append(ascii_table(["headline metric", "value"], rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def _finite(value: float) -> float:
    return float(value) if np.isfinite(value) else float("nan")


def figure6b(*, n_trials: int = 10, seed: int = 0) -> FigureReport:
    """Figure 6(b): GREEDY vs ROUNDROBIN accuracy loss (% of runs)."""
    dataset = load_179classifier(seed=seed)
    config = ExperimentConfig(
        n_trials=n_trials,
        budget_fraction=0.35,
        cost_aware=False,
        base_seed=seed,
    )
    result = run_experiment(dataset, ["greedy", "round_robin"], config)
    greedy = result.strategies["greedy"].mean_curve
    rr = result.strategies["round_robin"].mean_curve
    early = int(0.2 * (len(greedy) - 1))
    return FigureReport(
        figure="Figure 6(b)",
        description="GREEDY vs ROUNDROBIN illustration",
        results={"179CLASSIFIER": result},
        headline={
            "greedy loss @20% budget": float(greedy[early]),
            "round_robin loss @20% budget": float(rr[early]),
            "greedy final loss": float(greedy[-1]),
            "round_robin final loss": float(rr[-1]),
        },
    )


def figure8(*, seed: int = 0) -> FigureReport:
    """Figure 8: dataset statistics table."""
    suite = load_benchmark_suite(seed=seed)
    report = FigureReport(
        figure="Figure 8",
        description="Statistics of datasets",
    )
    for name, dataset in suite.items():
        stats = dataset.statistics()
        report.headline[f"{name} users"] = float(stats["n_users"])
        report.headline[f"{name} models"] = float(stats["n_models"])
    report.notes.append(
        "quality/cost provenance: "
        + "; ".join(
            f"{name}: {ds.quality_kind} / {ds.cost_kind}"
            for name, ds in suite.items()
        )
    )
    return report


def figure9(
    *,
    n_trials: int = 20,
    seed: int = 0,
    budget_fraction: float = 0.10,
) -> FigureReport:
    """Figure 9: end-to-end on DEEPLEARNING vs the user heuristics.

    Paper headline: ease.ml up to 9.8× faster (average accuracy loss)
    and up to 3.1× (worst-case) than the better of MOSTCITED /
    MOSTRECENT.
    """
    dataset = load_deeplearning(seed=seed)
    config = ExperimentConfig(
        n_trials=n_trials,
        budget_fraction=budget_fraction,
        cost_aware=True,
        noise_std=0.02,
        n_checkpoints=81,
        base_seed=seed,
    )
    result = run_experiment(
        dataset, ["easeml", "most_cited", "most_recent"], config
    )
    avg = result.speedups(thresholds=FIG9_THRESHOLDS)
    worst = result.speedups(worst_case=True, thresholds=FIG9_THRESHOLDS)
    return FigureReport(
        figure="Figure 9",
        description="End-to-end DEEPLEARNING: ease.ml vs user heuristics",
        results={"DEEPLEARNING": result},
        headline={
            "avg speedup vs most_cited": _finite(avg["most_cited"][0]),
            "avg speedup vs most_recent": _finite(avg["most_recent"][0]),
            "worst-case speedup vs most_cited": _finite(
                worst["most_cited"][0]
            ),
            "worst-case speedup vs most_recent": _finite(
                worst["most_recent"][0]
            ),
        },
        notes=[
            "paper: 9.8x (average) and 3.1x (worst-case) vs the better "
            "heuristic; absolute factors depend on the simulated trace",
        ],
    )


def _multi_dataset_report(
    figure: str,
    description: str,
    datasets: Sequence,
    strategies: Sequence[str],
    config: ExperimentConfig,
) -> FigureReport:
    report = FigureReport(figure=figure, description=description)
    for dataset in datasets:
        result = run_experiment(dataset, strategies, config)
        report.results[dataset.name] = result
        grid = result.grid
        early = int(0.2 * (len(grid) - 1))
        for name, strategy in result.strategies.items():
            report.headline[f"{dataset.name} {name} @20%"] = float(
                strategy.mean_curve[early]
            )
            report.headline[f"{dataset.name} {name} final"] = float(
                strategy.final_mean_loss
            )
    return report


def figure10(
    *,
    n_trials: int = 10,
    seed: int = 0,
    dataset_names: Optional[Sequence[str]] = None,
) -> FigureReport:
    """Figure 10: cost-oblivious multi-tenant comparison on 6 datasets."""
    suite = load_benchmark_suite(seed=seed)
    if dataset_names is not None:
        suite = {k: suite[k] for k in dataset_names}
    config = ExperimentConfig(
        n_trials=n_trials,
        budget_fraction=0.5,
        cost_aware=False,
        noise_std=0.05,
        base_seed=seed,
    )
    return _multi_dataset_report(
        "Figure 10",
        "Cost-oblivious: ease.ml vs ROUNDROBIN vs RANDOM (% of runs)",
        list(suite.values()),
        ["easeml", "round_robin", "random"],
        config,
    )


def figure11(
    *,
    n_trials: int = 10,
    seed: int = 0,
    dataset_names: Optional[Sequence[str]] = None,
) -> FigureReport:
    """Figure 11: cost-aware multi-tenant comparison on 6 datasets."""
    suite = load_benchmark_suite(seed=seed)
    if dataset_names is not None:
        suite = {k: suite[k] for k in dataset_names}
    config = ExperimentConfig(
        n_trials=n_trials,
        budget_fraction=0.3,
        cost_aware=True,
        noise_std=0.05,
        base_seed=seed,
    )
    return _multi_dataset_report(
        "Figure 11",
        "Cost-aware: ease.ml vs ROUNDROBIN vs RANDOM (% of total cost)",
        list(suite.values()),
        ["easeml", "round_robin", "random"],
        config,
    )


def figure12(*, n_trials: int = 10, seed: int = 0) -> FigureReport:
    """Figure 12: impact of model correlation (σ_M) and noise (α)."""
    syn = load_all_syn(seed=seed)
    config = ExperimentConfig(
        n_trials=n_trials,
        budget_fraction=0.5,
        cost_aware=False,
        noise_std=0.05,
        base_seed=seed,
    )
    report = _multi_dataset_report(
        "Figure 12",
        "Worst-case loss under varying model correlation/noise",
        list(syn.values()),
        ["easeml", "round_robin", "random"],
        config,
    )
    # The figure's claim: stronger correlation (σ_M 0.01 → 0.5) helps.
    for alpha in ("0.1", "1.0"):
        weak = report.results[f"SYN(0.01,{alpha})"]
        strong = report.results[f"SYN(0.5,{alpha})"]
        mid = int(0.5 * (len(weak.grid) - 1))
        report.headline[f"alpha={alpha} weak-corr easeml @50%"] = float(
            weak.strategies["easeml"].worst_curve[mid]
        )
        report.headline[f"alpha={alpha} strong-corr easeml @50%"] = float(
            strong.strategies["easeml"].worst_curve[mid]
        )
    return report


def figure13(*, n_trials: int = 20, seed: int = 0) -> FigureReport:
    """Figure 13: lesion — cost-awareness on/off on DEEPLEARNING."""
    dataset = load_deeplearning(seed=seed)
    config = ExperimentConfig(
        n_trials=n_trials,
        budget_fraction=0.10,
        cost_aware=True,
        noise_std=0.02,
        n_checkpoints=81,
        base_seed=seed,
    )
    result = run_experiment(dataset, ["easeml", "easeml_no_cost"], config)
    grid = result.grid
    mid = int(0.5 * (len(grid) - 1))
    return FigureReport(
        figure="Figure 13",
        description="Lesion: impact of cost-awareness",
        results={"DEEPLEARNING": result},
        headline={
            "easeml loss @50% budget": float(
                result.strategies["easeml"].mean_curve[mid]
            ),
            "easeml w/o cost loss @50% budget": float(
                result.strategies["easeml_no_cost"].mean_curve[mid]
            ),
            "easeml final": result.strategies["easeml"].final_mean_loss,
            "easeml w/o cost final": result.strategies[
                "easeml_no_cost"
            ].final_mean_loss,
        },
    )


def figure14(
    *,
    n_trials: int = 15,
    seed: int = 0,
    fractions: Sequence[float] = (0.1, 0.5, 1.0),
) -> FigureReport:
    """Figure 14: impact of the kernel's training-set size."""
    dataset = load_deeplearning(seed=seed)
    report = FigureReport(
        figure="Figure 14",
        description="Impact of training-set size on the model kernel",
    )
    for fraction in fractions:
        config = ExperimentConfig(
            n_trials=n_trials,
            budget_fraction=0.10,
            cost_aware=True,
            noise_std=0.02,
            n_checkpoints=81,
            train_fraction=fraction,
            base_seed=seed,
        )
        result = run_experiment(dataset, ["easeml"], config)
        label = f"{int(fraction * 100)}%"
        report.results[f"train={label}"] = result
        strategy = result.strategies["easeml"]
        mid = int(0.5 * (len(result.grid) - 1))
        report.headline[f"loss @50% budget (train={label})"] = float(
            strategy.mean_curve[mid]
        )
        report.headline[f"final loss (train={label})"] = float(
            strategy.final_mean_loss
        )
    report.notes.append(
        "paper: more kernel training data helps, with diminishing "
        "returns (50% close to 100%)"
    )
    return report


def figure15(*, n_trials: int = 10, seed: int = 0) -> FigureReport:
    """Figure 15: lesion — hybrid execution on 179CLASSIFIER.

    The paper's story: GREEDY beats ROUNDROBIN early, ROUNDROBIN wins
    after a crossover, HYBRID (ease.ml) tracks the better of both.
    """
    dataset = load_179classifier(seed=seed)
    config = ExperimentConfig(
        n_trials=n_trials,
        budget_fraction=0.5,
        cost_aware=False,
        noise_std=0.05,
        base_seed=seed,
    )
    result = run_experiment(
        dataset, ["greedy", "round_robin", "easeml"], config
    )
    grid = result.grid
    early = int(0.1 * (len(grid) - 1))
    return FigureReport(
        figure="Figure 15",
        description="Lesion: hybrid execution (log-scale loss)",
        results={"179CLASSIFIER": result},
        headline={
            "greedy loss @10% budget": float(
                result.strategies["greedy"].mean_curve[early]
            ),
            "round_robin loss @10% budget": float(
                result.strategies["round_robin"].mean_curve[early]
            ),
            "hybrid loss @10% budget": float(
                result.strategies["easeml"].mean_curve[early]
            ),
            "greedy final": result.strategies["greedy"].final_mean_loss,
            "round_robin final": result.strategies[
                "round_robin"
            ].final_mean_loss,
            "hybrid final": result.strategies["easeml"].final_mean_loss,
        },
    )
