"""Curve metrics: time-to-threshold and speedups (the 9.8× numbers).

The paper's headline metric: "the time spent on taking the average
accuracy loss down from 0.1 to 0.02 of MOSTCITED is about 9.8 times
that of ease.ml".  :func:`speedup_at` computes exactly that ratio for
one loss threshold; :func:`max_speedup` scans a threshold band and
reports the largest (finite) ratio, which is how "up to N×" figures
arise.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np


def time_to_threshold(
    grid: Sequence[float], curve: Sequence[float], threshold: float
) -> float:
    """First budget value at which ``curve`` drops to ``threshold``.

    Returns ``inf`` when the curve never reaches it.  The curve is a
    right-continuous step function over ``grid`` (accuracy loss only
    changes when a run completes), so the answer is the first grid
    point with ``curve <= threshold``.
    """
    grid = np.asarray(grid, dtype=float)
    curve = np.asarray(curve, dtype=float)
    if grid.shape != curve.shape:
        raise ValueError(
            f"grid {grid.shape} and curve {curve.shape} must match"
        )
    hits = np.flatnonzero(curve <= threshold)
    if hits.size == 0:
        return math.inf
    return float(grid[hits[0]])


def speedup_at(
    grid: Sequence[float],
    fast_curve: Sequence[float],
    slow_curve: Sequence[float],
    threshold: float,
) -> float:
    """``t_slow(threshold) / t_fast(threshold)``.

    ``inf`` when only the fast curve reaches the threshold, ``nan``
    when neither does (no comparison possible).
    """
    t_fast = time_to_threshold(grid, fast_curve, threshold)
    t_slow = time_to_threshold(grid, slow_curve, threshold)
    if math.isinf(t_fast) and math.isinf(t_slow):
        return math.nan
    if math.isinf(t_slow):
        return math.inf
    if math.isinf(t_fast):
        return 0.0
    if t_fast <= 0:
        # Both reached the threshold instantly (e.g. at the first
        # checkpoint); call it even.
        return 1.0 if t_slow <= 0 else math.inf
    return t_slow / t_fast


def max_speedup(
    grid: Sequence[float],
    fast_curve: Sequence[float],
    slow_curve: Sequence[float],
    thresholds: Optional[Iterable[float]] = None,
) -> Tuple[float, float]:
    """Largest finite speedup over a threshold band.

    Returns ``(speedup, threshold)``.  The default band spans the
    paper's reported range (accuracy loss 0.02 … 0.1) extended to the
    region both curves actually traverse.
    """
    grid = np.asarray(grid, dtype=float)
    fast = np.asarray(fast_curve, dtype=float)
    slow = np.asarray(slow_curve, dtype=float)
    if thresholds is None:
        lo = max(float(np.min(fast)), 1e-4)
        hi = float(np.max(np.minimum(fast, slow)))
        if hi <= lo:
            hi = lo * 2.0
        thresholds = np.linspace(lo, hi, 50)
    best = (0.0, math.nan)
    for threshold in thresholds:
        ratio = speedup_at(grid, fast, slow, float(threshold))
        if math.isfinite(ratio) and ratio > best[0]:
            best = (ratio, float(threshold))
    return best


def area_under_loss(
    grid: Sequence[float], curve: Sequence[float]
) -> float:
    """Trapezoidal area under the loss curve (lower is better).

    A single-number summary used by regression assertions in the
    benchmark suite: a uniformly better scheduler has smaller area.
    """
    grid = np.asarray(grid, dtype=float)
    curve = np.asarray(curve, dtype=float)
    if grid.shape != curve.shape:
        raise ValueError(
            f"grid {grid.shape} and curve {curve.shape} must match"
        )
    if grid.size < 2:
        return 0.0
    return float(np.trapezoid(curve, grid))


def summarize_speedups(
    grid: Sequence[float],
    curves: Dict[str, Sequence[float]],
    reference: str,
    thresholds: Optional[Iterable[float]] = None,
) -> Dict[str, Tuple[float, float]]:
    """Max speedup of ``reference`` against every other curve."""
    if reference not in curves:
        raise KeyError(f"reference {reference!r} not among {list(curves)}")
    out: Dict[str, Tuple[float, float]] = {}
    for name, curve in curves.items():
        if name == reference:
            continue
        out[name] = max_speedup(grid, curves[reference], curve, thresholds)
    return out
