"""The service error taxonomy, in a layer-neutral module.

:class:`ApiError` is part of the versioned service API
(:mod:`repro.service.api` re-exports it as the canonical surface), but
it lives here so lower layers — the platform server raises it for
missing apps/examples — can use it without importing the service
package that sits above them.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, Optional

import numpy as np


def jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and containers) to JSON-safe types."""
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


class ApiErrorCode(str, Enum):
    """The closed taxonomy of service failures."""

    #: Referenced app / example / job does not exist (for this tenant).
    NOT_FOUND = "not_found"
    #: The request collides with existing state (duplicate app name).
    CONFLICT = "conflict"
    #: A per-tenant quota (apps, pending jobs, store bytes) is exhausted.
    QUOTA_EXCEEDED = "quota_exceeded"
    #: The submitted DSL program does not parse / type-check.
    INVALID_PROGRAM = "invalid_program"
    #: A request field is malformed (shape mismatch, bad label, ...).
    INVALID_ARGUMENT = "invalid_argument"
    #: Missing or unknown auth token.
    UNAUTHORIZED = "unauthorized"
    #: The operation is valid but not in this state (e.g. training
    #: before enough examples were fed, registering after training).
    FAILED_PRECONDITION = "failed_precondition"
    #: The platform cannot serve this workload kind.
    UNSUPPORTED = "unsupported"
    #: The request's schema version does not match the server's.
    UNSUPPORTED_VERSION = "unsupported_version"
    #: The gateway is replaying its journal after a restart; retry
    #: once recovery completes (the only retryable error in the
    #: taxonomy).
    UNAVAILABLE_RECOVERING = "unavailable_recovering"
    #: The target is a read replica: it serves reads but cannot accept
    #: this mutation.  ``details["writer_url"]`` carries the current
    #: writer's address when the replica knows it, so clients can
    #: re-issue the request there (the SDK does this automatically).
    NOT_WRITER = "not_writer"
    #: Anything the service failed to classify (a bug, by definition).
    INTERNAL = "internal"


#: HTTP status each error code maps to at the transport layer.
HTTP_STATUS: Dict[ApiErrorCode, int] = {
    ApiErrorCode.NOT_FOUND: 404,
    ApiErrorCode.CONFLICT: 409,
    ApiErrorCode.QUOTA_EXCEEDED: 429,
    ApiErrorCode.INVALID_PROGRAM: 422,
    ApiErrorCode.INVALID_ARGUMENT: 400,
    ApiErrorCode.UNAUTHORIZED: 401,
    ApiErrorCode.FAILED_PRECONDITION: 409,
    ApiErrorCode.UNSUPPORTED: 422,
    ApiErrorCode.UNSUPPORTED_VERSION: 400,
    ApiErrorCode.UNAVAILABLE_RECOVERING: 503,
    ApiErrorCode.NOT_WRITER: 503,
    ApiErrorCode.INTERNAL: 500,
}


class ApiError(Exception):
    """A typed service failure that survives serialisation.

    ``details`` carries structured context (the offending name, the
    quota limit, valid ranges) so clients can react programmatically
    instead of parsing messages.

    ``request_id`` correlates a failure with one traced request: the
    HTTP frontends stamp it before writing the error body, it rides
    the wire inside the error dict, and the client restores it on the
    reconstructed exception — so an operator can grep the server's
    access log (or journal) for the exact request that failed.
    """

    def __init__(
        self,
        code: ApiErrorCode,
        message: str,
        **details: Any,
    ) -> None:
        super().__init__(message)
        self.code = ApiErrorCode(code)
        self.message = str(message)
        self.details: Dict[str, Any] = jsonify(details)
        self.request_id: Optional[str] = None

    @property
    def http_status(self) -> int:
        return HTTP_STATUS[self.code]

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "code": self.code.value,
            "message": self.message,
            "details": dict(self.details),
        }
        if self.request_id is not None:
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ApiError":
        error = cls(
            ApiErrorCode(data["code"]),
            data.get("message", ""),
            **data.get("details", {}),
        )
        error.request_id = data.get("request_id")
        return error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ApiError({self.code.value!r}, {self.message!r})"
