"""Multilayer perceptron with numpy backpropagation.

The zoo instantiates several widths/depths of this class to mimic the
"small cheap net … big expensive net" spectrum of the paper's eight
CNN architectures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    check_X_y,
    encode_labels,
    one_hot,
    softmax,
)
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive


class MLPClassifier(Estimator, ClassifierMixin):
    """Fully connected ReLU network with a softmax head.

    Parameters
    ----------
    hidden:
        Hidden layer widths, e.g. ``(32,)`` or ``(64, 64)``.
    learning_rate / n_epochs / batch_size:
        Mini-batch gradient descent settings.
    l2:
        Weight decay.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (32,),
        learning_rate: float = 0.05,
        n_epochs: int = 100,
        batch_size: int = 32,
        l2: float = 1e-4,
        *,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        self.hidden = tuple(int(h) for h in hidden)
        if not self.hidden or any(h < 1 for h in self.hidden):
            raise ValueError(
                f"hidden must be non-empty positive widths, got {hidden}"
            )
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.n_epochs = int(n_epochs)
        if self.n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        self.batch_size = int(batch_size)
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.l2 = check_positive(l2, "l2", strict=False)
        self._seed = seed
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        self.classes_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def _forward(
        self, X: np.ndarray
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        activations = [X]
        a = X
        for W, b in zip(self.weights_[:-1], self.biases_[:-1]):
            a = np.maximum(a @ W + b, 0.0)
            activations.append(a)
        logits = a @ self.weights_[-1] + self.biases_[-1]
        return activations, logits

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = check_X_y(X, y)
        encoded, self.classes_ = encode_labels(y)
        n, d = X.shape
        c = self.classes_.shape[0]
        sizes = (d, *self.hidden, c)
        rng = RandomState(self._seed)
        self.weights_ = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), (sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self.biases_ = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        targets = one_hot(encoded, c)

        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                Xb, Tb = X[batch], targets[batch]
                activations, logits = self._forward(Xb)
                probs = softmax(logits)
                delta = (probs - Tb) / Xb.shape[0]
                for layer in reversed(range(len(self.weights_))):
                    a_prev = activations[layer]
                    grad_W = a_prev.T @ delta + self.l2 * self.weights_[layer]
                    grad_b = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights_[layer].T) * (
                            activations[layer] > 0
                        )
                    self.weights_[layer] -= self.learning_rate * grad_W
                    self.biases_[layer] -= self.learning_rate * grad_b
        params = sum(W.size for W in self.weights_)
        self._add_work(6.0 * self.n_epochs * n * params / max(d, 1))
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        if X.shape[1] != self.weights_[0].shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, fitted on "
                f"{self.weights_[0].shape[0]}"
            )
        _, logits = self._forward(X)
        self._add_work(
            float(X.shape[0]) * sum(W.size for W in self.weights_)
        )
        return softmax(logits)

    def predict(self, X: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)]
