"""Estimator interface, metrics and deterministic work accounting.

Cost matters throughout this repository (the whole point of Section
3.2), so every estimator tracks the *work* it performed in
``work_units`` — a deterministic arithmetic-operation proxy (counted,
not timed) so that live runs are reproducible across machines while
still exposing the real cost asymmetries between cheap and expensive
models.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RandomState, SeedLike


def check_X_y(X: np.ndarray, y: Optional[np.ndarray] = None):
    """Validate and coerce a feature matrix (and labels)."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got {X.ndim}-D")
    if not np.all(np.isfinite(X)):
        raise ValueError("X must contain only finite values")
    if y is None:
        return X
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got {y.ndim}-D")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
        )
    return X, y


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape}, y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot score empty label arrays")
    return float(np.mean(y_true == y_pred))


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    X, y = check_X_y(X, y)
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = RandomState(seed)
    n = X.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("split leaves no training data")
    order = rng.permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class Estimator(ABC):
    """Base class: ``fit`` then ``predict``, with work accounting."""

    def __init__(self) -> None:
        #: Deterministic work proxy accumulated by fit/predict.
        self.work_units: float = 0.0
        self._fitted = False

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Estimator":
        """Train on (X, y); returns self."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels for X."""

    def _mark_fitted(self) -> None:
        self._fitted = True

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before predicting"
            )

    def _add_work(self, units: float) -> None:
        self.work_units += float(units)


class ClassifierMixin:
    """Scoring shared by all classifiers."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on (X, y)."""
        return accuracy_score(np.asarray(y), self.predict(X))


def one_hot(y: np.ndarray, n_classes: int) -> np.ndarray:
    """(n,) integer labels -> (n, n_classes) one-hot matrix."""
    y = np.asarray(y, dtype=int)
    if y.size and (y.min() < 0 or y.max() >= n_classes):
        raise ValueError(
            f"labels must be in [0, {n_classes}), got "
            f"[{y.min()}, {y.max()}]"
        )
    out = np.zeros((y.shape[0], n_classes))
    out[np.arange(y.shape[0]), y] = 1.0
    return out


def encode_labels(y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Map arbitrary labels to 0..C-1; returns (encoded, classes)."""
    classes, encoded = np.unique(np.asarray(y), return_inverse=True)
    return encoded, classes


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilisation."""
    shifted = logits - np.max(logits, axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=1, keepdims=True)
