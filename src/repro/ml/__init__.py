"""A compact, numpy-only machine-learning library.

This is the substrate that substitutes for the paper's deep-learning
stack: when examples and benchmarks run ease.ml "live" (instead of
replaying a trace), the candidate models are genuinely trained and
evaluated here, and the cost the scheduler pays is each model's
measured work.

Everything is implemented from scratch on numpy:

* :mod:`repro.ml.base` — the estimator interface, accuracy metric,
  train/test split, deterministic work accounting;
* :mod:`repro.ml.data` — synthetic classification task generators with
  controllable difficulty (blobs, moons, circles, spirals, xor,
  high-dimensional sparse);
* estimators: logistic regression and ridge (:mod:`linear`), k-NN
  (:mod:`neighbors`), Gaussian naive Bayes (:mod:`naive_bayes`), CART
  decision trees (:mod:`tree`), random forests (:mod:`forest`), linear
  SVM via Pegasos (:mod:`svm`) and multilayer perceptrons
  (:mod:`mlp`);
* :mod:`repro.ml.zoo` — the named "model zoo" the platform's template
  matcher hands to the scheduler, with per-model cost profiles.
"""

from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    accuracy_score,
    train_test_split,
)
from repro.ml.data import (
    TaskSpec,
    make_blobs,
    make_circles,
    make_moons,
    make_sparse_highdim,
    make_spirals,
    make_task,
    make_xor,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression, RidgeClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.zoo import ModelZoo, ZooEntry, default_zoo

__all__ = [
    "Estimator",
    "ClassifierMixin",
    "accuracy_score",
    "train_test_split",
    "TaskSpec",
    "make_task",
    "make_blobs",
    "make_moons",
    "make_circles",
    "make_spirals",
    "make_xor",
    "make_sparse_highdim",
    "LogisticRegression",
    "RidgeClassifier",
    "KNeighborsClassifier",
    "GaussianNB",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LinearSVM",
    "MLPClassifier",
    "StandardScaler",
    "MinMaxScaler",
    "ModelZoo",
    "ZooEntry",
    "default_zoo",
]
