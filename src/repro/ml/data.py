"""Synthetic classification-task generators with controllable difficulty.

Each generator returns ``(X, y)``; :func:`make_task` builds a task from
a :class:`TaskSpec`, which is how the live benchmarks create a
population of "users" whose tasks differ in geometry, dimensionality
and noise — the heterogeneity the multi-tenant scheduler exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, SeedLike

Array2 = Tuple[np.ndarray, np.ndarray]


def _finish(
    X: np.ndarray, y: np.ndarray, rng: np.random.Generator, noise: float
) -> Array2:
    if noise > 0:
        X = X + rng.normal(0.0, noise, X.shape)
    order = rng.permutation(X.shape[0])
    return X[order], y[order].astype(int)


def make_blobs(
    n_samples: int = 200,
    n_classes: int = 3,
    n_features: int = 2,
    *,
    separation: float = 3.0,
    noise: float = 1.0,
    seed: SeedLike = None,
) -> Array2:
    """Gaussian blobs; ``separation`` controls how easy the task is."""
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    rng = RandomState(seed)
    centers = rng.normal(0.0, separation, (n_classes, n_features))
    counts = np.full(n_classes, n_samples // n_classes)
    counts[: n_samples % n_classes] += 1
    X = np.vstack(
        [
            centers[c] + rng.normal(0.0, noise, (counts[c], n_features))
            for c in range(n_classes)
        ]
    )
    y = np.repeat(np.arange(n_classes), counts)
    # Difficulty is the separation-to-noise ratio; the jitter is baked
    # into the class clouds above, so no extra noise pass is needed.
    return _finish(X, y, rng, 0.0)


def make_moons(
    n_samples: int = 200,
    *,
    noise: float = 0.15,
    seed: SeedLike = None,
) -> Array2:
    """Two interleaving half-circles (binary, non-linear)."""
    rng = RandomState(seed)
    n_a = n_samples // 2
    n_b = n_samples - n_a
    theta_a = rng.uniform(0.0, np.pi, n_a)
    theta_b = rng.uniform(0.0, np.pi, n_b)
    Xa = np.column_stack([np.cos(theta_a), np.sin(theta_a)])
    Xb = np.column_stack([1.0 - np.cos(theta_b), 0.5 - np.sin(theta_b)])
    X = np.vstack([Xa, Xb])
    y = np.concatenate([np.zeros(n_a), np.ones(n_b)])
    return _finish(X, y, rng, noise)


def make_circles(
    n_samples: int = 200,
    *,
    factor: float = 0.5,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> Array2:
    """Two concentric circles (binary, radially separable)."""
    if not 0.0 < factor < 1.0:
        raise ValueError(f"factor must be in (0, 1), got {factor}")
    rng = RandomState(seed)
    n_a = n_samples // 2
    n_b = n_samples - n_a
    theta_a = rng.uniform(0.0, 2.0 * np.pi, n_a)
    theta_b = rng.uniform(0.0, 2.0 * np.pi, n_b)
    Xa = np.column_stack([np.cos(theta_a), np.sin(theta_a)])
    Xb = factor * np.column_stack([np.cos(theta_b), np.sin(theta_b)])
    X = np.vstack([Xa, Xb])
    y = np.concatenate([np.zeros(n_a), np.ones(n_b)])
    return _finish(X, y, rng, noise)


def make_spirals(
    n_samples: int = 200,
    *,
    turns: float = 1.5,
    noise: float = 0.1,
    seed: SeedLike = None,
) -> Array2:
    """Two interleaved spirals (binary, hard for linear models)."""
    rng = RandomState(seed)
    n_a = n_samples // 2
    n_b = n_samples - n_a
    t_a = np.sqrt(rng.uniform(0.05, 1.0, n_a)) * turns * 2.0 * np.pi
    t_b = np.sqrt(rng.uniform(0.05, 1.0, n_b)) * turns * 2.0 * np.pi
    Xa = np.column_stack([t_a * np.cos(t_a), t_a * np.sin(t_a)]) / (
        turns * 2.0 * np.pi
    )
    Xb = np.column_stack([t_b * np.cos(t_b + np.pi), t_b * np.sin(t_b + np.pi)]) / (
        turns * 2.0 * np.pi
    )
    X = np.vstack([Xa, Xb])
    y = np.concatenate([np.zeros(n_a), np.ones(n_b)])
    return _finish(X, y, rng, noise)


def make_xor(
    n_samples: int = 200,
    *,
    noise: float = 0.2,
    seed: SeedLike = None,
) -> Array2:
    """The XOR pattern (binary, requires interactions)."""
    rng = RandomState(seed)
    X = rng.uniform(-1.0, 1.0, (n_samples, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return _finish(X, y, rng, noise)


def make_sparse_highdim(
    n_samples: int = 200,
    n_features: int = 50,
    n_informative: int = 5,
    *,
    signal: float = 2.0,
    noise: float = 1.0,
    seed: SeedLike = None,
) -> Array2:
    """High-dimensional binary task with few informative features."""
    if n_informative > n_features:
        raise ValueError("n_informative cannot exceed n_features")
    rng = RandomState(seed)
    X = rng.normal(0.0, noise, (n_samples, n_features))
    w = np.zeros(n_features)
    informative = rng.choice(n_features, n_informative, replace=False)
    w[informative] = rng.normal(0.0, 1.0, n_informative)
    logits = signal * (X @ w)
    y = (logits + rng.logistic(0.0, 1.0, n_samples) > 0).astype(int)
    return _finish(X, y, rng, 0.0)


#: Registered generator names for :func:`make_task`.
TASK_KINDS = (
    "blobs",
    "moons",
    "circles",
    "spirals",
    "xor",
    "sparse_highdim",
)


@dataclass(frozen=True)
class TaskSpec:
    """Description of one user's classification task.

    ``difficulty`` in [0, 1] scales the task's intrinsic noise so a
    population of users spans easy to hard — the "different users have
    different degrees of difficulty" assumption of Appendix B.
    """

    kind: str = "blobs"
    n_samples: int = 200
    difficulty: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in TASK_KINDS:
            raise ValueError(
                f"kind must be one of {TASK_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError(
                f"difficulty must be in [0, 1], got {self.difficulty}"
            )
        if self.n_samples < 8:
            raise ValueError(f"n_samples must be >= 8, got {self.n_samples}")


def make_task(spec: TaskSpec) -> Array2:
    """Instantiate the (X, y) data for a :class:`TaskSpec`."""
    d = spec.difficulty
    if spec.kind == "blobs":
        return make_blobs(
            spec.n_samples,
            n_classes=3,
            separation=4.0 * (1.0 - d) + 1.0,
            seed=spec.seed,
        )
    if spec.kind == "moons":
        return make_moons(spec.n_samples, noise=0.05 + 0.4 * d, seed=spec.seed)
    if spec.kind == "circles":
        return make_circles(
            spec.n_samples, noise=0.02 + 0.25 * d, seed=spec.seed
        )
    if spec.kind == "spirals":
        return make_spirals(
            spec.n_samples, noise=0.02 + 0.25 * d, seed=spec.seed
        )
    if spec.kind == "xor":
        return make_xor(spec.n_samples, noise=0.05 + 0.4 * d, seed=spec.seed)
    return make_sparse_highdim(
        spec.n_samples,
        signal=3.0 * (1.0 - d) + 0.3,
        seed=spec.seed,
    )
