"""Linear SVM trained with the Pegasos subgradient method.

Multiclass via one-vs-rest.  Deterministic given a seed; work scales
with epochs × samples × features, giving the zoo another point on the
cost/quality frontier.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import ClassifierMixin, Estimator, check_X_y, encode_labels
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive


class LinearSVM(Estimator, ClassifierMixin):
    """One-vs-rest linear SVM (hinge loss, Pegasos updates)."""

    def __init__(
        self,
        reg: float = 1e-3,
        n_epochs: int = 20,
        *,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        self.reg = check_positive(reg, "reg")
        self.n_epochs = int(n_epochs)
        if self.n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        self._seed = seed
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def _fit_binary(
        self, X: np.ndarray, sign: np.ndarray, rng: np.random.Generator
    ) -> tuple:
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        # Offsetting t by 1/λ caps the first step size at 1 — the
        # standard warm-start trick; the raw Pegasos schedule
        # η_t = 1/(λt) takes an enormous first step for small λ and
        # the bias (which is unregularised) never recovers.
        t = 1.0 / self.reg
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for i in order:
                t += 1.0
                eta = 1.0 / (self.reg * t)
                margin = sign[i] * (X[i] @ w + b)
                w *= 1.0 - eta * self.reg
                if margin < 1.0:
                    w += eta * sign[i] * X[i]
                    b += eta * sign[i]
        return w, b

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = check_X_y(X, y)
        encoded, self.classes_ = encode_labels(y)
        n, d = X.shape
        c = self.classes_.shape[0]
        rng = RandomState(self._seed)
        if c == 2:
            sign = np.where(encoded == 1, 1.0, -1.0)
            w, b = self._fit_binary(X, sign, rng)
            self.coef_ = np.column_stack([-w, w])
            self.intercept_ = np.array([-b, b])
        else:
            W = np.empty((d, c))
            bs = np.empty(c)
            for k in range(c):
                sign = np.where(encoded == k, 1.0, -1.0)
                W[:, k], bs[k] = self._fit_binary(X, sign, rng)
            self.coef_, self.intercept_ = W, bs
        heads = 1 if c == 2 else c
        self._add_work(3.0 * self.n_epochs * n * d * heads)
        self._mark_fitted()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        self._add_work(float(X.shape[0] * X.shape[1]))
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
