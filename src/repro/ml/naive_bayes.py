"""Gaussian naive Bayes."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import ClassifierMixin, Estimator, check_X_y, encode_labels


class GaussianNB(Estimator, ClassifierMixin):
    """Per-class independent Gaussians with a variance floor."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        super().__init__()
        if var_smoothing < 0:
            raise ValueError(
                f"var_smoothing must be >= 0, got {var_smoothing}"
            )
        self.var_smoothing = float(var_smoothing)
        self.theta_: Optional[np.ndarray] = None  # (C, d) means
        self.var_: Optional[np.ndarray] = None  # (C, d) variances
        self.class_log_prior_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X, y = check_X_y(X, y)
        encoded, self.classes_ = encode_labels(y)
        c = self.classes_.shape[0]
        d = X.shape[1]
        self.theta_ = np.empty((c, d))
        self.var_ = np.empty((c, d))
        counts = np.empty(c)
        for k in range(c):
            members = X[encoded == k]
            if members.shape[0] == 0:  # pragma: no cover - encode ensures
                raise ValueError(f"class {k} has no samples")
            counts[k] = members.shape[0]
            self.theta_[k] = members.mean(axis=0)
            self.var_[k] = members.var(axis=0)
        floor = self.var_smoothing * float(np.max(X.var(axis=0), initial=1.0))
        self.var_ = np.maximum(self.var_, max(floor, 1e-12))
        self.class_log_prior_ = np.log(counts / counts.sum())
        self._add_work(float(X.size) * 2.0)
        self._mark_fitted()
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        out = np.empty((X.shape[0], self.classes_.shape[0]))
        for k in range(self.classes_.shape[0]):
            log_det = np.sum(np.log(2.0 * np.pi * self.var_[k]))
            maha = np.sum(
                (X - self.theta_[k]) ** 2 / self.var_[k], axis=1
            )
            out[:, k] = self.class_log_prior_[k] - 0.5 * (log_det + maha)
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        if X.shape[1] != self.theta_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, fitted on "
                f"{self.theta_.shape[1]}"
            )
        jll = self._joint_log_likelihood(X)
        self._add_work(float(X.size) * self.classes_.shape[0])
        return self.classes_[np.argmax(jll, axis=1)]
