"""Linear classifiers: multinomial logistic regression and ridge.

Both are fitted with plain numpy — softmax regression by full-batch
gradient descent, ridge by a closed-form least-squares solve against
one-hot targets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import (
    ClassifierMixin,
    Estimator,
    check_X_y,
    encode_labels,
    one_hot,
    softmax,
)
from repro.utils.validation import check_positive


class LogisticRegression(Estimator, ClassifierMixin):
    """Multinomial logistic regression trained by gradient descent.

    Parameters
    ----------
    learning_rate, n_epochs:
        Full-batch gradient descent settings; more epochs cost more
        work (tracked in ``work_units``) — the cheap-vs-thorough knob
        the model zoo uses to create cost diversity.
    l2:
        Ridge penalty on the weights (not the intercept).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_epochs: int = 200,
        l2: float = 1e-4,
    ) -> None:
        super().__init__()
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.n_epochs = int(n_epochs)
        if self.n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        self.l2 = check_positive(l2, "l2", strict=False)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        encoded, self.classes_ = encode_labels(y)
        n, d = X.shape
        c = self.classes_.shape[0]
        targets = one_hot(encoded, c)
        W = np.zeros((d, c))
        b = np.zeros(c)
        for _ in range(self.n_epochs):
            probs = softmax(X @ W + b)
            grad = probs - targets
            W -= self.learning_rate * ((X.T @ grad) / n + self.l2 * W)
            b -= self.learning_rate * grad.mean(axis=0)
        self.coef_, self.intercept_ = W, b
        # fwd+bwd pass per epoch: ~4 n d c multiply-adds.
        self._add_work(4.0 * self.n_epochs * n * d * c)
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        self._add_work(float(X.shape[0] * X.shape[1]))
        return softmax(X @ self.coef_ + self.intercept_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)]


class RidgeClassifier(Estimator, ClassifierMixin):
    """Least-squares classifier on one-hot targets (closed form)."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = check_positive(alpha, "alpha", strict=False)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeClassifier":
        X, y = check_X_y(X, y)
        encoded, self.classes_ = encode_labels(y)
        n, d = X.shape
        c = self.classes_.shape[0]
        targets = one_hot(encoded, c) - 1.0 / c
        mean = X.mean(axis=0)
        Xc = X - mean
        gram = Xc.T @ Xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xc.T @ targets)
        self.intercept_ = targets.mean(axis=0) - mean @ self.coef_
        self._add_work(float(n * d * d + d**3 / 3.0 + n * d * c))
        self._mark_fitted()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        self._add_work(float(X.shape[0] * X.shape[1]))
        return X @ self.coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
