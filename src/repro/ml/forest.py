"""Random forests: bagged CART trees with feature subsampling."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import ClassifierMixin, Estimator, check_X_y, encode_labels
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import RandomState, SeedLike


class RandomForestClassifier(Estimator, ClassifierMixin):
    """Majority vote over bootstrapped trees (``max_features='sqrt'``)."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        *,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        self.n_estimators = int(n_estimators)
        if self.n_estimators < 1:
            raise ValueError(
                f"n_estimators must be >= 1, got {n_estimators}"
            )
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self._seed = seed
        self.trees_: List[DecisionTreeClassifier] = []
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        encoded, self.classes_ = encode_labels(y)
        rng = RandomState(self._seed)
        n = X.shape[0]
        self.trees_ = []
        for b in range(self.n_estimators):
            idx = rng.integers(0, n, n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features="sqrt",
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], encoded[idx])
            self.trees_.append(tree)
            self._add_work(tree.work_units)
        self._mark_fitted()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        n_classes = self.classes_.shape[0]
        votes = np.zeros((X.shape[0], n_classes), dtype=int)
        for tree in self.trees_:
            pred = tree.predict(X)  # encoded labels (fitted on encoded y)
            votes[np.arange(X.shape[0]), pred.astype(int)] += 1
            self._add_work(float(X.shape[0]) * 16.0)
        return self.classes_[np.argmax(votes, axis=1)]
