"""k-nearest-neighbours classification (brute force)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import ClassifierMixin, Estimator, check_X_y, encode_labels


class KNeighborsClassifier(Estimator, ClassifierMixin):
    """Majority vote among the k nearest training points (L2)."""

    def __init__(self, n_neighbors: int = 5) -> None:
        super().__init__()
        self.n_neighbors = int(n_neighbors)
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        if X.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} training "
                f"points, got {X.shape[0]}"
            )
        encoded, self.classes_ = encode_labels(y)
        self._X, self._y = X.copy(), encoded
        self._add_work(float(X.size))  # memorisation pass
        self._mark_fitted()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, fitted on {self._X.shape[1]}"
            )
        # Pairwise squared distances, blockwise to bound memory.
        n_classes = self.classes_.shape[0]
        predictions = np.empty(X.shape[0], dtype=int)
        block = 256
        for start in range(0, X.shape[0], block):
            chunk = X[start : start + block]
            d2 = (
                np.sum(chunk**2, axis=1)[:, None]
                + np.sum(self._X**2, axis=1)[None, :]
                - 2.0 * chunk @ self._X.T
            )
            nearest = np.argpartition(d2, self.n_neighbors - 1, axis=1)[
                :, : self.n_neighbors
            ]
            votes = self._y[nearest]
            counts = np.zeros((chunk.shape[0], n_classes), dtype=int)
            for k in range(self.n_neighbors):
                counts[np.arange(chunk.shape[0]), votes[:, k]] += 1
            predictions[start : start + block] = np.argmax(counts, axis=1)
        self._add_work(float(X.shape[0]) * self._X.shape[0] * X.shape[1])
        return self.classes_[predictions]
