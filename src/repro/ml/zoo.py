"""The model zoo: named, configured estimators with cost profiles.

ease.ml's template matcher produces *named candidate models*
("AlexNet", "ResNet-18", …).  In live runs those names resolve to
entries of this zoo — numpy estimators spanning a wide cost/quality
frontier, from a naive-Bayes fit (microseconds of work) to a deep MLP
(five orders of magnitude more).  Each entry carries:

* a factory building a fresh estimator,
* an a-priori *cost estimate* formula (ease.ml's "simple profiling"),
* citation/year metadata so the MOSTCITED / MOSTRECENT heuristics work
  on live zoos exactly as on the CNN trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.trainer import CallableTrainer
from repro.ml.base import Estimator, train_test_split
from repro.ml.data import TaskSpec, make_task
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression, RidgeClassifier
from repro.ml.mlp import MLPClassifier
from repro.ml.naive_bayes import GaussianNB
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.preprocessing import StandardScaler
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import RandomState, SeedLike

#: Work units per abstract "cost unit" (keeps costs in a readable range).
WORK_UNITS_PER_COST = 1e5


@dataclass(frozen=True)
class ZooEntry:
    """One named model in the zoo."""

    name: str
    family: str
    citations: float
    year: float
    make: Callable[[int], Estimator]
    #: (n_samples, n_features, n_classes) -> expected work units.
    cost_formula: Callable[[int, int, int], float]

    def cost_estimate(self, n: int, d: int, c: int) -> float:
        """Profiled cost in abstract cost units (strictly positive)."""
        return max(
            float(self.cost_formula(n, d, c)) / WORK_UNITS_PER_COST, 1e-6
        )


class ModelZoo:
    """An ordered collection of :class:`ZooEntry` items."""

    def __init__(self, entries: Sequence[ZooEntry]) -> None:
        if not entries:
            raise ValueError("a zoo needs at least one entry")
        names = [e.name for e in entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate zoo entry names in {names}")
        self._entries: List[ZooEntry] = list(entries)
        self._by_name: Dict[str, ZooEntry] = {e.name: e for e in entries}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ZooEntry:
        if name not in self._by_name:
            raise KeyError(
                f"no zoo entry named {name!r}; available: {self.names()}"
            )
        return self._by_name[name]

    def names(self) -> List[str]:
        return [e.name for e in self._entries]

    def citations(self) -> np.ndarray:
        return np.array([e.citations for e in self._entries])

    def years(self) -> np.ndarray:
        return np.array([e.year for e in self._entries])

    def subset(self, names: Sequence[str]) -> "ModelZoo":
        return ModelZoo([self[name] for name in names])

    # ------------------------------------------------------------------
    # Live-training task construction
    # ------------------------------------------------------------------
    def build_trainer(
        self,
        task_specs: Sequence[TaskSpec],
        *,
        test_fraction: float = 0.3,
        standardize: bool = True,
        seed: SeedLike = 0,
    ) -> CallableTrainer:
        """A :class:`CallableTrainer` training zoo models on real tasks.

        For each user a dataset is generated once from its
        :class:`TaskSpec` and split once; every training call fits a
        *fresh* estimator (seeded per call so repeated training of the
        same model is genuinely stochastic, like re-running Adam) and
        reports test accuracy as reward and measured ``work_units`` as
        GPU time.
        """
        rng = RandomState(seed)
        tasks: List[List[Callable[[], Tuple[float, float]]]] = []
        estimates: List[np.ndarray] = []
        for spec in task_specs:
            X, y = make_task(spec)
            X_train, X_test, y_train, y_test = train_test_split(
                X, y, test_fraction=test_fraction, seed=rng
            )
            if standardize:
                scaler = StandardScaler().fit(X_train)
                X_train = scaler.transform(X_train)
                X_test = scaler.transform(X_test)
            n, d = X_train.shape
            c = int(np.unique(y_train).shape[0])
            user_tasks = []
            user_costs = []
            for entry in self._entries:
                user_tasks.append(
                    _make_training_callable(
                        entry, X_train, y_train, X_test, y_test, rng
                    )
                )
                user_costs.append(entry.cost_estimate(n, d, c))
            tasks.append(user_tasks)
            estimates.append(np.asarray(user_costs))
        return CallableTrainer(tasks, estimates)


def _make_training_callable(
    entry: ZooEntry,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    rng: np.random.Generator,
) -> Callable[[], Tuple[float, float]]:
    def train() -> Tuple[float, float]:
        estimator = entry.make(int(rng.integers(0, 2**31 - 1)))
        estimator.fit(X_train, y_train)
        accuracy = estimator.score(X_test, y_test)
        cost = max(estimator.work_units / WORK_UNITS_PER_COST, 1e-6)
        return accuracy, cost

    return train


def default_zoo() -> ModelZoo:
    """Thirteen models spanning the cost/quality frontier.

    Citations/years are stylised (plausible magnitudes for the
    underlying methods) so heuristic pickers behave realistically.
    """
    return ModelZoo(
        [
            ZooEntry(
                "naive-bayes", "bayesian", 4500, 1960,
                lambda s: GaussianNB(),
                lambda n, d, c: 4.0 * n * d,
            ),
            ZooEntry(
                "knn-5", "nearest-neighbor", 12000, 1967,
                lambda s: KNeighborsClassifier(5),
                lambda n, d, c: 1.0 * n * n * d,
            ),
            ZooEntry(
                "ridge", "linear", 9000, 1970,
                lambda s: RidgeClassifier(1.0),
                lambda n, d, c: n * d * d + d**3 / 3.0 + n * d * c,
            ),
            ZooEntry(
                "logreg-fast", "linear", 15000, 1958,
                lambda s: LogisticRegression(n_epochs=60),
                lambda n, d, c: 4.0 * 60 * n * d * c,
            ),
            ZooEntry(
                "logreg", "linear", 15000, 1958,
                lambda s: LogisticRegression(n_epochs=300),
                lambda n, d, c: 4.0 * 300 * n * d * c,
            ),
            ZooEntry(
                "svm-linear", "svm", 30000, 1995,
                lambda s: LinearSVM(n_epochs=15, seed=s),
                lambda n, d, c: 3.0 * 15 * n * d * max(c if c > 2 else 1, 1),
            ),
            ZooEntry(
                "tree-d4", "decision-tree", 25000, 1984,
                lambda s: DecisionTreeClassifier(max_depth=4, seed=s),
                lambda n, d, c: 15.0 * n * d,
            ),
            ZooEntry(
                "tree-deep", "decision-tree", 25000, 1984,
                lambda s: DecisionTreeClassifier(max_depth=12, seed=s),
                lambda n, d, c: 40.0 * n * d,
            ),
            ZooEntry(
                "forest-10", "random-forest", 50000, 2001,
                lambda s: RandomForestClassifier(
                    10, max_depth=8, seed=s
                ),
                lambda n, d, c: 10 * 30.0 * n * max(np.sqrt(d), 1.0),
            ),
            ZooEntry(
                "forest-40", "random-forest", 50000, 2001,
                lambda s: RandomForestClassifier(
                    40, max_depth=10, seed=s
                ),
                lambda n, d, c: 40 * 35.0 * n * max(np.sqrt(d), 1.0),
            ),
            ZooEntry(
                "mlp-small", "neural-net", 40000, 1986,
                lambda s: MLPClassifier((16,), n_epochs=60, seed=s),
                lambda n, d, c: 6.0 * 60 * n * (16 + 16 * c / max(d, 1)) * d,
            ),
            ZooEntry(
                "mlp-medium", "neural-net", 40000, 1986,
                lambda s: MLPClassifier((64,), n_epochs=120, seed=s),
                lambda n, d, c: 6.0 * 120 * n * (64 + 64 * c / max(d, 1)) * d,
            ),
            ZooEntry(
                "mlp-deep", "neural-net", 60000, 2015,
                lambda s: MLPClassifier(
                    (64, 64), n_epochs=200, seed=s
                ),
                lambda n, d, c: 6.0 * 200 * n * (64 + 64 * 64 / max(d, 1)) * d,
            ),
        ]
    )
