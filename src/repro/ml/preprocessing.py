"""Feature scaling transformers."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_X_y


class StandardScaler:
    """Zero-mean, unit-variance scaling per feature."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_X_y(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # Constant features scale to 1 so transform is a no-op there.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted first")
        X = check_X_y(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted on "
                f"{self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class MinMaxScaler:
    """Scale each feature into [0, 1] (constant features map to 0)."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_X_y(X)
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.range_ = np.where(span > 1e-12, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler must be fitted first")
        X = check_X_y(X)
        if X.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted on "
                f"{self.min_.shape[0]}"
            )
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
