"""CART decision trees (Gini impurity, axis-aligned splits)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import ClassifierMixin, Estimator, check_X_y, encode_labels
from repro.utils.rng import RandomState, SeedLike


@dataclass
class _Node:
    """One tree node; leaves carry a class distribution."""

    prediction: int
    distribution: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier(Estimator, ClassifierMixin):
    """Greedy CART classifier.

    Parameters
    ----------
    max_depth:
        Depth cap (``None`` grows until pure / min samples).
    min_samples_split:
        Minimum node size eligible for splitting.
    max_features:
        Features considered per split: ``None`` (all), an int, or the
        string ``"sqrt"`` (random forests pass this).
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        max_features: Optional[object] = None,
        *,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        if self.min_samples_split < 2:
            raise ValueError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if not (
            max_features is None
            or max_features == "sqrt"
            or (isinstance(max_features, int) and max_features >= 1)
        ):
            raise ValueError(
                "max_features must be None, 'sqrt' or a positive int; "
                f"got {max_features!r}"
            )
        self.max_features = max_features
        self._seed = seed
        self._root: Optional[_Node] = None
        self.classes_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self.n_nodes_: int = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _n_split_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        return min(int(self.max_features), d)

    def _best_split(
        self,
        X: np.ndarray,
        encoded: np.ndarray,
        n_classes: int,
        features: np.ndarray,
    ):
        """Best (feature, threshold, gain) over candidate features."""
        n = X.shape[0]
        parent_counts = np.bincount(encoded, minlength=n_classes)
        parent_impurity = _gini(parent_counts)
        # Start below zero so a zero-gain split on an impure node is
        # still taken: XOR-style data has no single split that reduces
        # Gini at the root, yet splitting is what lets depth-2 resolve
        # it (this matches standard CART implementations).
        best = (None, 0.0, -1.0)  # feature, threshold, gain
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            labels = encoded[order]
            left_counts = np.zeros(n_classes)
            right_counts = parent_counts.astype(float).copy()
            for i in range(n - 1):
                k = labels[i]
                left_counts[k] += 1
                right_counts[k] -= 1
                if values[i + 1] <= values[i] + 1e-12:
                    continue  # cannot split between equal values
                n_left = i + 1
                n_right = n - n_left
                weighted = (
                    n_left * _gini(left_counts)
                    + n_right * _gini(right_counts)
                ) / n
                gain = parent_impurity - weighted
                if gain > best[2] + 1e-15:
                    threshold = 0.5 * (values[i] + values[i + 1])
                    best = (int(feature), float(threshold), float(gain))
        return best

    def _build(
        self,
        X: np.ndarray,
        encoded: np.ndarray,
        n_classes: int,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        counts = np.bincount(encoded, minlength=n_classes)
        node = _Node(
            prediction=int(np.argmax(counts)),
            distribution=counts / max(counts.sum(), 1),
        )
        self.n_nodes_ += 1
        if (
            X.shape[0] < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        d = X.shape[1]
        k = self._n_split_features(d)
        features = (
            np.arange(d) if k == d else rng.choice(d, k, replace=False)
        )
        feature, threshold, gain = self._best_split(
            X, encoded, n_classes, features
        )
        self._add_work(float(X.shape[0]) * len(features))
        if feature is None:
            return node
        mask = X[:, feature] <= threshold
        if not mask.any() or mask.all():  # pragma: no cover - guarded above
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(
            X[mask], encoded[mask], n_classes, depth + 1, rng
        )
        node.right = self._build(
            X[~mask], encoded[~mask], n_classes, depth + 1, rng
        )
        return node

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        encoded, self.classes_ = encode_labels(y)
        self.n_features_ = X.shape[1]
        self.n_nodes_ = 0
        rng = RandomState(self._seed)
        self._root = self._build(
            X, encoded, self.classes_.shape[0], 0, rng
        )
        self._mark_fitted()
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _walk(self, x: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, fitted on {self.n_features_}"
            )
        out = np.array([self._walk(x).prediction for x in X])
        self._add_work(float(X.shape[0]) * 16.0)
        return self.classes_[out]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = check_X_y(X)
        return np.vstack([self._walk(x).distribution for x in X])
