"""The multi-tenant scheduler loop (Section 4), with live membership.

At each round the scheduler (1) asks its *user picker* which tenant to
serve, (2) asks that tenant's *model picker* which candidate model to
train, (3) trains it through the oracle, and (4) feeds the observation
back into the tenant's state — including the empirical-confidence-bound
recurrence of Algorithm 2 line 6 that the GREEDY/HYBRID user pickers
consume.

Tenant identity is a **stable id**, not a position: the scheduler owns
a :class:`TenantRegistry` whose *active set* can change mid-run.
``add_tenant`` admits a late arrival (its id is a row the oracle must
already serve), ``retire_tenant`` removes a tenant from scheduling
while preserving its full history, and every picker iterates the
active set rather than ``range(n_users)``.  A paper-style fixed-tenant
run is simply a registry whose membership never changes.

The scheduler is deliberately policy-agnostic: every named algorithm in
the paper (FCFS, ROUNDROBIN, RANDOM, GREEDY, HYBRID, MOSTCITED,
MOSTRECENT) is a combination of a user picker and a model picker; the
experiment harness composes them.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro.core.model_picking import ModelPicker, Selection
from repro.core.oracles import RewardOracle
from repro.core.user_picking import UserPicker

#: Initial size of the scheduler's per-tenant-id decision-cache arrays
#: (doubled as larger ids are admitted).
_DECISION_MIN_CAPACITY = 16


@dataclass
class TenantState:
    """Everything the scheduler tracks about one tenant.

    Attributes
    ----------
    index:
        The tenant's **stable id** — the row this tenant occupies in
        the oracle.  Ids are never reused, so histories keyed by id
        survive membership churn.
    picker:
        The tenant's model-picking policy (owns the GP if GP-UCB).
    costs:
        Known per-model costs for this tenant (``c^i_k``).
    serves:
        Number of rounds this tenant has been served (``t_i``).
    best_observed:
        Best reward seen so far (what ``infer`` would serve).  A tenant
        with no model yet has 0 — accuracy of "no model".
    sigma_tilde:
        Empirical potential estimate ``σ̃`` from Algorithm 2 line 6
        (``inf`` until the first serve).
    ecb_min:
        Running minimum of the empirical confidence bound
        ``min_{t'} (y_{t'} + σ̃_{t'})``.
    """

    index: int
    picker: ModelPicker
    costs: np.ndarray
    serves: int = 0
    best_observed: float = 0.0
    sigma_tilde: float = math.inf
    ecb_min: float = math.inf
    total_cost: float = 0.0
    rewards: List[float] = field(default_factory=list)
    arms: List[int] = field(default_factory=list)

    @property
    def tenant_id(self) -> int:
        """Alias for :attr:`index` — the stable tenant id."""
        return self.index

    def absorb(
        self, selection: Selection, reward: float, cost: float,
        *, clamp_potential: bool = False,
    ) -> None:
        """Update tenant state after a serve (Algorithm 2 lines 6 & 13).

        The empirical confidence bound after observing ``y`` at the arm
        with selection-time UCB value ``B`` is
        ``min(B, min_{t'} (y_{t'} + σ̃_{t'}))``; the potential ``σ̃`` is
        that bound minus ``y``.  Because ``y + σ̃`` equals the bound,
        the running minimum is simply the bound itself.
        """
        bound = min(selection.ucb_value, self.ecb_min)
        sigma_tilde = bound - reward
        if clamp_potential:
            sigma_tilde = max(sigma_tilde, 0.0)
        if math.isfinite(bound):
            self.ecb_min = bound
            self.sigma_tilde = sigma_tilde
        else:
            # Heuristic pickers report no bound; fall back to a neutral
            # potential so greedy pairings degrade gracefully.
            self.sigma_tilde = max(1.0 - reward, 0.0)
        self.serves += 1
        self.best_observed = max(self.best_observed, reward)
        self.total_cost += cost
        self.rewards.append(float(reward))
        self.arms.append(int(selection.arm))

    def potential_gap(self) -> float:
        """ease.ml's line-8 rule: largest UCB minus best accuracy so far."""
        return self.picker.best_ucb() - self.best_observed


class TenantRegistry:
    """Live tenant membership: stable ids, an active subset, full history.

    The registry is the scheduler's identity model.  Indexing
    (``registry[tenant_id]``) resolves **any** known tenant — active or
    retired — so histories survive churn; iteration and ``len`` cover
    only the *active* set, in ascending id order, which is what every
    scheduling decision ranges over.
    """

    def __init__(self) -> None:
        self._states: Dict[int, TenantState] = {}
        self._active: List[int] = []  # sorted ascending
        self._version = 0  # bumped on every active-set change

    @property
    def version(self) -> int:
        """Monotonic counter of active-set changes (adds, retires,
        reactivations).  Lets callers cache views derived from the
        active set and refresh them only when membership moved."""
        return self._version

    # -- membership ----------------------------------------------------
    def add(self, state: TenantState) -> TenantState:
        """Register a brand-new tenant under its stable id.

        A known id is an error — re-admitting a retired tenant goes
        through :meth:`reactivate`, which keeps its history rather than
        silently discarding the caller's replacement state.
        """
        tenant_id = int(state.index)
        if tenant_id in self._states:
            hint = (
                "" if self.is_active(tenant_id)
                else " (retired; use reactivate())"
            )
            raise ValueError(
                f"tenant {tenant_id} is already registered{hint}"
            )
        self._states[tenant_id] = state
        self._activate(tenant_id)
        return state

    def reactivate(self, tenant_id: int) -> TenantState:
        """Return a retired tenant to the active set, history intact."""
        tenant_id = int(tenant_id)
        if tenant_id not in self._states:
            raise KeyError(f"unknown tenant id {tenant_id}")
        if self.is_active(tenant_id):
            raise ValueError(f"tenant {tenant_id} is already active")
        self._activate(tenant_id)
        return self._states[tenant_id]

    def retire(self, tenant_id: int) -> TenantState:
        """Remove a tenant from the active set; its state is preserved."""
        tenant_id = int(tenant_id)
        if tenant_id not in self._states:
            raise KeyError(f"unknown tenant id {tenant_id}")
        if not self.is_active(tenant_id):
            raise ValueError(f"tenant {tenant_id} is not active")
        self._active.remove(tenant_id)
        self._version += 1
        return self._states[tenant_id]

    def _activate(self, tenant_id: int) -> None:
        bisect.insort(self._active, tenant_id)
        self._version += 1

    # -- views ---------------------------------------------------------
    def __getitem__(self, tenant_id: int) -> TenantState:
        """Any known tenant by id (active or retired)."""
        return self._states[tenant_id]

    def get(
        self, tenant_id: int, default: Optional[TenantState] = None
    ) -> Optional[TenantState]:
        return self._states.get(tenant_id, default)

    def __contains__(self, tenant_id: object) -> bool:
        """``id in registry`` — is this tenant *active*?"""
        return tenant_id in self._active

    def __iter__(self) -> Iterator[TenantState]:
        """Active tenants, in ascending id order."""
        return iter([self._states[i] for i in self._active])

    def __len__(self) -> int:
        """Number of *active* tenants."""
        return len(self._active)

    def is_active(self, tenant_id: int) -> bool:
        return tenant_id in self._active

    def is_known(self, tenant_id: int) -> bool:
        return tenant_id in self._states

    def active_ids(self) -> List[int]:
        """Stable ids of the active tenants, ascending."""
        return list(self._active)

    def known_ids(self) -> List[int]:
        """Every id ever registered, ascending."""
        return sorted(self._states)

    def all_states(self) -> List[TenantState]:
        """Every tenant ever registered (active and retired), by id."""
        return [self._states[i] for i in sorted(self._states)]

    def next_id(self) -> int:
        """The smallest never-used id (ids are never recycled)."""
        return max(self._states, default=-1) + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantRegistry(active={self._active}, "
            f"known={len(self._states)})"
        )


@dataclass(frozen=True)
class StepRecord:
    """One scheduler round, as recorded for analysis.

    ``user`` is the tenant's stable id, so records remain attributable
    after membership churn.
    """

    t: int
    user: int
    arm: int
    reward: float
    cost: float
    cumulative_cost: float
    ucb_value: float
    sigma_tilde: float


@dataclass
class RunResult:
    """Full history of a scheduler run.

    ``n_users`` is the number of tenants known to the scheduler when
    the result was cut; under membership churn the records may name ids
    up to the largest ever admitted, and the per-tenant accessors are
    keyed by stable id.
    """

    records: List[StepRecord]
    n_users: int

    @property
    def n_steps(self) -> int:
        return len(self.records)

    @property
    def total_cost(self) -> float:
        return self.records[-1].cumulative_cost if self.records else 0.0

    def users(self) -> np.ndarray:
        return np.array([r.user for r in self.records], dtype=int)

    def arms(self) -> np.ndarray:
        return np.array([r.arm for r in self.records], dtype=int)

    def rewards(self) -> np.ndarray:
        return np.array([r.reward for r in self.records])

    def costs(self) -> np.ndarray:
        return np.array([r.cost for r in self.records])

    def cumulative_costs(self) -> np.ndarray:
        return np.array([r.cumulative_cost for r in self.records])

    def serves_per_user(self) -> np.ndarray:
        """Serve counts indexed by stable tenant id.

        Sized to cover the largest id appearing in the records (at
        least ``n_users``), so late arrivals are counted rather than
        overflowing a positional array.
        """
        size = self.n_users
        if self.records:
            size = max(size, max(r.user for r in self.records) + 1)
        counts = np.zeros(size, dtype=int)
        for record in self.records:
            counts[record.user] += 1
        return counts

    def serves_by_tenant(self) -> Dict[int, int]:
        """``{tenant_id: serve count}`` over the recorded rounds."""
        counts: Dict[int, int] = {}
        for record in self.records:
            counts[record.user] = counts.get(record.user, 0) + 1
        return counts


class MultiTenantScheduler:
    """Serve a changing set of tenants sharing one device (Section 4).

    Parameters
    ----------
    oracle:
        Source of (reward, cost) observations.
    pickers:
        The initial tenant set.  A sequence assigns ids ``0..n-1`` and
        must provide exactly one picker per oracle row (the paper's
        fixed-membership setting); a mapping ``{tenant_id: picker}``
        admits any subset of oracle rows, leaving the rest to arrive
        later via :meth:`add_tenant` (and may be empty).
    user_picker:
        The tenant-selection policy.
    clamp_potential:
        Clamp σ̃ at zero in the Algorithm 2 recurrence (off by default,
        staying literal to the paper; see DESIGN.md).
    """

    def __init__(
        self,
        oracle: RewardOracle,
        pickers: Union[Sequence[ModelPicker], Mapping[int, ModelPicker]],
        user_picker: UserPicker,
        *,
        clamp_potential: bool = False,
    ) -> None:
        if isinstance(pickers, Mapping):
            initial = {int(i): p for i, p in pickers.items()}
        else:
            if len(pickers) != oracle.n_users:
                raise ValueError(
                    f"need one picker per oracle user: got {len(pickers)} "
                    f"pickers for {oracle.n_users} users (pass a "
                    "{tenant_id: picker} mapping to start with a subset)"
                )
            initial = dict(enumerate(pickers))
        self.oracle = oracle
        self.tenants = TenantRegistry()
        self.user_picker = user_picker
        self.clamp_potential = bool(clamp_potential)
        self.step_count = 0
        self.total_cost = 0.0
        self.records: List[StepRecord] = []
        self.bind_metrics(None)
        # Decision cache: per-tenant-id dense arrays of the quantities
        # the user-picking phase ranges over every round.  See the
        # "Decision cache" section below.
        self._dc_sigma = np.full(_DECISION_MIN_CAPACITY, math.inf)
        self._dc_best_obs = np.zeros(_DECISION_MIN_CAPACITY)
        self._dc_best_ucb = np.full(_DECISION_MIN_CAPACITY, math.inf)
        self._dc_dirty: set = set()
        self._dc_active = np.empty(0, dtype=np.intp)
        self._dc_active_version = -1
        for tenant_id in sorted(initial):
            self._admit(tenant_id, initial[tenant_id], None)
        self.user_picker.reset(self)

    def bind_metrics(self, registry) -> None:
        """Report per-step pick latency/counts into a metrics registry.

        ``registry`` is a :class:`repro.obs.MetricsRegistry` (or None
        to unbind — instruments revert to shared no-ops).  The core
        stays importable without the service stack, so the obs import
        is local and the default is the disabled registry.
        """
        from repro.obs.metrics import NULL_REGISTRY, PICK_LATENCY_BUCKETS

        registry = registry if registry is not None else NULL_REGISTRY
        self._m_pick_seconds = registry.histogram(
            "scheduler_pick_seconds",
            "Latency of one serving-path model pick "
            "(TenantState.picker.select).",
            buckets=PICK_LATENCY_BUCKETS,
        )
        self._m_picks = registry.counter(
            "scheduler_picks_total",
            "Model picks made on the serving path, by tenant.",
            ["tenant"],
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _admit(
        self,
        tenant_id: int,
        picker: ModelPicker,
        costs: Optional[np.ndarray],
    ) -> TenantState:
        if not 0 <= tenant_id < self.oracle.n_users:
            raise ValueError(
                f"tenant id {tenant_id} has no oracle row (the oracle "
                f"serves users [0, {self.oracle.n_users})); grow the "
                "oracle first (e.g. MatrixOracle.add_user)"
            )
        if picker.n_arms != self.oracle.n_models(tenant_id):
            raise ValueError(
                f"picker for tenant {tenant_id} has {picker.n_arms} arms "
                f"but the oracle offers {self.oracle.n_models(tenant_id)} "
                f"models for user {tenant_id}"
            )
        if costs is None:
            costs = self.oracle.costs(tenant_id)
        state = self.tenants.add(
            TenantState(index=tenant_id, picker=picker,
                        costs=np.asarray(costs, dtype=float))
        )
        self.invalidate_tenant(tenant_id)
        return state

    def add_tenant(
        self,
        picker: Optional[ModelPicker] = None,
        costs: Optional[np.ndarray] = None,
        *,
        tenant_id: Optional[int] = None,
    ) -> TenantState:
        """Admit a tenant mid-run (a ``USER_ARRIVED`` in kernel terms).

        ``tenant_id`` defaults to the smallest never-used id; the
        oracle must already serve that row (grow it first for a truly
        new tenant).  Re-adding a retired id re-activates it with its
        history (and GP posterior) intact — pass ``picker=None`` to
        keep the tenant's existing picker.  The user picker is notified
        through its ``on_arrival`` hook.
        """
        if tenant_id is None:
            tenant_id = self.tenants.next_id()
        tenant_id = int(tenant_id)
        if self.tenants.is_active(tenant_id):
            raise ValueError(f"tenant {tenant_id} is already active")
        if self.tenants.is_known(tenant_id):
            state = self.tenants.reactivate(tenant_id)
            if picker is not None:
                state.picker = picker
            self.invalidate_tenant(tenant_id)
        else:
            if picker is None:
                raise ValueError(
                    f"tenant {tenant_id} is new: a model picker is required"
                )
            state = self._admit(tenant_id, picker, costs)
        self.user_picker.on_arrival(self, tenant_id)
        return state

    def retire_tenant(self, tenant_id: int) -> TenantState:
        """Remove a tenant from scheduling (``USER_DEPARTED``).

        The tenant's state, history and step records are preserved —
        only the active set shrinks.  The user picker is notified
        through its ``on_departure`` hook.
        """
        state = self.tenants.retire(int(tenant_id))
        self.user_picker.on_departure(self, int(tenant_id))
        return state

    @property
    def n_users(self) -> int:
        """Number of *active* tenants."""
        return len(self.tenants)

    @property
    def n_known(self) -> int:
        """Number of tenants ever admitted (active + retired)."""
        return len(self.tenants.known_ids())

    def active_ids(self) -> List[int]:
        """Stable ids of the active tenants, ascending."""
        return self.tenants.active_ids()

    # ------------------------------------------------------------------
    # Decision cache
    # ------------------------------------------------------------------
    # The user-picking phase ranges over three per-tenant scalars every
    # round: σ̃ (Algorithm 2 line 7's candidate filter), the tenant's
    # best observed accuracy, and its largest UCB (line 8's max-gap
    # rule).  Recomputing them per pick via Python attribute walks (and
    # a posterior evaluation per tenant for the UCB) made one pick
    # O(n·t²); the scheduler instead keeps them in dense arrays indexed
    # by stable tenant id, refreshed only for the tenant whose state
    # actually changed.  Every mutation path funnels through
    # :meth:`invalidate_tenant` — ``step()``, admission, reactivation,
    # and the async oracle's out-of-band ``absorb``.

    def _ensure_decision_capacity(self, tenant_id: int) -> None:
        capacity = self._dc_sigma.shape[0]
        if tenant_id < capacity:
            return
        while capacity <= tenant_id:
            capacity *= 2
        for name, fill in (
            ("_dc_sigma", math.inf),
            ("_dc_best_obs", 0.0),
            ("_dc_best_ucb", math.inf),
        ):
            old = getattr(self, name)
            grown = np.full(capacity, fill)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)

    def invalidate_tenant(self, tenant_id: int) -> None:
        """Refresh the decision cache for one tenant.

        Must be called after anything mutates a tenant's state outside
        :meth:`step` (the async oracle's completion path does).  The
        σ̃ / best-observed columns are copied immediately; the best-UCB
        column is marked dirty and recomputed lazily on the next read,
        so invalidation stays O(1).
        """
        tenant_id = int(tenant_id)
        state = self.tenants.get(tenant_id)
        if state is None:
            raise KeyError(f"unknown tenant id {tenant_id}")
        self._ensure_decision_capacity(tenant_id)
        self._dc_sigma[tenant_id] = state.sigma_tilde
        self._dc_best_obs[tenant_id] = state.best_observed
        self._dc_dirty.add(tenant_id)

    def active_id_array(self) -> np.ndarray:
        """Active tenant ids as a read-only ascending numpy array.

        Cached against the registry's membership version, so steady
        rounds (no churn) pay nothing to rebuild it.
        """
        version = self.tenants.version
        if self._dc_active_version != version:
            active = np.array(self.tenants.active_ids(), dtype=np.intp)
            active.setflags(write=False)
            self._dc_active = active
            self._dc_active_version = version
            if active.size:
                self._ensure_decision_capacity(int(active[-1]))
        return self._dc_active

    def _refresh_best_ucbs(self) -> None:
        if not self._dc_dirty:
            return
        for tenant_id in tuple(self._dc_dirty):
            if self.tenants.is_active(tenant_id):
                picker = self.tenants[tenant_id].picker
                self._dc_best_ucb[tenant_id] = picker.best_ucb()
                self._dc_dirty.discard(tenant_id)
            # Retired tenants stay dirty: reactivation re-invalidates,
            # and the active slices below never read their rows.

    def potentials(self) -> np.ndarray:
        """Current σ̃ across *active* tenants (∞ for never-served),
        aligned with :meth:`active_ids`."""
        return self._dc_sigma[self.active_id_array()]

    def decision_best_ucbs(self) -> np.ndarray:
        """``max_k B(k)`` per active tenant, aligned with
        :meth:`active_ids` (∞ for heuristic pickers)."""
        self._refresh_best_ucbs()
        return self._dc_best_ucb[self.active_id_array()]

    def decision_gaps(self) -> np.ndarray:
        """ease.ml's line-8 quantity per active tenant — largest UCB
        minus best accuracy so far — aligned with :meth:`active_ids`."""
        index = self.active_id_array()
        self._refresh_best_ucbs()
        return self._dc_best_ucb[index] - self._dc_best_obs[index]

    def global_best_sum(self) -> float:
        """Σ_i best accuracy so far over active tenants — the progress
        signal HYBRID watches."""
        # Plain left-to-right summation (not np.sum's pairwise order)
        # keeps the value bit-identical to the pre-cache implementation.
        return float(sum(self._dc_best_obs[self.active_id_array()].tolist()))

    # ------------------------------------------------------------------
    # The serve loop
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Run one round: pick user, pick model, train, update."""
        if not len(self.tenants):
            raise RuntimeError(
                "no active tenants to serve; admit one with add_tenant()"
            )
        user = self.user_picker.pick(self)
        if not self.tenants.is_active(user):
            raise IndexError(
                f"user picker returned {user}, which is not an active "
                f"tenant (active ids: {self.active_ids()})"
            )
        tenant = self.tenants[user]
        pick_started = time.perf_counter()
        selection = tenant.picker.select()
        self._m_pick_seconds.observe(time.perf_counter() - pick_started)
        self._m_picks.labels(user).inc()
        observation = self.oracle.observe(user, selection.arm)
        tenant.picker.observe(selection.arm, observation.reward)
        tenant.absorb(
            selection,
            observation.reward,
            observation.cost,
            clamp_potential=self.clamp_potential,
        )
        self.invalidate_tenant(user)

        self.step_count += 1
        self.total_cost += observation.cost
        record = StepRecord(
            t=self.step_count,
            user=user,
            arm=selection.arm,
            reward=observation.reward,
            cost=observation.cost,
            cumulative_cost=self.total_cost,
            ucb_value=selection.ucb_value,
            sigma_tilde=tenant.sigma_tilde,
        )
        self.records.append(record)
        self.user_picker.notify(self, record)
        return record

    def run(
        self,
        *,
        max_steps: Optional[int] = None,
        cost_budget: Optional[float] = None,
        stop: Optional[Callable[["MultiTenantScheduler"], bool]] = None,
    ) -> RunResult:
        """Run until a step or cost budget is exhausted.

        ``cost_budget`` stops *before* a step that would exceed it when
        the next model's cost is already known to overflow; the final
        partial overshoot of at most one model is allowed otherwise
        (matching how a real cluster finishes its last job).
        """
        if max_steps is None and cost_budget is None and stop is None:
            raise ValueError(
                "provide max_steps, cost_budget or a stop predicate"
            )
        while True:
            if max_steps is not None and self.step_count >= max_steps:
                break
            if cost_budget is not None and self.total_cost >= cost_budget:
                break
            if stop is not None and stop(self):
                break
            self.step()
        return RunResult(records=list(self.records), n_users=self.n_known)
