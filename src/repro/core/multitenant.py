"""The multi-tenant scheduler loop (Section 4).

At each round the scheduler (1) asks its *user picker* which tenant to
serve, (2) asks that tenant's *model picker* which candidate model to
train, (3) trains it through the oracle, and (4) feeds the observation
back into the tenant's state — including the empirical-confidence-bound
recurrence of Algorithm 2 line 6 that the GREEDY/HYBRID user pickers
consume.

The scheduler is deliberately policy-agnostic: every named algorithm in
the paper (FCFS, ROUNDROBIN, RANDOM, GREEDY, HYBRID, MOSTCITED,
MOSTRECENT) is a combination of a user picker and a model picker; the
experiment harness composes them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.model_picking import ModelPicker, Selection
from repro.core.oracles import RewardOracle
from repro.core.user_picking import UserPicker


@dataclass
class TenantState:
    """Everything the scheduler tracks about one tenant.

    Attributes
    ----------
    index:
        Tenant id (row in the oracle).
    picker:
        The tenant's model-picking policy (owns the GP if GP-UCB).
    costs:
        Known per-model costs for this tenant (``c^i_k``).
    serves:
        Number of rounds this tenant has been served (``t_i``).
    best_observed:
        Best reward seen so far (what ``infer`` would serve).  A tenant
        with no model yet has 0 — accuracy of "no model".
    sigma_tilde:
        Empirical potential estimate ``σ̃`` from Algorithm 2 line 6
        (``inf`` until the first serve).
    ecb_min:
        Running minimum of the empirical confidence bound
        ``min_{t'} (y_{t'} + σ̃_{t'})``.
    """

    index: int
    picker: ModelPicker
    costs: np.ndarray
    serves: int = 0
    best_observed: float = 0.0
    sigma_tilde: float = math.inf
    ecb_min: float = math.inf
    total_cost: float = 0.0
    rewards: List[float] = field(default_factory=list)
    arms: List[int] = field(default_factory=list)

    def absorb(
        self, selection: Selection, reward: float, cost: float,
        *, clamp_potential: bool = False,
    ) -> None:
        """Update tenant state after a serve (Algorithm 2 lines 6 & 13).

        The empirical confidence bound after observing ``y`` at the arm
        with selection-time UCB value ``B`` is
        ``min(B, min_{t'} (y_{t'} + σ̃_{t'}))``; the potential ``σ̃`` is
        that bound minus ``y``.  Because ``y + σ̃`` equals the bound,
        the running minimum is simply the bound itself.
        """
        bound = min(selection.ucb_value, self.ecb_min)
        sigma_tilde = bound - reward
        if clamp_potential:
            sigma_tilde = max(sigma_tilde, 0.0)
        if math.isfinite(bound):
            self.ecb_min = bound
            self.sigma_tilde = sigma_tilde
        else:
            # Heuristic pickers report no bound; fall back to a neutral
            # potential so greedy pairings degrade gracefully.
            self.sigma_tilde = max(1.0 - reward, 0.0)
        self.serves += 1
        self.best_observed = max(self.best_observed, reward)
        self.total_cost += cost
        self.rewards.append(float(reward))
        self.arms.append(int(selection.arm))

    def potential_gap(self) -> float:
        """ease.ml's line-8 rule: largest UCB minus best accuracy so far."""
        return self.picker.best_ucb() - self.best_observed


@dataclass(frozen=True)
class StepRecord:
    """One scheduler round, as recorded for analysis."""

    t: int
    user: int
    arm: int
    reward: float
    cost: float
    cumulative_cost: float
    ucb_value: float
    sigma_tilde: float


@dataclass
class RunResult:
    """Full history of a scheduler run."""

    records: List[StepRecord]
    n_users: int

    @property
    def n_steps(self) -> int:
        return len(self.records)

    @property
    def total_cost(self) -> float:
        return self.records[-1].cumulative_cost if self.records else 0.0

    def users(self) -> np.ndarray:
        return np.array([r.user for r in self.records], dtype=int)

    def arms(self) -> np.ndarray:
        return np.array([r.arm for r in self.records], dtype=int)

    def rewards(self) -> np.ndarray:
        return np.array([r.reward for r in self.records])

    def costs(self) -> np.ndarray:
        return np.array([r.cost for r in self.records])

    def cumulative_costs(self) -> np.ndarray:
        return np.array([r.cumulative_cost for r in self.records])

    def serves_per_user(self) -> np.ndarray:
        counts = np.zeros(self.n_users, dtype=int)
        for record in self.records:
            counts[record.user] += 1
        return counts


class MultiTenantScheduler:
    """Serve ``n`` tenants sharing one device (Section 4).

    Parameters
    ----------
    oracle:
        Source of (reward, cost) observations.
    pickers:
        One :class:`ModelPicker` per tenant, aligned with oracle users.
    user_picker:
        The tenant-selection policy.
    clamp_potential:
        Clamp σ̃ at zero in the Algorithm 2 recurrence (off by default,
        staying literal to the paper; see DESIGN.md).
    """

    def __init__(
        self,
        oracle: RewardOracle,
        pickers: Sequence[ModelPicker],
        user_picker: UserPicker,
        *,
        clamp_potential: bool = False,
    ) -> None:
        if len(pickers) != oracle.n_users:
            raise ValueError(
                f"need one picker per oracle user: got {len(pickers)} "
                f"pickers for {oracle.n_users} users"
            )
        for i, picker in enumerate(pickers):
            if picker.n_arms != oracle.n_models(i):
                raise ValueError(
                    f"picker {i} has {picker.n_arms} arms but the oracle "
                    f"offers {oracle.n_models(i)} models for user {i}"
                )
        self.oracle = oracle
        self.tenants = [
            TenantState(index=i, picker=picker, costs=oracle.costs(i))
            for i, picker in enumerate(pickers)
        ]
        self.user_picker = user_picker
        self.clamp_potential = bool(clamp_potential)
        self.step_count = 0
        self.total_cost = 0.0
        self.records: List[StepRecord] = []
        self.user_picker.reset(self)

    @property
    def n_users(self) -> int:
        return len(self.tenants)

    def potentials(self) -> np.ndarray:
        """Current σ̃ vector across tenants (∞ for never-served)."""
        return np.array([t.sigma_tilde for t in self.tenants])

    def global_best_sum(self) -> float:
        """Σ_i best accuracy so far — the progress signal HYBRID watches."""
        return float(sum(t.best_observed for t in self.tenants))

    # ------------------------------------------------------------------
    # The serve loop
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Run one round: pick user, pick model, train, update."""
        user = self.user_picker.pick(self)
        if not 0 <= user < self.n_users:
            raise IndexError(
                f"user picker returned {user}, valid range [0, {self.n_users})"
            )
        tenant = self.tenants[user]
        selection = tenant.picker.select()
        observation = self.oracle.observe(user, selection.arm)
        tenant.picker.observe(selection.arm, observation.reward)
        tenant.absorb(
            selection,
            observation.reward,
            observation.cost,
            clamp_potential=self.clamp_potential,
        )

        self.step_count += 1
        self.total_cost += observation.cost
        record = StepRecord(
            t=self.step_count,
            user=user,
            arm=selection.arm,
            reward=observation.reward,
            cost=observation.cost,
            cumulative_cost=self.total_cost,
            ucb_value=selection.ucb_value,
            sigma_tilde=tenant.sigma_tilde,
        )
        self.records.append(record)
        self.user_picker.notify(self, record)
        return record

    def run(
        self,
        *,
        max_steps: Optional[int] = None,
        cost_budget: Optional[float] = None,
        stop: Optional[Callable[["MultiTenantScheduler"], bool]] = None,
    ) -> RunResult:
        """Run until a step or cost budget is exhausted.

        ``cost_budget`` stops *before* a step that would exceed it when
        the next model's cost is already known to overflow; the final
        partial overshoot of at most one model is allowed otherwise
        (matching how a real cluster finishes its last job).
        """
        if max_steps is None and cost_budget is None and stop is None:
            raise ValueError(
                "provide max_steps, cost_budget or a stop predicate"
            )
        while True:
            if max_steps is not None and self.step_count >= max_steps:
                break
            if cost_budget is not None and self.total_cost >= cost_budget:
                break
            if stop is not None and stop(self):
                break
            self.step()
        return RunResult(records=list(self.records), n_users=self.n_users)
