"""Numeric evaluation of the paper's regret bounds (Theorems 1–3).

These functions plug *measured* quantities from a run — the posterior
variance of the selected arm at each selection, the β schedule actually
used, the noise level and cost extrema — into the right-hand sides of
the theorems.  The test suite then asserts that measured regret stays
below the bound on seeded runs, which is a strong end-to-end check that
the algorithm, the posterior updates and the schedules all match the
analysis.

Notation (matching the paper):

* ``σ`` — observation noise standard deviation of each tenant's GP;
* ``σ²_{t-1}(a_t)`` — posterior variance of the arm selected at round
  ``t``, *before* observing its reward;
* ``c* / c_*`` — max / min cost over all (tenant, model) pairs;
* ``β*`` — the final (largest) β used;
* ``T(i)`` — the set of rounds at which tenant ``i`` was served.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.utils.validation import check_positive


def information_gain_term(
    selected_variances: Sequence[float], noise: float
) -> float:
    """``Σ_t log(1 + σ⁻² σ²_{t-1}(a_t))`` — proportional to info gain."""
    noise = check_positive(noise, "noise")
    variances = np.asarray(selected_variances, dtype=float)
    if np.any(variances < 0):
        raise ValueError("posterior variances must be non-negative")
    return float(np.sum(np.log1p(variances / noise**2)))


def theorem1_bound(
    selected_variances: Sequence[float],
    beta_final: float,
    noise: float,
    c_star: float,
) -> float:
    """RHS of Theorem 1: ``sqrt(T · I(T))`` bounding ``R̃_T``.

    ``I(T) = 4 c* β_T / log(1 + σ⁻²) · Σ_t log(1 + σ⁻² σ²_{t-1}(a_t))``.
    """
    noise = check_positive(noise, "noise")
    c_star = check_positive(c_star, "c_star")
    beta_final = check_positive(beta_final, "beta_final", strict=False)
    T = len(selected_variances)
    if T == 0:
        return 0.0
    gain = information_gain_term(selected_variances, noise)
    info = 4.0 * c_star * beta_final / math.log1p(noise**-2) * gain
    return math.sqrt(T * info)


def theorem1_simple_regret_bound(
    selected_variances: Sequence[float],
    selected_costs: Sequence[float],
    beta_final: float,
    noise: float,
    c_star: float,
) -> float:
    """Theorem 1's bound on ``min_t r_t``: ``sqrt(Ĩ(T) / Σ_t c_{a_t})``.

    ``Ĩ(T) = I(T) / c*``.
    """
    if len(selected_variances) != len(selected_costs):
        raise ValueError("variances and costs must have equal length")
    if not selected_variances:
        return float("inf")
    noise = check_positive(noise, "noise")
    c_star = check_positive(c_star, "c_star")
    gain = information_gain_term(selected_variances, noise)
    info_tilde = 4.0 * beta_final / math.log1p(noise**-2) * gain
    total_cost = float(np.sum(selected_costs))
    return math.sqrt(info_tilde / total_cost)


def _per_user_gain(
    per_user_selected_variances: Sequence[Sequence[float]],
    noises: Sequence[float],
) -> list:
    gains = []
    for variances, noise in zip(per_user_selected_variances, noises):
        gains.append(information_gain_term(variances, noise))
    return gains


def theorem2_bound(
    per_user_selected_variances: Sequence[Sequence[float]],
    beta_star: float,
    noises: Sequence[float],
    c_star: float,
    c_lower: float,
) -> float:
    """RHS of Theorem 2 (ROUNDROBIN): ``sqrt(nT) Σ_i sqrt(I_i(T(i)))``.

    ``I_i = 8 (c*)² β* / (c_* log(1 + (σ*)⁻²)) ·
    Σ_{t∈T(i)} log(1 + (σ_i)⁻² σ²)``.
    """
    n = len(per_user_selected_variances)
    if n == 0:
        return 0.0
    if len(noises) != n:
        raise ValueError(f"need one noise per user; got {len(noises)} for {n}")
    c_star = check_positive(c_star, "c_star")
    c_lower = check_positive(c_lower, "c_lower")
    beta_star = check_positive(beta_star, "beta_star", strict=False)
    sigma_star = max(noises)
    T = sum(len(v) for v in per_user_selected_variances)
    if T == 0:
        return 0.0
    gains = _per_user_gain(per_user_selected_variances, noises)
    prefactor = (
        8.0 * c_star**2 * beta_star / (c_lower * math.log1p(sigma_star**-2))
    )
    total = sum(math.sqrt(prefactor * g) for g in gains)
    return math.sqrt(n * T) * total


def theorem3_bound(
    per_user_selected_variances: Sequence[Sequence[float]],
    beta_star: float,
    noises: Sequence[float],
    c_star: float,
) -> float:
    """RHS of Theorem 3 (GREEDY): ``n sqrt(T) sqrt(Σ_i I_i(T(i)))``.

    ``I_i = 4 c* β* / log(1 + (σ*)⁻²) · Σ_{t∈T(i)} log(1 + (σ_i)⁻² σ²)``.
    """
    n = len(per_user_selected_variances)
    if n == 0:
        return 0.0
    if len(noises) != n:
        raise ValueError(f"need one noise per user; got {len(noises)} for {n}")
    c_star = check_positive(c_star, "c_star")
    beta_star = check_positive(beta_star, "beta_star", strict=False)
    sigma_star = max(noises)
    T = sum(len(v) for v in per_user_selected_variances)
    if T == 0:
        return 0.0
    gains = _per_user_gain(per_user_selected_variances, noises)
    prefactor = 4.0 * c_star * beta_star / math.log1p(sigma_star**-2)
    total = sum(prefactor * g for g in gains)
    return n * math.sqrt(T) * math.sqrt(total)


def asymptotic_rate(n_users: int, T: int, beta_star: float) -> float:
    """The closed-form rate ``n^{3/2} sqrt(β* T log(T/n))`` (eq. 1).

    Both Theorem 2 and Theorem 3 reduce to this order for linear /
    common kernels; it is the quantity the paper's "regret-free"
    discussion divides by T.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")
    log_term = math.log(max(T / n_users, math.e))
    return n_users**1.5 * math.sqrt(max(beta_star, 0.0) * T * log_term)
