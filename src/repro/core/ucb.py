"""Single-tenant model selection: GP-UCB and the cost-aware twist.

Algorithm 1 of the paper, with the Section 3.2 modification available
through ``costs``: the selection rule becomes

.. math:: a_t = \\arg\\max_k \\; \\mu_{t-1}(k) + \\sqrt{\\beta_t / c_k}\\,\\sigma_{t-1}(k)

so that, everything else being equal, slower models get a lower
priority — but a large enough potential reward still makes an expensive
arm worth a bet.

A classic (Gaussian-process-free) UCB1 implementation is included as
the baseline the paper contrasts GP-UCB with in Section 3.1: its regret
bound ``C·K log T`` depends linearly on the number of arms because it
ignores arm correlations, and it must pull every arm once before the
confidence terms are defined.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.beta import AlgorithmOneBeta, BetaSchedule
from repro.gp.regression import FiniteArmGP
from repro.utils.rng import RandomState, SeedLike


class GPUCB:
    """Single-tenant (cost-aware) GP-UCB over a finite arm set.

    Parameters
    ----------
    gp:
        The Gaussian-process belief (Algorithm 1's prior + update
        rules).  The GPUCB instance owns and mutates it.
    beta:
        Exploration schedule; defaults to Algorithm 1's
        ``log(K t²/δ)`` with δ = 0.1.
    costs:
        Optional per-arm positive costs ``c_k``.  ``None`` means
        cost-oblivious (all ones), reproducing Algorithm 1 exactly.
    tie_break:
        "first" (deterministic ``argmax``) or "random" (uniform among
        the maximisers; needs ``seed``).
    """

    def __init__(
        self,
        gp: FiniteArmGP,
        beta: Optional[BetaSchedule] = None,
        costs: Optional[np.ndarray] = None,
        *,
        tie_break: str = "first",
        seed: SeedLike = None,
    ) -> None:
        self.gp = gp
        self.beta = beta if beta is not None else AlgorithmOneBeta(gp.n_arms)
        if costs is None:
            self.costs = np.ones(gp.n_arms)
        else:
            self.costs = np.asarray(costs, dtype=float).copy()
            if self.costs.shape != (gp.n_arms,):
                raise ValueError(
                    f"costs must have shape ({gp.n_arms},), "
                    f"got {self.costs.shape}"
                )
            if np.any(self.costs <= 0):
                raise ValueError("all costs must be strictly positive")
        if tie_break not in ("first", "random"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.tie_break = tie_break
        self._rng = RandomState(seed)

        #: Per-round records used by the theory module: the posterior
        #: variance of the selected arm at selection time, the cost
        #: paid, and the β used.
        self.selected_variances: List[float] = []
        self.selected_costs: List[float] = []
        self.betas_used: List[float] = []
        self.arms_played: List[int] = []
        self.rewards_seen: List[float] = []

        # Memoized score vector keyed by (n_observations, t, β_t): one
        # posterior evaluation is shared by select(), best_ucb() and
        # the scheduler's potential_gap() within a round.
        self._scores_cache: Optional[
            Tuple[int, int, float, np.ndarray]
        ] = None

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    @property
    def t_next(self) -> int:
        """The (1-based) round index of the *next* selection."""
        return self.gp.n_observations + 1

    def ucb_scores(self, t: Optional[int] = None) -> np.ndarray:
        """``B_t(k) = μ_{t-1}(k) + sqrt(β_t / c_k) σ_{t-1}(k)`` for all k.

        The score vector is memoized per ``(t, β_t)`` against the GP's
        observation count, and returned as a **read-only** array:
        ``select()``, :meth:`best_ucb` and the greedy user-picking
        phase all share one posterior evaluation per round instead of
        recomputing it three times.
        """
        t = self.t_next if t is None else int(t)
        beta_t = self.beta(t)
        cache = self._scores_cache
        n_obs = self.gp.n_observations
        if (
            cache is not None
            and cache[0] == n_obs
            and cache[1] == t
            and cache[2] == beta_t
        ):
            return cache[3]
        mean, variance = self.gp.posterior()
        scores = mean + np.sqrt(beta_t / self.costs) * np.sqrt(variance)
        scores.setflags(write=False)
        self._scores_cache = (n_obs, t, beta_t, scores)
        return scores

    def best_ucb(self) -> float:
        """``max_k B_t(k)`` — the optimistic quality reachable next."""
        return float(np.max(self.ucb_scores()))

    # ------------------------------------------------------------------
    # Bandit loop
    # ------------------------------------------------------------------
    def select(self) -> int:
        """Choose the next arm (Algorithm 1 line 4 / the §3.2 twist)."""
        scores = self.ucb_scores()
        if self.tie_break == "first":
            return int(np.argmax(scores))
        best = np.max(scores)
        candidates = np.flatnonzero(scores >= best - 1e-12)
        return int(self._rng.choice(candidates))

    def observe(self, arm: int, reward: float) -> None:
        """Record the reward of playing ``arm`` (Algorithm 1 lines 5–7)."""
        t = self.t_next
        variance_before = self.gp.posterior_variance(arm)
        self.gp.update(arm, reward)
        self.selected_variances.append(float(variance_before))
        self.selected_costs.append(float(self.costs[arm]))
        self.betas_used.append(float(self.beta(t)))
        self.arms_played.append(int(arm))
        self.rewards_seen.append(float(reward))

    def step(self, draw: Callable[[int], float]) -> Tuple[int, float]:
        """One select–observe round; ``draw(arm)`` supplies the reward."""
        arm = self.select()
        reward = float(draw(arm))
        self.observe(arm, reward)
        return arm, reward

    def run(self, draw: Callable[[int], float], n_rounds: int) -> List[Tuple[int, float]]:
        """Run ``n_rounds`` select–observe rounds; return the history."""
        if n_rounds < 0:
            raise ValueError(f"n_rounds must be >= 0, got {n_rounds}")
        return [self.step(draw) for _ in range(n_rounds)]

    @property
    def best_observed(self) -> float:
        """Best reward seen so far (what ease.ml serves to ``infer``)."""
        if not self.rewards_seen:
            return float("-inf")
        return max(self.rewards_seen)

    def recommend(self) -> int:
        """Arm with the best *posterior mean* (the model to hand back)."""
        return int(np.argmax(self.gp.posterior_mean()))


class UCB1:
    """Classic cost-aware UCB1 (no arm correlations).

    Selection rule: play each arm once, then
    ``argmax_k  ȳ_k + sqrt(2 log t / (c_k n_k))`` where ``n_k`` counts
    plays of arm k.  With unit costs this is the textbook UCB1 whose
    ``C·K log T`` regret the paper quotes; the ``1/c_k`` scaling mirrors
    the Section 3.2 twist so the two algorithms stay comparable in the
    cost-aware benchmarks.
    """

    def __init__(
        self,
        n_arms: int,
        costs: Optional[np.ndarray] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        self.n_arms = int(n_arms)
        if self.n_arms < 1:
            raise ValueError(f"n_arms must be >= 1, got {n_arms}")
        if costs is None:
            self.costs = np.ones(self.n_arms)
        else:
            self.costs = np.asarray(costs, dtype=float).copy()
            if self.costs.shape != (self.n_arms,):
                raise ValueError(
                    f"costs must have shape ({self.n_arms},), "
                    f"got {self.costs.shape}"
                )
            if np.any(self.costs <= 0):
                raise ValueError("all costs must be strictly positive")
        self._rng = RandomState(seed)
        self.counts = np.zeros(self.n_arms, dtype=int)
        self.sums = np.zeros(self.n_arms)
        self.arms_played: List[int] = []
        self.rewards_seen: List[float] = []

    @property
    def t(self) -> int:
        return int(np.sum(self.counts))

    def select(self) -> int:
        unplayed = np.flatnonzero(self.counts == 0)
        if unplayed.size:
            return int(unplayed[0])
        means = self.sums / self.counts
        bonus = np.sqrt(
            2.0 * math.log(max(self.t, 2)) / (self.costs * self.counts)
        )
        return int(np.argmax(means + bonus))

    def observe(self, arm: int, reward: float) -> None:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self.n_arms})")
        self.counts[arm] += 1
        self.sums[arm] += float(reward)
        self.arms_played.append(int(arm))
        self.rewards_seen.append(float(reward))

    def step(self, draw: Callable[[int], float]) -> Tuple[int, float]:
        arm = self.select()
        reward = float(draw(arm))
        self.observe(arm, reward)
        return arm, reward

    @property
    def best_observed(self) -> float:
        if not self.rewards_seen:
            return float("-inf")
        return max(self.rewards_seen)
