"""Per-tenant model-picking policies (the "model-picking phase").

Each tenant owns one picker instance; a picker decides which candidate
model that tenant trains next and absorbs the resulting observation.

* :class:`GPUCBPicker` — Algorithm 2 lines 9–12 (equivalently one step
  of Algorithm 1), cost-aware when given costs.  This is what ease.ml
  uses.
* :class:`MostCitedPicker` / :class:`MostRecentPicker` — the two
  heuristics the paper's users employed before ease.ml existed
  (Section 5.2): train networks by descending Google-Scholar citation
  count, or by descending publication date.
* :class:`RandomModelPicker` and :class:`FixedOrderPicker` — additional
  baselines for ablations.

Non-GP pickers report an infinite UCB value in their
:class:`Selection`; the greedy user-picking recurrence treats that as
"no new bound information", which keeps the two phases composable even
in unusual pairings.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, NamedTuple, Optional, Sequence

import numpy as np

from repro.core.beta import BetaSchedule
from repro.core.ucb import GPUCB
from repro.gp.regression import FiniteArmGP
from repro.utils.rng import RandomState, SeedLike


class Selection(NamedTuple):
    """A picker's choice, with the scores that produced it.

    ``ucb_value`` is ``B_t(a)`` at selection time — the quantity the
    greedy user-picking phase (Algorithm 2 line 6) feeds into its
    empirical-confidence-bound recurrence.
    """

    arm: int
    ucb_value: float
    mean: float
    std: float


class ModelPicker(ABC):
    """One tenant's strategy for choosing the next model to train."""

    @property
    @abstractmethod
    def n_arms(self) -> int:
        """Number of candidate models."""

    @abstractmethod
    def select(self) -> Selection:
        """Choose the next arm (does not yet record anything)."""

    @abstractmethod
    def observe(self, arm: int, reward: float) -> None:
        """Absorb the observed reward for ``arm``."""

    @property
    @abstractmethod
    def n_observations(self) -> int:
        """How many observations this tenant has made (``t_i``)."""

    def best_ucb(self) -> float:
        """``max_k B(k)`` under the current belief (∞ if undefined)."""
        return math.inf

    @property
    def exhausted(self) -> bool:
        """True when every arm has been tried at least once."""
        return len(self._tried()) >= self.n_arms

    def _tried(self) -> set:
        return set()


class GPUCBPicker(ModelPicker):
    """GP-UCB model picking (Algorithm 2 lines 9–12).

    Parameters mirror :class:`repro.core.ucb.GPUCB`: pass ``costs`` for
    the cost-aware variant (√(β/c_k) scaling), ``None`` for the
    cost-oblivious one.
    """

    def __init__(
        self,
        prior_cov: np.ndarray,
        beta: BetaSchedule,
        costs: Optional[np.ndarray] = None,
        *,
        noise: float = 0.1,
        prior_mean: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> None:
        gp = FiniteArmGP(prior_cov, prior_mean, noise=noise)
        self._ucb = GPUCB(gp, beta, costs, seed=seed)

    @property
    def ucb(self) -> GPUCB:
        """The wrapped single-tenant GP-UCB (exposes run records)."""
        return self._ucb

    @property
    def n_arms(self) -> int:
        return self._ucb.gp.n_arms

    @property
    def n_observations(self) -> int:
        return self._ucb.gp.n_observations

    def select(self) -> Selection:
        # One memoized score evaluation; the posterior views are cached
        # inside the GP, so this allocates nothing per pick.
        scores = self._ucb.ucb_scores()
        arm = int(np.argmax(scores))
        mean, variance = self._ucb.gp.posterior()
        return Selection(
            arm,
            float(scores[arm]),
            float(mean[arm]),
            math.sqrt(float(variance[arm])),
        )

    def observe(self, arm: int, reward: float) -> None:
        self._ucb.observe(arm, reward)

    def best_ucb(self) -> float:
        return self._ucb.best_ucb()

    def _tried(self) -> set:
        return set(self._ucb.arms_played)


class _OrderedHeuristicPicker(ModelPicker):
    """Shared machinery: walk a fixed preference order once, then stick
    with the best model found (the user has "finished exploring")."""

    def __init__(self, order: Sequence[int], n_arms: int) -> None:
        order_list = [int(a) for a in order]
        if sorted(order_list) != list(range(n_arms)):
            raise ValueError(
                "order must be a permutation of range(n_arms); "
                f"got {order_list} for {n_arms} arms"
            )
        self._order = order_list
        self._n_arms = int(n_arms)
        self._position = 0
        self._rewards: List[float] = []
        self._arms: List[int] = []

    @property
    def n_arms(self) -> int:
        return self._n_arms

    @property
    def n_observations(self) -> int:
        return len(self._rewards)

    def select(self) -> Selection:
        if self._position < len(self._order):
            arm = self._order[self._position]
        else:
            # Exploration finished: keep using (re-validating) the best
            # model seen.  Loss curves are unaffected; cost keeps
            # accruing, which is exactly the inefficiency the paper
            # ascribes to these heuristics.
            best_idx = int(np.argmax(self._rewards))
            arm = self._arms[best_idx]
        return Selection(arm, math.inf, math.nan, math.nan)

    def observe(self, arm: int, reward: float) -> None:
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        if (
            self._position < len(self._order)
            and arm == self._order[self._position]
        ):
            self._position += 1
        self._arms.append(int(arm))
        self._rewards.append(float(reward))

    def _tried(self) -> set:
        return set(self._arms)


class MostCitedPicker(_OrderedHeuristicPicker):
    """Try models in descending citation count (Section 5.2 heuristic)."""

    def __init__(self, citations: Sequence[float]) -> None:
        citations = np.asarray(citations, dtype=float)
        order = list(np.argsort(-citations, kind="stable"))
        super().__init__(order, citations.shape[0])
        self.citations = citations.copy()


class MostRecentPicker(_OrderedHeuristicPicker):
    """Try models in descending publication date (Section 5.2 heuristic)."""

    def __init__(self, years: Sequence[float]) -> None:
        years = np.asarray(years, dtype=float)
        order = list(np.argsort(-years, kind="stable"))
        super().__init__(order, years.shape[0])
        self.years = years.copy()


class FixedOrderPicker(_OrderedHeuristicPicker):
    """Try models in an explicit caller-supplied order."""

    def __init__(self, order: Sequence[int]) -> None:
        super().__init__(order, len(list(order)))


class UCB1Picker(ModelPicker):
    """Classic (correlation-blind) UCB1 model picking.

    The baseline the paper contrasts GP-UCB with in Section 3.1: its
    ``C·K log T`` regret scales with the number of arms because every
    arm must be pulled at least once before the confidence terms are
    defined — exactly the start-up cost GP-UCB's kernel avoids.
    Wraps :class:`repro.core.ucb.UCB1` (cost-aware when given costs).
    """

    def __init__(
        self,
        n_arms: int,
        costs: Optional[np.ndarray] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        from repro.core.ucb import UCB1

        self._ucb1 = UCB1(n_arms, costs, seed=seed)

    @property
    def n_arms(self) -> int:
        return self._ucb1.n_arms

    @property
    def n_observations(self) -> int:
        return self._ucb1.t

    def select(self) -> Selection:
        arm = self._ucb1.select()
        if self._ucb1.counts[arm] == 0:
            return Selection(arm, math.inf, math.nan, math.nan)
        mean = float(self._ucb1.sums[arm] / self._ucb1.counts[arm])
        bonus = math.sqrt(
            2.0
            * math.log(max(self._ucb1.t, 2))
            / (self._ucb1.costs[arm] * self._ucb1.counts[arm])
        )
        return Selection(arm, mean + bonus, mean, bonus)

    def observe(self, arm: int, reward: float) -> None:
        self._ucb1.observe(arm, reward)

    def best_ucb(self) -> float:
        if np.any(self._ucb1.counts == 0):
            return math.inf
        means = self._ucb1.sums / self._ucb1.counts
        bonus = np.sqrt(
            2.0
            * math.log(max(self._ucb1.t, 2))
            / (self._ucb1.costs * self._ucb1.counts)
        )
        return float(np.max(means + bonus))

    def _tried(self) -> set:
        return set(self._ucb1.arms_played)


class RandomModelPicker(ModelPicker):
    """Uniformly random model choice (sanity-check baseline)."""

    def __init__(self, n_arms: int, *, seed: SeedLike = None) -> None:
        self._n_arms = int(n_arms)
        if self._n_arms < 1:
            raise ValueError(f"n_arms must be >= 1, got {n_arms}")
        self._rng = RandomState(seed)
        self._arms: List[int] = []
        self._rewards: List[float] = []

    @property
    def n_arms(self) -> int:
        return self._n_arms

    @property
    def n_observations(self) -> int:
        return len(self._rewards)

    def select(self) -> Selection:
        arm = int(self._rng.integers(self._n_arms))
        return Selection(arm, math.inf, math.nan, math.nan)

    def observe(self, arm: int, reward: float) -> None:
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        self._arms.append(int(arm))
        self._rewards.append(float(reward))

    def _tried(self) -> set:
        return set(self._arms)
