"""GP-EI and GP-PI model pickers (the paper's §4.5 future work).

Section 4.5: "our analysis focuses on GP-UCB and it is not clear how
to integrate other algorithms such as GP-EI [32] and GP-PI [25] into a
multi-tenant framework."  This module supplies that integration at the
*mechanism* level: both acquisitions implement the same
:class:`~repro.core.model_picking.ModelPicker` interface, so every
user-picking strategy (including GREEDY/HYBRID) composes with them
unchanged — the :class:`Selection`'s ``ucb_value`` reports a UCB-style
optimistic bound so the Algorithm 2 σ̃ recurrence keeps working.  No
regret bound is claimed (that remains open, as the paper says).

Acquisitions, with ``z = (μ(k) − y⁺ − ξ) / σ(k)`` and ``y⁺`` the best
observed reward:

* expected improvement  ``EI(k) = (μ − y⁺ − ξ)Φ(z) + σφ(z)``;
* probability of improvement  ``PI(k) = Φ(z)``.

Cost-awareness divides the acquisition by ``c_k`` (EI per unit cost),
the standard practical recipe the paper cites from Snoek et al.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.stats import norm

from repro.core.beta import AlgorithmOneBeta, BetaSchedule
from repro.core.model_picking import ModelPicker, Selection
from repro.gp.regression import FiniteArmGP
from repro.utils.rng import SeedLike


class _AcquisitionPicker(ModelPicker):
    """Shared machinery for GP-EI / GP-PI pickers."""

    def __init__(
        self,
        prior_cov: np.ndarray,
        costs: Optional[np.ndarray] = None,
        *,
        xi: float = 0.01,
        noise: float = 0.1,
        prior_mean: Optional[np.ndarray] = None,
        beta: Optional[BetaSchedule] = None,
        seed: SeedLike = None,
    ) -> None:
        self.gp = FiniteArmGP(prior_cov, prior_mean, noise=noise)
        if costs is None:
            self.costs = np.ones(self.gp.n_arms)
        else:
            self.costs = np.asarray(costs, dtype=float).copy()
            if self.costs.shape != (self.gp.n_arms,):
                raise ValueError(
                    f"costs must have shape ({self.gp.n_arms},), "
                    f"got {self.costs.shape}"
                )
            if np.any(self.costs <= 0):
                raise ValueError("all costs must be strictly positive")
        if xi < 0:
            raise ValueError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)
        # β only feeds the Selection's optimistic bound for the greedy
        # user-picking phase; the arm choice itself uses the
        # acquisition value.
        self._beta = beta if beta is not None else AlgorithmOneBeta(
            self.gp.n_arms
        )
        self._rewards: list = []

    # -- acquisition ----------------------------------------------------
    def _z(self) -> tuple:
        mean, variance = self.gp.posterior()
        std = np.sqrt(np.maximum(variance, 1e-18))
        best = self.best_observed
        z = (mean - best - self.xi) / std
        return mean, std, z

    def _acquisition(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- ModelPicker interface -------------------------------------------
    @property
    def n_arms(self) -> int:
        return self.gp.n_arms

    @property
    def n_observations(self) -> int:
        return self.gp.n_observations

    @property
    def best_observed(self) -> float:
        return max(self._rewards) if self._rewards else 0.0

    def select(self) -> Selection:
        scores = self._acquisition() / self.costs
        arm = int(np.argmax(scores))
        mean = self.gp.posterior_mean(arm)
        std = float(self.gp.posterior_std(arm))
        beta_t = self._beta(self.n_observations + 1)
        ucb = mean + math.sqrt(beta_t / self.costs[arm]) * std
        return Selection(arm, float(ucb), float(mean), std)

    def observe(self, arm: int, reward: float) -> None:
        self.gp.update(arm, reward)
        self._rewards.append(float(reward))

    def best_ucb(self) -> float:
        mean, variance = self.gp.posterior()
        beta_t = self._beta(self.n_observations + 1)
        scores = mean + np.sqrt(beta_t / self.costs) * np.sqrt(variance)
        return float(np.max(scores))

    def _tried(self) -> set:
        return set(self.gp.observed_arms)


class GPEIPicker(_AcquisitionPicker):
    """Expected-improvement model picking (GP-EI, Snoek et al.)."""

    def _acquisition(self) -> np.ndarray:
        mean, std, z = self._z()
        improvement = mean - self.best_observed - self.xi
        ei = improvement * norm.cdf(z) + std * norm.pdf(z)
        return np.maximum(ei, 0.0)


class GPPIPicker(_AcquisitionPicker):
    """Probability-of-improvement model picking (GP-PI, Kushner)."""

    def _acquisition(self) -> np.ndarray:
        _, _, z = self._z()
        return norm.cdf(z)
