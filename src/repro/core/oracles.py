"""Reward/cost oracles: where scheduler observations come from.

A scheduler never touches datasets or trainers directly — it asks an
oracle to *observe* a ``(user, model)`` pair and gets back a reward
(accuracy) and the cost (execution time) it paid.  Two families of
oracle exist in this repository:

* :class:`MatrixOracle` (here) — replays a quality/cost matrix,
  optionally perturbed by observation noise.  This mirrors the paper's
  own evaluation protocol, which replays measured accuracies rather
  than retraining 8 CNNs for every scheduler configuration.
* ``LiveTrainerOracle`` (in :mod:`repro.engine.trainer`) — actually
  trains models from the mini ML library, for end-to-end runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple, Optional

import numpy as np

from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_matrix


class Observation(NamedTuple):
    """One oracle response: the reward earned and the cost paid."""

    reward: float
    cost: float


class RewardOracle(ABC):
    """Source of (reward, cost) observations for ``(user, model)`` pairs."""

    @property
    @abstractmethod
    def n_users(self) -> int:
        """Number of tenants this oracle can serve."""

    @abstractmethod
    def n_models(self, user: int) -> int:
        """Number of candidate models for ``user`` (the paper's K_i)."""

    @abstractmethod
    def costs(self, user: int) -> np.ndarray:
        """Known execution costs for each of ``user``'s models.

        ease.ml assumes costs are known up front ("simple profiling and
        submission" in Figure 1); cost-oblivious runs simply pass a
        vector of ones.
        """

    @abstractmethod
    def observe(self, user: int, model: int) -> Observation:
        """Evaluate ``model`` for ``user``; return the reward and cost."""

    def add_user(self, *args, **kwargs) -> int:
        """Grow the oracle by one user row; returns the new user id.

        Dynamic tenant arrival needs somewhere for the newcomer's
        observations to come from.  Oracles that replay fixed data
        (:class:`MatrixOracle`) override this; oracles that are
        inherently fixed raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} serves a fixed user set and cannot "
            "grow rows for late arrivals"
        )

    def _check_pair(self, user: int, model: int) -> None:
        if not 0 <= user < self.n_users:
            raise IndexError(f"user {user} out of range [0, {self.n_users})")
        if not 0 <= model < self.n_models(user):
            raise IndexError(
                f"model {model} out of range [0, {self.n_models(user)}) "
                f"for user {user}"
            )


class MatrixOracle(RewardOracle):
    """Trace-replay oracle over quality/cost matrices.

    Parameters
    ----------
    quality:
        ``(n_users, n_models)`` expected rewards (accuracies in [0, 1]).
    cost:
        Either ``None`` (all costs 1 — the cost-oblivious setting), a
        ``(n_models,)`` per-model cost vector shared by every user, or a
        full ``(n_users, n_models)`` matrix.
    noise_std:
        Standard deviation of i.i.d. Gaussian observation noise added
        to the expected quality on every draw (machine-learning training
        is stochastic; Section 3's ``x_{a_t,t}`` is a random reward).
    clip:
        When true (default), noisy rewards are clipped back to [0, 1],
        matching the convention of Appendix B.
    seed:
        Seed / generator for the observation noise.
    """

    def __init__(
        self,
        quality: np.ndarray,
        cost: Optional[np.ndarray] = None,
        *,
        noise_std: float = 0.0,
        clip: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self._quality = check_matrix(quality, "quality")
        n_users, n_models = self._quality.shape
        if cost is None:
            self._cost = np.ones((n_users, n_models))
        else:
            cost_array = np.asarray(cost, dtype=float)
            if cost_array.ndim == 1:
                if cost_array.shape[0] != n_models:
                    raise ValueError(
                        f"cost vector must have length {n_models}, "
                        f"got {cost_array.shape[0]}"
                    )
                self._cost = np.tile(cost_array, (n_users, 1))
            else:
                self._cost = check_matrix(
                    cost, "cost", shape=(n_users, n_models)
                )
        if np.any(self._cost <= 0):
            raise ValueError("all costs must be strictly positive")
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        self.noise_std = float(noise_std)
        self.clip = bool(clip)
        self._rng = RandomState(seed)
        self.observation_count = 0

    # ------------------------------------------------------------------
    # RewardOracle interface
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return self._quality.shape[0]

    def n_models(self, user: int) -> int:
        if not 0 <= user < self.n_users:
            raise IndexError(f"user {user} out of range [0, {self.n_users})")
        return self._quality.shape[1]

    def costs(self, user: int) -> np.ndarray:
        if not 0 <= user < self.n_users:
            raise IndexError(f"user {user} out of range [0, {self.n_users})")
        return self._cost[user].copy()

    def add_user(
        self,
        quality_row: np.ndarray,
        cost_row: Optional[np.ndarray] = None,
    ) -> int:
        """Append one user's quality (and cost) row; returns its id.

        This is how a late arrival gets an oracle row: the matrices
        grow downward, existing user ids are untouched, and the new
        tenant id is the fresh row index.
        """
        quality_row = np.asarray(quality_row, dtype=float).ravel()
        n_models = self._quality.shape[1]
        if quality_row.shape[0] != n_models:
            raise ValueError(
                f"quality row must have length {n_models}, "
                f"got {quality_row.shape[0]}"
            )
        if cost_row is None:
            cost_row = np.ones(n_models)
        else:
            cost_row = np.asarray(cost_row, dtype=float).ravel()
            if cost_row.shape[0] != n_models:
                raise ValueError(
                    f"cost row must have length {n_models}, "
                    f"got {cost_row.shape[0]}"
                )
            if np.any(cost_row <= 0):
                raise ValueError("all costs must be strictly positive")
        self._quality = np.vstack([self._quality, quality_row[None, :]])
        self._cost = np.vstack([self._cost, cost_row[None, :]])
        return self._quality.shape[0] - 1

    def observe(self, user: int, model: int) -> Observation:
        self._check_pair(user, model)
        reward = self._quality[user, model]
        if self.noise_std > 0:
            reward = reward + self.noise_std * self._rng.normal()
            if self.clip:
                reward = min(max(reward, 0.0), 1.0)
        self.observation_count += 1
        return Observation(float(reward), float(self._cost[user, model]))

    # ------------------------------------------------------------------
    # Ground truth (for regret accounting by the harness, never used by
    # schedulers)
    # ------------------------------------------------------------------
    def true_mean(self, user: int, model: int) -> float:
        self._check_pair(user, model)
        return float(self._quality[user, model])

    def best_quality(self, user: int) -> float:
        """The paper's ``μ*_i`` — best achievable expected quality."""
        if not 0 <= user < self.n_users:
            raise IndexError(f"user {user} out of range [0, {self.n_users})")
        return float(np.max(self._quality[user]))

    def total_cost(self, user: Optional[int] = None) -> float:
        """Total runtime of all models (for one user or everyone)."""
        if user is None:
            return float(np.sum(self._cost))
        if not 0 <= user < self.n_users:
            raise IndexError(f"user {user} out of range [0, {self.n_users})")
        return float(np.sum(self._cost[user]))
