"""Regret and accuracy-loss accounting.

The paper uses four related quantities; all are implemented here with
the exact definitions of Sections 3–4 and Appendix A:

* classic cumulative regret ``R_T = Σ_t (μ* − μ_{a_t})``;
* the "ease.ml regret" ``R'_T = Σ_t (μ* − E[max_{t'} x_{a_{t'},t'}])``
  driven by the best model found so far (what ``infer`` serves);
* cost-aware regret ``R̃_T = Σ_t c_{a_t} r_t`` (Theorem 1);
* multi-tenant cost-aware regret
  ``R_T = Σ_t C_t Σ_i r^i_{t_i}`` where an unserved user keeps paying
  the regret of the model from the last round it was served (and pays
  ``μ*_i`` before its first serve — "it does not have a model to use");
* accuracy loss ``l_{i,T} = a*_i − max_{t≤T} a_{i,t}`` and its mean
  across users (Appendix A eq. 2–3), the metric every figure plots.

Trackers are fed *true means* by the harness (the scheduler never sees
them) so the regret is exact rather than estimated from noisy draws.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_vector


class SingleTenantRegretTracker:
    """Regret bookkeeping for one user (Section 3).

    Parameters
    ----------
    true_means:
        ``(K,)`` expected rewards per arm — ``μ_k`` in the paper.  The
        optimum ``μ*`` is their max.
    """

    def __init__(self, true_means: np.ndarray) -> None:
        self.true_means = check_vector(true_means, "true_means")
        self.mu_star = float(np.max(self.true_means))
        self.instantaneous: List[float] = []
        self.costs: List[float] = []
        self._best_mean_so_far = float("-inf")
        self._best_so_far_series: List[float] = []

    def record(self, arm: int, cost: float = 1.0) -> float:
        """Record playing ``arm``; return the instantaneous regret r_t."""
        if not 0 <= arm < self.true_means.shape[0]:
            raise IndexError(
                f"arm {arm} out of range [0, {self.true_means.shape[0]})"
            )
        if cost <= 0:
            raise ValueError(f"cost must be > 0, got {cost}")
        regret = self.mu_star - float(self.true_means[arm])
        self.instantaneous.append(regret)
        self.costs.append(float(cost))
        self._best_mean_so_far = max(
            self._best_mean_so_far, float(self.true_means[arm])
        )
        self._best_so_far_series.append(self._best_mean_so_far)
        return regret

    @property
    def t(self) -> int:
        return len(self.instantaneous)

    @property
    def cumulative(self) -> float:
        """Classic ``R_T``."""
        return float(np.sum(self.instantaneous))

    @property
    def cost_aware(self) -> float:
        """Theorem 1's ``R̃_T = Σ_t c_{a_t} r_t``."""
        return float(np.dot(self.instantaneous, self.costs))

    @property
    def easeml(self) -> float:
        """``R'_T`` — regret of the best model so far at each round."""
        if not self._best_so_far_series:
            return 0.0
        return float(
            np.sum(self.mu_star - np.asarray(self._best_so_far_series))
        )

    @property
    def minimum_instantaneous(self) -> float:
        """``min_t r_t`` — the simple-regret quantity of Theorem 1."""
        if not self.instantaneous:
            return float("inf")
        return float(np.min(self.instantaneous))

    @property
    def accuracy_loss(self) -> float:
        """``μ* − best mean played so far`` (0 once the best arm is hit)."""
        if self._best_mean_so_far == float("-inf"):
            return self.mu_star
        return self.mu_star - self._best_mean_so_far


class MultiTenantRegretTracker:
    """Regret bookkeeping across ``n`` tenants (Section 4.1).

    Parameters
    ----------
    true_means_per_user:
        Sequence of ``(K_i,)`` arrays of expected rewards.
    initial_reward:
        The reward a user "has" before its first serve.  The paper's
        FCFS example charges the full ``μ*_i`` ("it does not have a
        model to use"), i.e. treats the pre-serve reward as 0 — which
        is the default here.
    """

    def __init__(
        self,
        true_means_per_user: Sequence[np.ndarray],
        *,
        initial_reward: float = 0.0,
    ) -> None:
        self.true_means = [
            check_vector(m, f"true_means_per_user[{i}]")
            for i, m in enumerate(true_means_per_user)
        ]
        if not self.true_means:
            raise ValueError("at least one tenant is required")
        self.mu_star = np.array([float(np.max(m)) for m in self.true_means])
        self.n_users = len(self.true_means)
        # Reward of the model from the last serve (X^i_t in the paper).
        self._last_reward = np.full(self.n_users, float(initial_reward))
        # Best expected reward obtained so far (for R'_T / accuracy loss).
        self._best_reward = np.full(self.n_users, float(initial_reward))
        self.steps = 0
        self._cumulative = 0.0
        self._cumulative_easeml = 0.0
        self._cost_total = 0.0
        self._history_cum: List[float] = []
        self._history_cost: List[float] = []

    def record(self, user: int, arm: int, cost: float = 1.0) -> float:
        """Record that round ``t`` served ``user`` with ``arm``.

        Returns the round's contribution ``C_t · Σ_i r^i_{t_i}`` (the
        per-round regret of the whole tenant population).
        """
        if not 0 <= user < self.n_users:
            raise IndexError(f"user {user} out of range [0, {self.n_users})")
        means = self.true_means[user]
        if not 0 <= arm < means.shape[0]:
            raise IndexError(
                f"arm {arm} out of range [0, {means.shape[0]}) for user {user}"
            )
        if cost <= 0:
            raise ValueError(f"cost must be > 0, got {cost}")

        # The served user's "current model" switches to the arm just
        # played; everyone else sticks with their previous model.
        self._last_reward[user] = float(means[arm])
        self._best_reward[user] = max(
            self._best_reward[user], float(means[arm])
        )

        per_user_regret = self.mu_star - self._last_reward
        contribution = float(cost) * float(np.sum(per_user_regret))
        easeml_contribution = float(cost) * float(
            np.sum(self.mu_star - self._best_reward)
        )
        self.steps += 1
        self._cumulative += contribution
        self._cumulative_easeml += easeml_contribution
        self._cost_total += float(cost)
        self._history_cum.append(self._cumulative)
        self._history_cost.append(self._cost_total)
        return contribution

    @property
    def cumulative(self) -> float:
        """``R_T = Σ_t C_t Σ_i r^i_{t_i}``."""
        return self._cumulative

    @property
    def cumulative_easeml(self) -> float:
        """``R'_T`` with best-so-far rewards (always ≤ ``cumulative``)."""
        return self._cumulative_easeml

    @property
    def total_cost(self) -> float:
        return self._cost_total

    @property
    def history(self) -> np.ndarray:
        """Cumulative regret after each round, shape ``(steps,)``."""
        return np.asarray(self._history_cum)

    # ------------------------------------------------------------------
    # Accuracy loss (Appendix A)
    # ------------------------------------------------------------------
    def accuracy_loss_per_user(self) -> np.ndarray:
        """``l_{i,T} = a*_i − max_{t≤T} a_{i,t}`` for every user."""
        return self.mu_star - self._best_reward

    def average_accuracy_loss(self) -> float:
        """``l_T = (1/n) Σ_i l_{i,T}`` (eq. 3)."""
        return float(np.mean(self.accuracy_loss_per_user()))

    def max_accuracy_loss(self) -> float:
        """Worst single user's loss (not the paper's worst-case-of-runs,
        which aggregates across repetitions — see the harness)."""
        return float(np.max(self.accuracy_loss_per_user()))


def accuracy_loss_curve(
    checkpoint_axis: np.ndarray,
    step_axis: np.ndarray,
    losses_at_steps: np.ndarray,
    *,
    initial_loss: Optional[float] = None,
) -> np.ndarray:
    """Sample a per-step loss series onto a checkpoint grid.

    ``step_axis`` (monotone, e.g. cumulative cost after each round) and
    ``losses_at_steps`` describe the measured curve; the returned array
    holds, for every checkpoint, the loss after the *last step not
    exceeding it* (a right-continuous step function — accuracy loss only
    changes when a training run finishes).

    ``initial_loss`` is used for checkpoints before the first completed
    step (defaults to the first measured loss).
    """
    checkpoints = np.asarray(checkpoint_axis, dtype=float)
    steps = np.asarray(step_axis, dtype=float)
    losses = np.asarray(losses_at_steps, dtype=float)
    if steps.shape != losses.shape:
        raise ValueError(
            f"step_axis {steps.shape} and losses {losses.shape} must match"
        )
    if steps.size and np.any(np.diff(steps) < 0):
        raise ValueError("step_axis must be non-decreasing")
    if initial_loss is None:
        initial_loss = float(losses[0]) if losses.size else float("nan")
    # index of the last step with step_axis <= checkpoint
    idx = np.searchsorted(steps, checkpoints, side="right") - 1
    out = np.empty_like(checkpoints)
    before = idx < 0
    out[before] = initial_loss
    out[~before] = losses[idx[~before]] if losses.size else initial_loss
    return out
