"""User-picking policies (the "user-picking phase" of Section 4).

* :class:`FCFSPicker` — first come, first served; the strategy whose
  Θ(T) regret pathology motivates the paper's Section 4.1 example.
* :class:`RoundRobinPicker` — Section 4.2, absolute fairness,
  Theorem 2 regret bound.
* :class:`RandomUserPicker` — uniform sampling with replacement; the
  paper observes ROUNDROBIN beats it slightly (sampling without
  replacement).
* :class:`GreedyPicker` — Algorithm 2 lines 6–8: candidate set of
  above-average empirical potentials σ̃, then a configurable line-8
  rule (ease.ml default: max gap between largest UCB and best accuracy
  so far).
* :class:`HybridPicker` — Section 4.4: GREEDY until the freezing stage
  (candidate set stable and no global progress for ``s`` steps), then
  ROUNDROBIN.  This is ease.ml's default algorithm.

Pickers are stateful and bound to one scheduler via ``reset``.  Every
policy ranges over the scheduler's **active tenant set** (stable ids
from :meth:`~repro.core.multitenant.MultiTenantScheduler.active_ids`),
never ``range(n_users)``, so membership can change between any two
picks: arrivals join the rotation, departures drop out of it, and the
``on_arrival`` / ``on_departure`` hooks let stateful pickers adjust.
With a fixed membership the active ids are ``0..n-1`` and every policy
behaves exactly as in the paper.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, FrozenSet, List, Optional

import numpy as np

from repro.utils.rng import RandomState, SeedLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.multitenant import MultiTenantScheduler, StepRecord


class UserPicker(ABC):
    """Strategy choosing which tenant to serve next."""

    @abstractmethod
    def pick(self, scheduler: "MultiTenantScheduler") -> int:
        """Return the stable id of the tenant to serve this round."""

    def notify(
        self, scheduler: "MultiTenantScheduler", record: "StepRecord"
    ) -> None:
        """Hook called after each completed round (default: no-op)."""

    def reset(self, scheduler: "MultiTenantScheduler") -> None:
        """Hook called when the picker is attached to a scheduler."""

    def on_arrival(
        self, scheduler: "MultiTenantScheduler", tenant_id: int
    ) -> None:
        """Hook called after a tenant joins the active set (no-op)."""

    def on_departure(
        self, scheduler: "MultiTenantScheduler", tenant_id: int
    ) -> None:
        """Hook called after a tenant leaves the active set (no-op)."""


class FCFSPicker(UserPicker):
    """First come, first served (Section 4.1's strawman).

    Serves the lowest-id active tenant until its exploration budget is
    spent — one serve per candidate model, the "exhaustive search"
    behaviour the paper ascribes to its users — then the next, and so
    on.  (The quota formulation rather than "all arms tried" keeps FCFS
    well-defined under GP-UCB model picking, which deliberately never
    plays hopeless arms.)  After every active tenant's quota is spent
    it keeps cycling so long runs remain well-defined.  Departures
    simply drop out of the scan; arrivals join it at their id position.
    """

    def __init__(self) -> None:
        self._current = 0

    def reset(self, scheduler: "MultiTenantScheduler") -> None:
        self._current = 0

    @staticmethod
    def _done(tenant) -> bool:
        return (
            tenant.picker.exhausted
            or tenant.serves >= tenant.picker.n_arms
        )

    def pick(self, scheduler: "MultiTenantScheduler") -> int:
        ids = scheduler.active_ids()
        n = len(ids)
        # Resume scanning from the remembered id (or the next surviving
        # one after it, if that tenant departed).
        start = 0
        while start < n and ids[start] < self._current:
            start += 1
        if start == n:
            start = 0
        for offset in range(n):
            candidate = ids[(start + offset) % n]
            if not self._done(scheduler.tenants[candidate]):
                self._current = candidate
                return candidate
        # Everyone done: round-robin over the active tenants.
        candidate = ids[start]
        self._current = ids[(start + 1) % n]
        return candidate


class RoundRobinPicker(UserPicker):
    """Serve user ``t mod n`` over the active set (Section 4.2)."""

    def __init__(self) -> None:
        self._counter = 0

    def reset(self, scheduler: "MultiTenantScheduler") -> None:
        self._counter = 0

    def pick(self, scheduler: "MultiTenantScheduler") -> int:
        ids = scheduler.active_ids()
        user = ids[self._counter % len(ids)]
        self._counter += 1
        return user


class RandomUserPicker(UserPicker):
    """Uniformly random active tenant each round."""

    def __init__(self, *, seed: SeedLike = None) -> None:
        self._rng = RandomState(seed)

    def pick(self, scheduler: "MultiTenantScheduler") -> int:
        ids = scheduler.active_ids()
        return ids[int(self._rng.integers(len(ids)))]


class GreedyPicker(UserPicker):
    """Algorithm 2's user-picking phase.

    Parameters
    ----------
    rule:
        Line-8 rule for choosing among the candidate set ``V_t``:

        * ``"max_gap"`` (ease.ml default) — the tenant with the largest
          gap between its largest upper confidence bound and its best
          accuracy so far;
        * ``"max_potential"`` — the tenant with the largest σ̃;
        * ``"random"`` — uniform among candidates (the theorem's
          "any rule").
    seed:
        Used by the ``"random"`` rule and for tie-breaking.

    Warm-up: Algorithm 2 lines 1–4 run one GP-UCB step per tenant
    before the main loop; the picker realises that by serving any
    never-served tenant first (in id order), so the warm-up consumes
    scheduler budget exactly like the paper's initialisation does.  A
    tenant arriving mid-run is warm-started the same way: its first
    serve takes priority at the next pick.
    """

    _RULES = ("max_gap", "max_potential", "random")

    def __init__(self, rule: str = "max_gap", *, seed: SeedLike = None) -> None:
        if rule not in self._RULES:
            raise ValueError(f"rule must be one of {self._RULES}, got {rule!r}")
        self.rule = rule
        self._rng = RandomState(seed)
        self.last_candidate_set: FrozenSet[int] = frozenset()
        # Ids that may still need their warm-up serve.  Entries are
        # validated lazily at pick time (a stale id — served, or no
        # longer active — is simply dropped), so steady-state picks pay
        # one empty-set check instead of a scan over every tenant.
        self._unserved: Optional[set] = None

    def reset(self, scheduler: "MultiTenantScheduler") -> None:
        self._unserved = {
            tenant.index for tenant in scheduler.tenants
            if tenant.serves == 0
        }

    def on_arrival(
        self, scheduler: "MultiTenantScheduler", tenant_id: int
    ) -> None:
        if self._unserved is None:
            return  # never attached; pick() will rebuild lazily
        state = scheduler.tenants.get(int(tenant_id))
        if state is not None and state.serves == 0:
            self._unserved.add(int(tenant_id))

    def on_departure(
        self, scheduler: "MultiTenantScheduler", tenant_id: int
    ) -> None:
        if self._unserved is not None:
            self._unserved.discard(int(tenant_id))

    def _next_unserved(
        self, scheduler: "MultiTenantScheduler"
    ) -> Optional[int]:
        """Lowest-id active tenant still awaiting its warm-up serve."""
        if self._unserved is None:
            self.reset(scheduler)
        while self._unserved:
            tenant_id = min(self._unserved)
            state = scheduler.tenants.get(tenant_id)
            if (
                state is not None
                and scheduler.tenants.is_active(tenant_id)
                and state.serves == 0
            ):
                return tenant_id
            self._unserved.discard(tenant_id)
        return None

    def _candidates(self, scheduler: "MultiTenantScheduler"):
        """``(ids, mask, potentials)`` for the line-7 candidate filter.

        ``ids`` is the candidate id array; ``mask`` is the boolean
        filter over the active set (``None`` when every active tenant
        is a candidate), letting callers slice other aligned arrays.
        """
        active = scheduler.active_id_array()
        potentials = scheduler.potentials()  # aligned with active
        finite = np.isfinite(potentials)
        if not finite.any():
            return active, None, potentials
        threshold = potentials[finite].mean()
        mask = ~finite | (potentials >= threshold)
        if not mask.any():
            return active, None, potentials
        return active[mask], mask, potentials

    def candidate_set(self, scheduler: "MultiTenantScheduler") -> List[int]:
        """``V_t = {i : σ̃_i ≥ mean(σ̃)}`` over active tenants
        (Algorithm 2 line 7)."""
        ids, _, _ = self._candidates(scheduler)
        return [int(i) for i in ids]

    def pick(self, scheduler: "MultiTenantScheduler") -> int:
        warm = self._next_unserved(scheduler)
        if warm is not None:
            return warm

        ids, mask, potentials = self._candidates(scheduler)
        self.last_candidate_set = frozenset(int(i) for i in ids)
        if self.rule == "random":
            return int(self._rng.choice([int(i) for i in ids]))
        if self.rule == "max_potential":
            scores = potentials if mask is None else potentials[mask]
        else:  # max_gap
            gaps = scheduler.decision_gaps()  # aligned with active
            scores = gaps if mask is None else gaps[mask]
        return int(ids[int(np.argmax(scores))])


class HybridPicker(UserPicker):
    """GREEDY with freezing-stage detection, then ROUNDROBIN (§4.4).

    The freezing stage is declared when, for ``s`` consecutive rounds,
    the greedy candidate set did not change *and* the global progress
    signal (Σ_i best accuracy so far) did not improve.  After the
    switch the picker behaves exactly like :class:`RoundRobinPicker`
    for the rest of the run (the paper switches once; set
    ``allow_reentry`` to let renewed progress switch back).  Membership
    churn resets the freeze detector — a new arrival (whose warm-up
    serve is genuine exploration) or a departure changes the candidate
    set, so the stall counter naturally restarts; an arrival after the
    switch re-enters GREEDY so the newcomer gets its exploration phase.
    """

    def __init__(
        self,
        s: int = 10,
        rule: str = "max_gap",
        *,
        allow_reentry: bool = False,
        progress_tolerance: float = 1e-12,
        seed: SeedLike = None,
    ) -> None:
        if s < 1:
            raise ValueError(f"s must be >= 1, got {s}")
        self.s = int(s)
        self.allow_reentry = bool(allow_reentry)
        self.progress_tolerance = float(progress_tolerance)
        self._greedy = GreedyPicker(rule, seed=seed)
        self._round_robin = RoundRobinPicker()
        self.switched = False
        self.switch_step: Optional[int] = None
        self._stall_rounds = 0
        self._last_candidates: Optional[FrozenSet[int]] = None
        self._last_progress = -math.inf

    def reset(self, scheduler: "MultiTenantScheduler") -> None:
        self._greedy.reset(scheduler)
        self._round_robin.reset(scheduler)
        self.switched = False
        self.switch_step = None
        self._stall_rounds = 0
        self._last_candidates = None
        self._last_progress = -math.inf

    def on_arrival(
        self, scheduler: "MultiTenantScheduler", tenant_id: int
    ) -> None:
        # A newcomer deserves the GREEDY exploration phase: re-enter it
        # and restart the freeze detector.  The inner greedy picker
        # needs the hook too, so its unserved set learns the arrival.
        self._greedy.on_arrival(scheduler, tenant_id)
        self.switched = False
        self.switch_step = None
        self._stall_rounds = 0
        self._last_candidates = None

    def on_departure(
        self, scheduler: "MultiTenantScheduler", tenant_id: int
    ) -> None:
        # The candidate set shrank; don't let a stale stall streak
        # carry over the membership change.
        self._greedy.on_departure(scheduler, tenant_id)
        self._stall_rounds = 0
        self._last_candidates = None

    def pick(self, scheduler: "MultiTenantScheduler") -> int:
        if self.switched:
            return self._round_robin.pick(scheduler)
        return self._greedy.pick(scheduler)

    def notify(
        self, scheduler: "MultiTenantScheduler", record: "StepRecord"
    ) -> None:
        progress = scheduler.global_best_sum()
        candidates = frozenset(self._greedy.candidate_set(scheduler))
        stalled = (
            self._last_candidates is not None
            and candidates == self._last_candidates
            and progress <= self._last_progress + self.progress_tolerance
        )
        if stalled:
            self._stall_rounds += 1
        else:
            self._stall_rounds = 0
            if self.switched and self.allow_reentry:
                self.switched = False
                self.switch_step = None
        self._last_candidates = candidates
        self._last_progress = max(self._last_progress, progress)
        if not self.switched and self._stall_rounds >= self.s:
            self.switched = True
            self.switch_step = record.t
