"""Exploration schedules ``β_t`` for (GP-)UCB.

Algorithm 1 (line 3) of the paper uses ``β_t = log(K t² / δ)``.  The
theorems sharpen the constant: Theorem 1 (single tenant, cost-aware)
sets ``β_t = 2 c* log(π² K t² / (6δ))`` and Theorems 2–3 (multi-tenant)
set ``β_t = 2 c* log(π² n K* t² / (6δ))`` where ``c*`` is the maximum
cost and ``K*`` the maximum number of arms over tenants.

The schedule decides how aggressively the upper confidence bound
``μ + sqrt(β_t) σ`` (or ``μ + sqrt(β_t / c_k) σ`` cost-aware) explores;
the regret analysis needs it to grow like ``log t``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.utils.validation import check_positive, check_probability

_PI_SQ_OVER_6 = math.pi**2 / 6.0


class BetaSchedule(ABC):
    """Callable mapping a (1-based) round index ``t`` to ``β_t``."""

    @abstractmethod
    def __call__(self, t: int) -> float:
        """β for round ``t`` (``t >= 1``)."""

    def _check_t(self, t: int) -> int:
        t = int(t)
        if t < 1:
            raise ValueError(f"round index t must be >= 1, got {t}")
        return t


class ConstantBeta(BetaSchedule):
    """Fixed exploration weight, useful for ablations and tests."""

    def __init__(self, value: float) -> None:
        self.value = check_positive(value, "value", strict=False)

    def __call__(self, t: int) -> float:
        self._check_t(t)
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantBeta({self.value:.4g})"


class AlgorithmOneBeta(BetaSchedule):
    """``β_t = log(K t² / δ)`` — Algorithm 1 line 3 / Algorithm 2 line 9."""

    def __init__(self, n_arms: int, delta: float = 0.1) -> None:
        self.n_arms = int(n_arms)
        if self.n_arms < 1:
            raise ValueError(f"n_arms must be >= 1, got {n_arms}")
        self.delta = check_probability(delta, "delta")
        if self.delta == 0.0:
            raise ValueError("delta must be > 0")

    def __call__(self, t: int) -> float:
        t = self._check_t(t)
        # max(..., 0): for K=1, t=1, delta→1 the log can dip negative,
        # which would put a NaN under the sqrt in the UCB rule.
        return max(math.log(self.n_arms * t * t / self.delta), 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AlgorithmOneBeta(K={self.n_arms}, delta={self.delta})"


class TheoremBeta(BetaSchedule):
    """``β_t = 2 c* log(π² n K* t² / (6δ))`` — Theorems 1–3.

    ``n_users=1`` recovers the Theorem 1 (single-tenant) setting; the
    multi-tenant theorems use ``n`` tenants and ``K* = max_i K_i``.
    ``c_star`` is the largest cost over every (tenant, model) pair; the
    cost-oblivious analysis corresponds to ``c_star = 1``.
    """

    def __init__(
        self,
        n_arms: int,
        delta: float = 0.1,
        *,
        c_star: float = 1.0,
        n_users: int = 1,
    ) -> None:
        self.n_arms = int(n_arms)
        if self.n_arms < 1:
            raise ValueError(f"n_arms must be >= 1, got {n_arms}")
        self.delta = check_probability(delta, "delta")
        if self.delta == 0.0:
            raise ValueError("delta must be > 0")
        self.c_star = check_positive(c_star, "c_star")
        self.n_users = int(n_users)
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")

    def __call__(self, t: int) -> float:
        t = self._check_t(t)
        inner = _PI_SQ_OVER_6 * self.n_users * self.n_arms * t * t / self.delta
        return max(2.0 * self.c_star * math.log(inner), 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TheoremBeta(K={self.n_arms}, delta={self.delta}, "
            f"c_star={self.c_star:.4g}, n={self.n_users})"
        )
