"""The paper's primary contribution: multi-tenant, cost-aware model selection.

Layout
------
* :mod:`repro.core.oracles` — the reward/cost oracle abstraction that
  decouples schedulers from where observations come from (trace replay
  or live training).
* :mod:`repro.core.beta` — exploration schedules ``β_t`` (Algorithm 1
  line 3 and the Theorem 1–3 settings).
* :mod:`repro.core.ucb` — single-tenant GP-UCB (Algorithm 1), the
  cost-aware twist of Section 3.2, and a classic UCB1 baseline.
* :mod:`repro.core.regret` — single- and multi-tenant regret and
  accuracy-loss accounting (Sections 3–4, Appendix A).
* :mod:`repro.core.theory` — numeric evaluation of the regret bounds in
  Theorems 1–3 (used to sanity-check runs in the test suite).
* :mod:`repro.core.model_picking` — per-tenant arm-selection policies
  (GP-UCB, MOSTCITED, MOSTRECENT, random, fixed order).
* :mod:`repro.core.user_picking` — tenant-selection policies (FCFS,
  ROUNDROBIN, RANDOM, GREEDY of Algorithm 2, HYBRID of Section 4.4).
* :mod:`repro.core.multitenant` — the scheduler loop gluing the above
  together, plus run records.
"""

from repro.core.acquisitions import GPEIPicker, GPPIPicker
from repro.core.beta import (
    AlgorithmOneBeta,
    BetaSchedule,
    ConstantBeta,
    TheoremBeta,
)
from repro.core.model_picking import (
    FixedOrderPicker,
    GPUCBPicker,
    ModelPicker,
    MostCitedPicker,
    MostRecentPicker,
    RandomModelPicker,
    Selection,
    UCB1Picker,
)
from repro.core.multitenant import (
    MultiTenantScheduler,
    RunResult,
    StepRecord,
    TenantRegistry,
    TenantState,
)
from repro.core.oracles import MatrixOracle, Observation, RewardOracle
from repro.core.regret import (
    MultiTenantRegretTracker,
    SingleTenantRegretTracker,
    accuracy_loss_curve,
)
from repro.core.theory import (
    theorem1_bound,
    theorem2_bound,
    theorem3_bound,
)
from repro.core.ucb import UCB1, GPUCB
from repro.core.user_picking import (
    FCFSPicker,
    GreedyPicker,
    HybridPicker,
    RandomUserPicker,
    RoundRobinPicker,
    UserPicker,
)

__all__ = [
    "BetaSchedule",
    "AlgorithmOneBeta",
    "TheoremBeta",
    "ConstantBeta",
    "GPUCB",
    "UCB1",
    "RewardOracle",
    "MatrixOracle",
    "Observation",
    "SingleTenantRegretTracker",
    "MultiTenantRegretTracker",
    "accuracy_loss_curve",
    "theorem1_bound",
    "theorem2_bound",
    "theorem3_bound",
    "ModelPicker",
    "Selection",
    "GPUCBPicker",
    "MostCitedPicker",
    "MostRecentPicker",
    "RandomModelPicker",
    "FixedOrderPicker",
    "UCB1Picker",
    "GPEIPicker",
    "GPPIPicker",
    "UserPicker",
    "FCFSPicker",
    "RoundRobinPicker",
    "RandomUserPicker",
    "GreedyPicker",
    "HybridPicker",
    "MultiTenantScheduler",
    "TenantRegistry",
    "TenantState",
    "StepRecord",
    "RunResult",
]
