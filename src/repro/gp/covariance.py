"""Construction of the prior covariance over candidate models.

Appendix A of the paper: each model's feature vector is its *quality
vector on the training users* ("we first evaluate the model on each
user in the training set to get its quality, and we then pack these
qualities into a 'quality vector' x indexed by the users").  A kernel
over these vectors — or a shrunk empirical covariance of the model
columns — yields the ``Σ`` consumed by :class:`repro.gp.FiniteArmGP`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gp.kernels import Kernel
from repro.utils.validation import check_in_range, check_matrix


def covariance_from_features(kernel: Kernel, features: np.ndarray) -> np.ndarray:
    """Gram matrix of ``kernel`` over model feature rows, symmetrised."""
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features.reshape(-1, 1)
    gram = kernel(features)
    return 0.5 * (gram + gram.T)


def empirical_model_covariance(
    quality_matrix: np.ndarray,
    *,
    shrinkage: float = 0.1,
    min_variance: float = 1e-6,
) -> np.ndarray:
    """Shrunk empirical covariance between model columns.

    ``quality_matrix`` is (n_users, n_models); the covariance of model
    qualities across users captures "the performance of a model on
    other users' data sets defines the similarity between models"
    (Section 5.3.2).  Ledoit–Wolf-style shrinkage toward the scaled
    identity keeps the estimate positive definite when users are few.
    """
    matrix = check_matrix(quality_matrix, "quality_matrix")
    shrinkage = check_in_range(shrinkage, "shrinkage", 0.0, 1.0)
    if matrix.shape[0] < 2:
        raise ValueError(
            "empirical covariance requires at least 2 users (rows), "
            f"got {matrix.shape[0]}"
        )
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    cov = (centered.T @ centered) / (matrix.shape[0] - 1)
    avg_var = max(float(np.trace(cov)) / cov.shape[0], min_variance)
    target = avg_var * np.eye(cov.shape[0])
    shrunk = (1.0 - shrinkage) * cov + shrinkage * target
    # Guard the diagonal: a constant model column would otherwise have
    # zero prior variance and the UCB term would never explore it.
    diag = np.diag(shrunk).copy()
    np.fill_diagonal(shrunk, np.maximum(diag, min_variance))
    return 0.5 * (shrunk + shrunk.T)


def nearest_positive_definite(
    matrix: np.ndarray, *, eigenvalue_floor: float = 1e-8
) -> np.ndarray:
    """Project a symmetric matrix onto the PD cone by eigenvalue clipping."""
    matrix = check_matrix(matrix, "matrix", square=True)
    sym = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    clipped = np.maximum(eigenvalues, eigenvalue_floor)
    return (eigenvectors * clipped) @ eigenvectors.T


def is_positive_semidefinite(
    matrix: np.ndarray, *, tolerance: float = 1e-8
) -> bool:
    """True when all eigenvalues of the symmetrised matrix are ≥ -tol."""
    sym = 0.5 * (np.asarray(matrix, dtype=float) + np.asarray(matrix).T)
    eigenvalues = np.linalg.eigvalsh(sym)
    return bool(np.all(eigenvalues >= -tolerance))


def scale_covariance(
    cov: np.ndarray, signal_variance: Optional[float] = None
) -> np.ndarray:
    """Rescale ``cov`` so its mean diagonal equals ``signal_variance``.

    Useful to put empirical covariances on the same footing as unit
    kernels before handing them to a beta schedule calibrated for
    rewards in [0, 1].  ``None`` leaves the matrix untouched.
    """
    cov = check_matrix(cov, "cov", square=True)
    if signal_variance is None:
        return cov.copy()
    current = float(np.mean(np.diag(cov)))
    if current <= 0:
        raise ValueError("cov has non-positive mean diagonal; cannot scale")
    return cov * (float(signal_variance) / current)
