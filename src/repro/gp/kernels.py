"""Covariance kernels with hyperparameters and analytic gradients.

The design follows the conventions popularised by scikit-learn but is
implemented from scratch:

* a kernel is a callable ``k(X, Y=None) -> Gram matrix``;
* hyperparameters live in *log space* (``theta``) so unconstrained
  optimisers can tune them;
* ``eval_with_gradient(X)`` returns the Gram matrix together with its
  gradient with respect to ``theta`` for L-BFGS fitting of the log
  marginal likelihood;
* kernels compose with ``+`` and ``*``.

Only stationary/dot-product kernels needed by the paper are provided:
RBF (squared exponential), Matérn (ν ∈ {0.5, 1.5, 2.5}) and the linear
dot-product kernel — the three kernel families the GP-UCB analysis of
Srinivas et al. covers — plus constant and white-noise kernels for
scaling and regularisation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive

#: Default optimisation bounds (natural space) for positive parameters.
DEFAULT_BOUNDS: Tuple[float, float] = (1e-5, 1e5)


@dataclass(frozen=True)
class ParameterSpec:
    """Description of one kernel hyperparameter.

    ``bounds`` are in natural (not log) space; ``None`` marks the
    parameter as fixed, i.e. excluded from ``theta``.
    """

    name: str
    bounds: Optional[Tuple[float, float]] = DEFAULT_BOUNDS

    @property
    def fixed(self) -> bool:
        return self.bounds is None


def _as_2d(X: np.ndarray) -> np.ndarray:
    array = np.asarray(X, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"kernel inputs must be 2-D, got {array.ndim}-D")
    return array


def squared_distances(X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of X and Y."""
    X = _as_2d(X)
    Y = X if Y is None else _as_2d(Y)
    x_norms = np.sum(X * X, axis=1)[:, None]
    y_norms = np.sum(Y * Y, axis=1)[None, :]
    d2 = x_norms + y_norms - 2.0 * (X @ Y.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


class Kernel(ABC):
    """Base class for covariance kernels."""

    #: Subclasses fill this in with one spec per hyperparameter, in the
    #: order they appear in ``theta``.
    _specs: Tuple[ParameterSpec, ...] = ()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    @abstractmethod
    def __call__(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Gram matrix ``k(X, Y)`` (``Y=None`` means ``Y=X``)."""

    @abstractmethod
    def diag(self, X: np.ndarray) -> np.ndarray:
        """``diag(k(X, X))`` without forming the full Gram matrix."""

    @abstractmethod
    def eval_with_gradient(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(K, dK)`` where ``dK[:, :, j] = ∂K/∂theta_j``.

        ``theta`` is the log-parameter vector; fixed parameters do not
        appear in the gradient stack.
        """

    # ------------------------------------------------------------------
    # Hyperparameter plumbing (log space)
    # ------------------------------------------------------------------
    def _free_specs(self) -> List[ParameterSpec]:
        return [spec for spec in self._specs if not spec.fixed]

    @property
    def n_free_parameters(self) -> int:
        return len(self._free_specs())

    @property
    def theta(self) -> np.ndarray:
        """Log-transformed free hyperparameters."""
        return np.log([getattr(self, spec.name) for spec in self._free_specs()])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        specs = self._free_specs()
        if value.shape != (len(specs),):
            raise ValueError(
                f"theta must have shape ({len(specs)},), got {value.shape}"
            )
        for spec, log_v in zip(specs, value):
            setattr(self, spec.name, float(np.exp(log_v)))

    @property
    def bounds(self) -> np.ndarray:
        """Log-space bounds, one (low, high) row per free parameter."""
        if not self._free_specs():
            return np.empty((0, 2))
        return np.log([spec.bounds for spec in self._free_specs()])

    def clone_with_theta(self, theta: np.ndarray) -> "Kernel":
        """Deep-copied kernel with ``theta`` installed."""
        import copy

        clone = copy.deepcopy(self)
        clone.theta = np.asarray(theta, dtype=float)
        return clone

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: object) -> "Sum":
        return Sum(self, _coerce(other))

    def __radd__(self, other: object) -> "Sum":
        return Sum(_coerce(other), self)

    def __mul__(self, other: object) -> "Product":
        return Product(self, _coerce(other))

    def __rmul__(self, other: object) -> "Product":
        return Product(_coerce(other), self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{spec.name}={getattr(self, spec.name):.4g}" for spec in self._specs
        )
        return f"{type(self).__name__}({params})"


def _coerce(value: object) -> Kernel:
    if isinstance(value, Kernel):
        return value
    if isinstance(value, (int, float)):
        return ConstantKernel(float(value), bounds=None)
    raise TypeError(f"cannot combine kernel with {type(value).__name__}")


class ConstantKernel(Kernel):
    """``k(x, y) = constant_value`` — scales other kernels in products."""

    def __init__(
        self,
        constant_value: float = 1.0,
        *,
        bounds: Optional[Tuple[float, float]] = DEFAULT_BOUNDS,
    ) -> None:
        self.constant_value = check_positive(constant_value, "constant_value")
        self._specs = (ParameterSpec("constant_value", bounds),)

    def __call__(self, X, Y=None):
        X = _as_2d(X)
        Y = X if Y is None else _as_2d(Y)
        return np.full((X.shape[0], Y.shape[0]), self.constant_value)

    def diag(self, X):
        X = _as_2d(X)
        return np.full(X.shape[0], self.constant_value)

    def eval_with_gradient(self, X):
        K = self(X)
        if self._specs[0].fixed:
            return K, np.empty((K.shape[0], K.shape[1], 0))
        return K, K[:, :, None].copy()


class WhiteKernel(Kernel):
    """``k(x, y) = noise_level`` iff ``x is y`` (i.i.d. observation noise)."""

    def __init__(
        self,
        noise_level: float = 1.0,
        *,
        bounds: Optional[Tuple[float, float]] = DEFAULT_BOUNDS,
    ) -> None:
        self.noise_level = check_positive(noise_level, "noise_level")
        self._specs = (ParameterSpec("noise_level", bounds),)

    def __call__(self, X, Y=None):
        X = _as_2d(X)
        if Y is None:
            return self.noise_level * np.eye(X.shape[0])
        Y = _as_2d(Y)
        return np.zeros((X.shape[0], Y.shape[0]))

    def diag(self, X):
        X = _as_2d(X)
        return np.full(X.shape[0], self.noise_level)

    def eval_with_gradient(self, X):
        K = self(X)
        if self._specs[0].fixed:
            return K, np.empty((K.shape[0], K.shape[1], 0))
        return K, K[:, :, None].copy()


class RBF(Kernel):
    """Squared-exponential kernel ``exp(-d² / (2ℓ²))``.

    The paper's default choice; Theorem 5 of Srinivas et al. gives the
    O(log T) information-gain bound used by Theorems 1–3 for this
    kernel.
    """

    def __init__(
        self,
        length_scale: float = 1.0,
        *,
        bounds: Optional[Tuple[float, float]] = DEFAULT_BOUNDS,
    ) -> None:
        self.length_scale = check_positive(length_scale, "length_scale")
        self._specs = (ParameterSpec("length_scale", bounds),)

    def __call__(self, X, Y=None):
        d2 = squared_distances(X, Y)
        return np.exp(-0.5 * d2 / (self.length_scale**2))

    def diag(self, X):
        X = _as_2d(X)
        return np.ones(X.shape[0])

    def eval_with_gradient(self, X):
        d2 = squared_distances(X)
        K = np.exp(-0.5 * d2 / (self.length_scale**2))
        if self._specs[0].fixed:
            return K, np.empty((K.shape[0], K.shape[1], 0))
        # d/d(log ℓ) exp(-d²/2ℓ²) = K · d²/ℓ²
        grad = K * (d2 / (self.length_scale**2))
        return K, grad[:, :, None]


class Matern(Kernel):
    """Matérn kernel with ν ∈ {0.5, 1.5, 2.5}.

    ν = 0.5 is the exponential kernel, ν → ∞ recovers the RBF.  Only
    the three half-integer orders with closed forms are supported —
    these are the cases the GP-UCB regret analysis covers.
    """

    _SUPPORTED_NU = (0.5, 1.5, 2.5)

    def __init__(
        self,
        length_scale: float = 1.0,
        nu: float = 1.5,
        *,
        bounds: Optional[Tuple[float, float]] = DEFAULT_BOUNDS,
    ) -> None:
        self.length_scale = check_positive(length_scale, "length_scale")
        if nu not in self._SUPPORTED_NU:
            raise ValueError(
                f"nu must be one of {self._SUPPORTED_NU}, got {nu}"
            )
        self.nu = float(nu)
        self._specs = (ParameterSpec("length_scale", bounds),)

    def _scaled_distance(self, X, Y=None) -> np.ndarray:
        d = np.sqrt(squared_distances(X, Y))
        if self.nu == 0.5:
            return d / self.length_scale
        if self.nu == 1.5:
            return math.sqrt(3.0) * d / self.length_scale
        return math.sqrt(5.0) * d / self.length_scale

    def __call__(self, X, Y=None):
        s = self._scaled_distance(X, Y)
        if self.nu == 0.5:
            return np.exp(-s)
        if self.nu == 1.5:
            return (1.0 + s) * np.exp(-s)
        return (1.0 + s + s * s / 3.0) * np.exp(-s)

    def diag(self, X):
        X = _as_2d(X)
        return np.ones(X.shape[0])

    def eval_with_gradient(self, X):
        s = self._scaled_distance(X)
        exp_ns = np.exp(-s)
        if self.nu == 0.5:
            K = exp_ns
            grad = s * exp_ns  # d/d(log ℓ) e^{-s} = s e^{-s}
        elif self.nu == 1.5:
            K = (1.0 + s) * exp_ns
            grad = s * s * exp_ns  # d/d(log ℓ) (1+s)e^{-s} = s² e^{-s}
        else:
            K = (1.0 + s + s * s / 3.0) * exp_ns
            grad = (s * s * (1.0 + s) / 3.0) * exp_ns
        if self._specs[0].fixed:
            return K, np.empty((K.shape[0], K.shape[1], 0))
        return K, grad[:, :, None]


class DotProduct(Kernel):
    """Linear kernel ``k(x, y) = σ₀² + x·y`` (non-stationary)."""

    def __init__(
        self,
        sigma_0: float = 1.0,
        *,
        bounds: Optional[Tuple[float, float]] = DEFAULT_BOUNDS,
    ) -> None:
        self.sigma_0 = check_positive(sigma_0, "sigma_0", strict=False)
        if self.sigma_0 == 0.0 and bounds is not None:
            raise ValueError("sigma_0 = 0 requires bounds=None (fixed)")
        self._specs = (ParameterSpec("sigma_0", bounds),)

    def __call__(self, X, Y=None):
        X = _as_2d(X)
        Y = X if Y is None else _as_2d(Y)
        return self.sigma_0**2 + X @ Y.T

    def diag(self, X):
        X = _as_2d(X)
        return self.sigma_0**2 + np.sum(X * X, axis=1)

    def eval_with_gradient(self, X):
        K = self(X)
        if self._specs[0].fixed:
            return K, np.empty((K.shape[0], K.shape[1], 0))
        grad = np.full_like(K, 2.0 * self.sigma_0**2)
        return K, grad[:, :, None]


class _Composite(Kernel):
    """Shared plumbing for binary kernel combinations."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    @property
    def n_free_parameters(self) -> int:
        return self.left.n_free_parameters + self.right.n_free_parameters

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        n_left = self.left.n_free_parameters
        if value.shape != (self.n_free_parameters,):
            raise ValueError(
                f"theta must have shape ({self.n_free_parameters},), "
                f"got {value.shape}"
            )
        self.left.theta = value[:n_left]
        self.right.theta = value[n_left:]

    @property
    def bounds(self) -> np.ndarray:
        blocks = [b for b in (self.left.bounds, self.right.bounds) if b.size]
        if not blocks:
            return np.empty((0, 2))
        return np.vstack(blocks)

    def eval_with_gradient(self, X):  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        op = "+" if isinstance(self, Sum) else "*"
        return f"({self.left!r} {op} {self.right!r})"


class Sum(_Composite):
    """``k = k_left + k_right``."""

    def __call__(self, X, Y=None):
        return self.left(X, Y) + self.right(X, Y)

    def diag(self, X):
        return self.left.diag(X) + self.right.diag(X)

    def eval_with_gradient(self, X):
        K1, G1 = self.left.eval_with_gradient(X)
        K2, G2 = self.right.eval_with_gradient(X)
        return K1 + K2, np.concatenate([G1, G2], axis=2)


class Product(_Composite):
    """``k = k_left · k_right`` (element-wise)."""

    def __call__(self, X, Y=None):
        return self.left(X, Y) * self.right(X, Y)

    def diag(self, X):
        return self.left.diag(X) * self.right.diag(X)

    def eval_with_gradient(self, X):
        K1, G1 = self.left.eval_with_gradient(X)
        K2, G2 = self.right.eval_with_gradient(X)
        G = np.concatenate(
            [G1 * K2[:, :, None], G2 * K1[:, :, None]], axis=2
        )
        return K1 * K2, G


def default_model_kernel(
    signal_variance: float = 1.0, length_scale: float = 1.0
) -> Kernel:
    """The kernel family ease.ml fits over model feature vectors.

    A scaled RBF — the shape used throughout the paper's experiments
    (Appendix A), with both the output scale and the length scale tuned
    by log-marginal-likelihood maximisation.
    """
    return ConstantKernel(signal_variance) * RBF(length_scale)
