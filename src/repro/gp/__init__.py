"""Gaussian-process substrate for the ease.ml reproduction.

The paper's scheduler (Algorithms 1 and 2) maintains, per tenant, a
Gaussian-process posterior over a *finite* set of arms (candidate
models).  This subpackage provides everything needed for that, built
from scratch on numpy/scipy:

* :mod:`repro.gp.kernels` — a kernel library (RBF, Matérn, dot-product,
  constant, white noise, sum/product algebra) with analytic gradients
  for hyperparameter optimisation.
* :mod:`repro.gp.regression` — :class:`FiniteArmGP`, the posterior over
  a finite arm set (Algorithm 1 lines 6–7 of the paper): O(tK)
  incremental Cholesky updates in contiguous capacity-doubling buffers,
  O(K) posterior accumulators, and a blocked ``update_batch`` for
  replay/warm-start that is bit-identical to looping ``update``.
* :mod:`repro.gp.likelihood` — log-marginal-likelihood computation and
  multi-restart L-BFGS hyperparameter fitting, mirroring the paper's
  protocol ("all hyperparameters for GP-UCB are tuned by maximizing the
  log-marginal-likelihood as in scikit-learn").
* :mod:`repro.gp.covariance` — construction of the prior covariance
  over arms from model feature vectors (Appendix A: a model's feature
  vector is its quality vector on the training users).
"""

from repro.gp.covariance import (
    covariance_from_features,
    empirical_model_covariance,
    nearest_positive_definite,
)
from repro.gp.kernels import (
    RBF,
    ConstantKernel,
    DotProduct,
    Kernel,
    Matern,
    Product,
    Sum,
    WhiteKernel,
)
from repro.gp.likelihood import (
    fit_kernel,
    fit_kernel_pooled,
    log_marginal_likelihood,
)
from repro.gp.regression import FiniteArmGP

__all__ = [
    "Kernel",
    "RBF",
    "Matern",
    "DotProduct",
    "ConstantKernel",
    "WhiteKernel",
    "Sum",
    "Product",
    "FiniteArmGP",
    "log_marginal_likelihood",
    "fit_kernel",
    "fit_kernel_pooled",
    "covariance_from_features",
    "empirical_model_covariance",
    "nearest_positive_definite",
]
