"""Log-marginal-likelihood computation and hyperparameter fitting.

The paper's experimental protocol states that "all hyperparameters for
GP-UCB are tuned by maximizing the log-marginal-likelihood as in
scikit-learn" (Section 5.2).  scikit-learn is not a dependency here, so
this module reimplements that procedure: analytic-gradient L-BFGS over
the kernel's log hyperparameters, with random restarts.

Two entry points:

* :func:`fit_kernel` — one feature matrix ``X`` and one target vector
  ``y`` (a single user's model-quality curve).
* :func:`fit_kernel_pooled` — shared kernel across several target
  vectors on the same ``X`` (all training users at once), maximising
  the *sum* of per-user log marginal likelihoods.  This is how the
  experiment harness turns the training half of a quality matrix into a
  prior covariance for the test users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular
from scipy.optimize import minimize

from repro.gp.kernels import Kernel
from repro.utils.rng import RandomState, SeedLike
from repro.utils.validation import check_positive

_LOG_2PI = math.log(2.0 * math.pi)


def log_marginal_likelihood(
    gram: np.ndarray, y: np.ndarray, noise: float, *, jitter: float = 1e-10
) -> float:
    """Log p(y | K, σ) for a zero-mean GP with Gram matrix ``gram``."""
    gram = np.asarray(gram, dtype=float)
    y = np.asarray(y, dtype=float)
    n = y.shape[0]
    if gram.shape != (n, n):
        raise ValueError(
            f"gram must have shape ({n}, {n}), got {gram.shape}"
        )
    noise = check_positive(noise, "noise")
    A = gram + (noise**2 + jitter) * np.eye(n)
    L = np.linalg.cholesky(A)
    z = solve_triangular(L, y, lower=True)
    return float(-0.5 * (z @ z) - np.sum(np.log(np.diag(L))) - 0.5 * n * _LOG_2PI)


@dataclass
class FitResult:
    """Outcome of a kernel fit."""

    kernel: Kernel
    noise: float
    log_marginal_likelihood: float
    n_restarts_used: int


def _lml_and_grad(
    kernel: Kernel,
    X: np.ndarray,
    targets: Sequence[np.ndarray],
    log_noise: float,
    *,
    jitter: float = 1e-10,
) -> Tuple[float, np.ndarray]:
    """Summed LML over targets, with gradient wrt (kernel theta, log σ).

    Uses the standard identity
    ``∂ LML / ∂θ_j = ½ tr((ααᵀ − A⁻¹) ∂A/∂θ_j)`` with ``α = A⁻¹ y``.
    """
    n = X.shape[0]
    noise = math.exp(log_noise)
    K, K_grad = kernel.eval_with_gradient(X)
    A = K + (noise**2 + jitter) * np.eye(n)
    try:
        L, lower = cho_factor(A, lower=True)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return -np.inf, np.zeros(K_grad.shape[2] + 1)

    A_inv = cho_solve((L, lower), np.eye(n))
    log_det_half = float(np.sum(np.log(np.diag(L))))

    total_lml = 0.0
    total_grad = np.zeros(K_grad.shape[2] + 1)
    # dA/d(log σ) = 2σ² I.
    dA_dlog_noise = 2.0 * noise**2 * np.eye(n)
    for y in targets:
        alpha = A_inv @ y
        total_lml += float(
            -0.5 * (y @ alpha) - log_det_half - 0.5 * n * _LOG_2PI
        )
        inner = np.outer(alpha, alpha) - A_inv
        for j in range(K_grad.shape[2]):
            total_grad[j] += 0.5 * float(np.sum(inner * K_grad[:, :, j]))
        total_grad[-1] += 0.5 * float(np.sum(inner * dA_dlog_noise))
    return total_lml, total_grad


def fit_kernel_pooled(
    kernel: Kernel,
    X: np.ndarray,
    targets: Sequence[np.ndarray],
    *,
    noise: float = 0.1,
    optimize_noise: bool = True,
    n_restarts: int = 3,
    noise_bounds: Tuple[float, float] = (1e-4, 1e1),
    seed: SeedLike = None,
    center_targets: bool = True,
) -> FitResult:
    """Fit a shared kernel to several target vectors on the same ``X``.

    Parameters
    ----------
    kernel:
        Template kernel; a tuned clone is returned, the input is left
        untouched.
    X:
        ``(n_points, n_features)`` feature matrix (model feature
        vectors in the paper's protocol).
    targets:
        One or more ``(n_points,)`` target vectors (per-user quality
        curves).  The summed log marginal likelihood is maximised.
    noise / optimize_noise / noise_bounds:
        Initial observation-noise σ, whether to tune it, and its
        bounds.
    n_restarts:
        Number of random restarts *in addition to* the start at the
        template's current hyperparameters.
    center_targets:
        Subtract each target's mean first (the GP is zero-mean).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    rng = RandomState(seed)
    noise = check_positive(noise, "noise")

    prepared: List[np.ndarray] = []
    for y in targets:
        y = np.asarray(y, dtype=float).ravel()
        if y.shape[0] != X.shape[0]:
            raise ValueError(
                f"target length {y.shape[0]} != n_points {X.shape[0]}"
            )
        prepared.append(y - y.mean() if center_targets else y)
    if not prepared:
        raise ValueError("at least one target vector is required")

    kernel_bounds = kernel.bounds
    log_noise_bounds = (
        math.log(noise_bounds[0]),
        math.log(noise_bounds[1]),
    )

    def objective(packed: np.ndarray) -> Tuple[float, np.ndarray]:
        trial = kernel.clone_with_theta(packed[:-1])
        log_noise = packed[-1] if optimize_noise else math.log(noise)
        lml, grad = _lml_and_grad(trial, X, prepared, log_noise)
        if not optimize_noise:
            grad = grad.copy()
            grad[-1] = 0.0
        return -lml, -grad

    bounds_list = [tuple(row) for row in kernel_bounds] + [log_noise_bounds]

    base_start = np.concatenate([kernel.theta, [math.log(noise)]])
    starts = [base_start]

    # Median-heuristic starts: length-scale-like parameters at a few
    # multiples of the median pairwise distance, amplitude-like
    # parameters at the target variance, noise at a tenth of the
    # target standard deviation.  These land in "structured" basins of
    # attraction that plain template starts can miss (oversmoothed
    # kernels flow into the degenerate all-noise optimum).
    for scale in (0.1, 0.5, 2.0):
        heuristic = _heuristic_start(
            kernel, X, prepared, bounds_list, length_scale_factor=scale
        )
        if heuristic is not None:
            if not optimize_noise:
                heuristic[-1] = math.log(noise)
            starts.append(heuristic)
    for _ in range(max(0, n_restarts)):
        # Restarts perturb the template's (log) hyperparameters rather
        # than sampling the full bound box: default bounds span ~23
        # nats, and uniform draws there land in degenerate corners
        # (all-noise explanations) far more often than near useful
        # optima.
        start = base_start + rng.normal(0.0, 1.5, base_start.shape)
        start = np.clip(
            start,
            [low for (low, _) in bounds_list],
            [high for (_, high) in bounds_list],
        )
        if not optimize_noise:
            start[-1] = math.log(noise)
        starts.append(start)

    best_packed: Optional[np.ndarray] = None
    best_value = np.inf
    used = 0
    for start in starts:
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds_list,
        )
        used += 1
        if result.fun < best_value:
            best_value = float(result.fun)
            best_packed = np.asarray(result.x)

    assert best_packed is not None  # at least one start always runs
    fitted = kernel.clone_with_theta(best_packed[:-1])
    fitted_noise = (
        float(math.exp(best_packed[-1])) if optimize_noise else noise
    )
    return FitResult(
        kernel=fitted,
        noise=fitted_noise,
        log_marginal_likelihood=-best_value,
        n_restarts_used=used,
    )


def _heuristic_start(
    kernel: Kernel,
    X: np.ndarray,
    targets: Sequence[np.ndarray],
    bounds_list: Sequence[Tuple[float, float]],
    *,
    length_scale_factor: float = 1.0,
) -> Optional[np.ndarray]:
    """Median-distance / target-variance start vector, clipped to bounds.

    Builds the start by cloning the kernel and overwriting every
    parameter named ``length_scale`` with the median pairwise distance
    and every ``constant_value`` with the pooled target variance.
    Returns ``None`` when the heuristic is undefined (e.g. a single
    point).
    """
    from repro.gp.kernels import squared_distances

    d2 = squared_distances(X)
    off_diag = d2[~np.eye(d2.shape[0], dtype=bool)]
    positive = off_diag[off_diag > 1e-20]
    if positive.size == 0:
        return None
    median_distance = float(np.sqrt(np.median(positive)))
    median_distance *= float(length_scale_factor)
    pooled = np.concatenate([np.asarray(t, dtype=float) for t in targets])
    variance = max(float(np.var(pooled)), 1e-8)

    import copy

    clone = copy.deepcopy(kernel)
    _assign_heuristic(clone, median_distance, variance)
    start = np.concatenate(
        [clone.theta, [math.log(max(math.sqrt(variance) * 0.1, 1e-6))]]
    )
    lows = np.array([low for (low, _) in bounds_list])
    highs = np.array([high for (_, high) in bounds_list])
    return np.clip(start, lows, highs)


def _assign_heuristic(
    kernel: Kernel, median_distance: float, variance: float
) -> None:
    """Recursively install heuristic values into a kernel tree."""
    for child_name in ("left", "right"):
        child = getattr(kernel, child_name, None)
        if child is not None:
            _assign_heuristic(child, median_distance, variance)
    if hasattr(kernel, "length_scale"):
        kernel.length_scale = median_distance
    if hasattr(kernel, "constant_value"):
        kernel.constant_value = variance
    if hasattr(kernel, "noise_level"):
        kernel.noise_level = max(variance * 0.01, 1e-8)


def fit_kernel(
    kernel: Kernel,
    X: np.ndarray,
    y: np.ndarray,
    **kwargs,
) -> FitResult:
    """Single-target convenience wrapper around :func:`fit_kernel_pooled`."""
    return fit_kernel_pooled(kernel, X, [np.asarray(y, dtype=float)], **kwargs)
