"""Finite-arm Gaussian-process posterior with incremental updates.

This implements exactly lines 6–7 of Algorithm 1 in the paper: given a
prior covariance ``Σ`` over the K arms (candidate models) and noisy
observations ``y_{1:t}`` at arms ``a_{1:t}``,

.. math::

    \\mu_t(k)    &= \\Sigma_t(k)^T (\\Sigma_t + \\sigma^2 I)^{-1} y_{1:t} \\\\
    \\sigma_t^2(k) &= \\Sigma(k, k)
                    - \\Sigma_t(k)^T (\\Sigma_t + \\sigma^2 I)^{-1} \\Sigma_t(k)

The implementation grows a Cholesky factor of ``Σ_t + σ²I`` one row per
observation, so an update costs O(tK) instead of the O(t³ + t²K) of a
full refit.  ``refit()`` recomputes everything from scratch and is used
by the test suite to validate the incremental path.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_matrix, check_positive

_LOG_2PI = math.log(2.0 * math.pi)


class FiniteArmGP:
    """Gaussian-process belief over a finite set of arms.

    Parameters
    ----------
    prior_cov:
        ``(K, K)`` symmetric positive semi-definite prior covariance
        between the arms (the paper's ``Σ``).
    prior_mean:
        Optional ``(K,)`` prior mean vector (the paper assumes ``μ = 0``
        as is conventional for GPs not conditioned on data).
    noise:
        Observation noise standard deviation ``σ`` (not variance).
    jitter:
        Numerical floor added when the incremental Cholesky pivot would
        otherwise be non-positive (repeated arms with tiny noise).
    """

    def __init__(
        self,
        prior_cov: np.ndarray,
        prior_mean: Optional[np.ndarray] = None,
        *,
        noise: float = 0.1,
        jitter: float = 1e-10,
    ) -> None:
        self._cov = check_matrix(prior_cov, "prior_cov", square=True)
        if not np.allclose(self._cov, self._cov.T, atol=1e-8):
            raise ValueError("prior_cov must be symmetric")
        self._n_arms = self._cov.shape[0]
        if prior_mean is None:
            self._prior_mean = np.zeros(self._n_arms)
        else:
            self._prior_mean = np.asarray(prior_mean, dtype=float)
            if self._prior_mean.shape != (self._n_arms,):
                raise ValueError(
                    f"prior_mean must have shape ({self._n_arms},), "
                    f"got {self._prior_mean.shape}"
                )
        self.noise = check_positive(noise, "noise")
        self.jitter = check_positive(jitter, "jitter")

        # Observation history.
        self._obs_arms: List[int] = []
        self._obs_y: List[float] = []

        # Incremental state: L is the lower Cholesky factor of
        # (Σ_t + σ²I) stored as a list of rows; V = L⁻¹ Σ_t(·) is
        # (t, K); z = L⁻¹ (y - m(a)).
        self._L_rows: List[np.ndarray] = []
        self._V = np.empty((0, self._n_arms))
        self._z = np.empty(0)

        # Cached posterior (invalidated on update).
        self._posterior_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_arms(self) -> int:
        """Number of arms K."""
        return self._n_arms

    @property
    def n_observations(self) -> int:
        """Number of observations incorporated so far (the paper's t)."""
        return len(self._obs_y)

    @property
    def observed_arms(self) -> Tuple[int, ...]:
        return tuple(self._obs_arms)

    @property
    def observed_rewards(self) -> Tuple[float, ...]:
        return tuple(self._obs_y)

    @property
    def prior_cov(self) -> np.ndarray:
        return self._cov.copy()

    def _check_arm(self, arm: int) -> int:
        arm = int(arm)
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        return arm

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, arm: int, reward: float) -> None:
        """Incorporate one observation ``reward`` at ``arm`` (O(tK))."""
        arm = self._check_arm(arm)
        reward = float(reward)
        if not np.isfinite(reward):
            raise ValueError(f"reward must be finite, got {reward}")

        t = self.n_observations
        # New column of (Σ_t + σ²I): covariance of the new point with
        # the already observed points, plus its own noisy variance.
        b = self._cov[self._obs_arms, arm] if t else np.empty(0)
        d = self._cov[arm, arm] + self.noise**2

        # Forward-substitute w = L⁻¹ b using the stored rows.
        w = np.empty(t)
        for i, row in enumerate(self._L_rows):
            w[i] = (b[i] - row[:i] @ w[:i]) / row[i]

        pivot_sq = d - w @ w
        pivot = math.sqrt(max(pivot_sq, self.jitter))

        new_row = np.empty(t + 1)
        new_row[:t] = w
        new_row[t] = pivot
        self._L_rows.append(new_row)

        # V row: (Σ(a_new, ·) − wᵀ V) / pivot.
        v_new = (self._cov[arm, :] - w @ self._V) / pivot
        self._V = np.vstack([self._V, v_new])

        # z entry: centred residual.
        resid = reward - self._prior_mean[arm]
        z_new = (resid - w @ self._z) / pivot
        self._z = np.append(self._z, z_new)

        self._obs_arms.append(arm)
        self._obs_y.append(reward)
        self._posterior_cache = None

    # ------------------------------------------------------------------
    # Posterior queries
    # ------------------------------------------------------------------
    def posterior(self) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior ``(mean, variance)`` vectors over all K arms."""
        if self._posterior_cache is None:
            mean = self._prior_mean + self._V.T @ self._z
            variance = np.diag(self._cov) - np.einsum(
                "tk,tk->k", self._V, self._V
            )
            np.maximum(variance, 0.0, out=variance)
            self._posterior_cache = (mean, variance)
        mean, variance = self._posterior_cache
        return mean.copy(), variance.copy()

    def posterior_mean(self, arm: Optional[int] = None):
        """Posterior mean for one arm, or the full vector."""
        mean, _ = self.posterior()
        if arm is None:
            return mean
        return float(mean[self._check_arm(arm)])

    def posterior_variance(self, arm: Optional[int] = None):
        """Posterior variance for one arm, or the full vector."""
        _, variance = self.posterior()
        if arm is None:
            return variance
        return float(variance[self._check_arm(arm)])

    def posterior_std(self, arm: Optional[int] = None):
        """Posterior standard deviation for one arm, or the full vector."""
        variance = self.posterior_variance(arm)
        return np.sqrt(variance)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def log_marginal_likelihood(self) -> float:
        """Log p(y | arms, Σ, σ) of the observations seen so far."""
        t = self.n_observations
        if t == 0:
            return 0.0
        log_det_half = sum(math.log(row[i]) for i, row in enumerate(self._L_rows))
        return float(
            -0.5 * (self._z @ self._z) - log_det_half - 0.5 * t * _LOG_2PI
        )

    def refit(self) -> "FiniteArmGP":
        """Fresh GP replaying the full history (numerical ground truth)."""
        clone = FiniteArmGP(
            self._cov,
            self._prior_mean,
            noise=self.noise,
            jitter=self.jitter,
        )
        if self.n_observations:
            arms = np.array(self._obs_arms)
            y = np.array(self._obs_y)
            gram = self._cov[np.ix_(arms, arms)] + self.noise**2 * np.eye(
                len(arms)
            )
            L = np.linalg.cholesky(
                gram + self.jitter * np.eye(len(arms))
            )
            from scipy.linalg import solve_triangular

            V = solve_triangular(L, self._cov[arms, :], lower=True)
            z = solve_triangular(L, y - self._prior_mean[arms], lower=True)
            clone._L_rows = [L[i, : i + 1].copy() for i in range(len(arms))]
            clone._V = V
            clone._z = z
            clone._obs_arms = list(arms)
            clone._obs_y = list(y)
        return clone

    def copy(self) -> "FiniteArmGP":
        """Deep copy preserving the incremental state."""
        clone = FiniteArmGP(
            self._cov,
            self._prior_mean,
            noise=self.noise,
            jitter=self.jitter,
        )
        clone._obs_arms = list(self._obs_arms)
        clone._obs_y = list(self._obs_y)
        clone._L_rows = [row.copy() for row in self._L_rows]
        clone._V = self._V.copy()
        clone._z = self._z.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FiniteArmGP(n_arms={self._n_arms}, "
            f"t={self.n_observations}, noise={self.noise:.4g})"
        )
