"""Finite-arm Gaussian-process posterior with incremental updates.

This implements exactly lines 6–7 of Algorithm 1 in the paper: given a
prior covariance ``Σ`` over the K arms (candidate models) and noisy
observations ``y_{1:t}`` at arms ``a_{1:t}``,

.. math::

    \\mu_t(k)    &= \\Sigma_t(k)^T (\\Sigma_t + \\sigma^2 I)^{-1} y_{1:t} \\\\
    \\sigma_t^2(k) &= \\Sigma(k, k)
                    - \\Sigma_t(k)^T (\\Sigma_t + \\sigma^2 I)^{-1} \\Sigma_t(k)

The implementation grows a Cholesky factor of ``Σ_t + σ²I`` one row per
observation, so an update costs O(tK) instead of the O(t³ + t²K) of a
full refit.  The factor lives in a contiguous capacity-doubling buffer;
the forward-substitution vector each extension needs is a column of the
maintained ``V = L⁻¹ Σ_t(·)`` matrix, so the update is a strided read
plus a handful of vectorized dots — no triangular solve, no per-element
Python arithmetic, and no reallocation on the hot path.  The posterior
mean and variance are O(K) running accumulators (appending row ``t``
adds ``z_t·V_t`` and ``V_t²``), so queries never re-reduce the history.
:meth:`update_batch` absorbs a whole observation block with one
capacity reservation (recovery/replay uses it so replaying t records
costs one buffer growth, not t).
``refit()`` recomputes everything from scratch through a different code
path (block Cholesky) and is used by the test suite to validate the
incremental path.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import solve_triangular

from repro.utils.validation import check_matrix, check_positive

_LOG_2PI = math.log(2.0 * math.pi)

#: Initial capacity (rows) of the incremental buffers.
_MIN_CAPACITY = 16


class FiniteArmGP:
    """Gaussian-process belief over a finite set of arms.

    Parameters
    ----------
    prior_cov:
        ``(K, K)`` symmetric positive semi-definite prior covariance
        between the arms (the paper's ``Σ``).
    prior_mean:
        Optional ``(K,)`` prior mean vector (the paper assumes ``μ = 0``
        as is conventional for GPs not conditioned on data).
    noise:
        Observation noise standard deviation ``σ`` (not variance).
    jitter:
        Numerical floor added when the incremental Cholesky pivot would
        otherwise be non-positive (repeated arms with tiny noise).
    """

    def __init__(
        self,
        prior_cov: np.ndarray,
        prior_mean: Optional[np.ndarray] = None,
        *,
        noise: float = 0.1,
        jitter: float = 1e-10,
    ) -> None:
        self._cov = check_matrix(prior_cov, "prior_cov", square=True)
        if not np.allclose(self._cov, self._cov.T, atol=1e-8):
            raise ValueError("prior_cov must be symmetric")
        self._n_arms = self._cov.shape[0]
        if prior_mean is None:
            self._prior_mean = np.zeros(self._n_arms)
        else:
            self._prior_mean = np.asarray(prior_mean, dtype=float)
            if self._prior_mean.shape != (self._n_arms,):
                raise ValueError(
                    f"prior_mean must have shape ({self._n_arms},), "
                    f"got {self._prior_mean.shape}"
                )
        self.noise = check_positive(noise, "noise")
        self.jitter = check_positive(jitter, "jitter")

        # Incremental state, stored in contiguous capacity-doubling
        # buffers whose first ``_t`` rows are live: ``L`` is the lower
        # Cholesky factor of (Σ_t + σ²I); V = L⁻¹ Σ_t(·) is (t, K);
        # z = L⁻¹ (y - m(a)); ``arms``/``y`` are the observation
        # history.
        self._t = 0
        self._capacity = 0
        self._L = np.empty((0, 0))
        self._V = np.empty((0, self._n_arms))
        self._z = np.empty(0)
        self._arms = np.empty(0, dtype=np.intp)
        self._y = np.empty(0)

        # Running posterior sufficient statistics: appending row t
        # changes the mean by z_t·V_t and the explained variance by
        # V_t², so both are maintained as O(K) accumulators instead of
        # re-reducing the whole (t, K) V matrix on every query.
        self._prior_var = np.ascontiguousarray(np.diag(self._cov))
        self._mean_acc = np.zeros(self._n_arms)
        self._explained_acc = np.zeros(self._n_arms)

        # Cached posterior (invalidated on update); the cached arrays
        # are handed out as read-only views, never copied.
        self._posterior_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_arms(self) -> int:
        """Number of arms K."""
        return self._n_arms

    @property
    def n_observations(self) -> int:
        """Number of observations incorporated so far (the paper's t)."""
        return self._t

    @property
    def observed_arms(self) -> Tuple[int, ...]:
        return tuple(int(a) for a in self._arms[: self._t])

    @property
    def observed_rewards(self) -> Tuple[float, ...]:
        return tuple(float(v) for v in self._y[: self._t])

    @property
    def prior_cov(self) -> np.ndarray:
        return self._cov.copy()

    def _check_arm(self, arm: int) -> int:
        arm = int(arm)
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        return arm

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def _reserve(self, rows: int) -> None:
        """Grow the incremental buffers to hold at least ``rows``."""
        if rows <= self._capacity:
            return
        capacity = max(_MIN_CAPACITY, self._capacity)
        while capacity < rows:
            capacity *= 2
        L = np.zeros((capacity, capacity))
        V = np.empty((capacity, self._n_arms))
        z = np.empty(capacity)
        arms = np.empty(capacity, dtype=np.intp)
        y = np.empty(capacity)
        t = self._t
        if t:
            L[:t, :t] = self._L[:t, :t]
            V[:t] = self._V[:t]
            z[:t] = self._z[:t]
            arms[:t] = self._arms[:t]
            y[:t] = self._y[:t]
        self._L, self._V, self._z = L, V, z
        self._arms, self._y = arms, y
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _append_row(self, arm: int, reward: float) -> None:
        """Extend the Cholesky factor by one observation (O(tK)).

        The caller has already validated ``arm``/``reward`` and
        reserved capacity for the new row.
        """
        t = self._t
        # New column of (Σ_t + σ²I): covariance of the new point with
        # the already observed points, plus its own noisy variance.
        d = self._cov[arm, arm] + self.noise**2
        if t:
            # The forward-substitution solution w = L⁻¹ Σ_t(a_new) is
            # column a_new of V = L⁻¹ Σ_t(·), which the recurrence
            # below already maintains — a strided O(t) read replaces
            # the O(t²) triangular solve (and the 2t²-byte copy scipy
            # would make of the non-contiguous L[:t, :t] view).
            w = np.ascontiguousarray(self._V[:t, arm])
            pivot_sq = d - w @ w
        else:
            w = None
            pivot_sq = d
        pivot = math.sqrt(max(pivot_sq, self.jitter))

        self._L[t, t] = pivot
        if t:
            self._L[t, :t] = w
            # V row: (Σ(a_new, ·) − wᵀ V) / pivot.
            self._V[t] = (self._cov[arm, :] - w @ self._V[:t]) / pivot
            # z entry: centred residual.
            resid = reward - self._prior_mean[arm]
            self._z[t] = (resid - w @ self._z[:t]) / pivot
        else:
            self._V[t] = self._cov[arm, :] / pivot
            self._z[t] = (reward - self._prior_mean[arm]) / pivot
        row = self._V[t]
        self._mean_acc += self._z[t] * row
        self._explained_acc += row * row
        self._arms[t] = arm
        self._y[t] = reward
        self._t = t + 1

    def update(self, arm: int, reward: float) -> None:
        """Incorporate one observation ``reward`` at ``arm`` (O(tK))."""
        arm = self._check_arm(arm)
        reward = float(reward)
        if not np.isfinite(reward):
            raise ValueError(f"reward must be finite, got {reward}")
        self._reserve(self._t + 1)
        self._append_row(arm, reward)
        self._posterior_cache = None

    def update_batch(
        self, arms: Sequence[int], rewards: Sequence[float]
    ) -> None:
        """Incorporate a block of observations in one call.

        Numerically **bit-identical** to calling :meth:`update` once
        per ``(arm, reward)`` pair — the same incremental kernel runs
        row by row — but the buffers are reserved once for the whole
        block, inputs are validated in bulk, and the posterior cache is
        invalidated once.  Recovery/replay uses this so absorbing a
        t-record history costs a single capacity reservation instead of
        t reallocations.
        """
        arms = np.asarray(arms, dtype=np.intp).ravel()
        rewards = np.asarray(rewards, dtype=float).ravel()
        if arms.shape != rewards.shape:
            raise ValueError(
                f"arms and rewards must have matching lengths, got "
                f"{arms.shape[0]} arms and {rewards.shape[0]} rewards"
            )
        if arms.size == 0:
            return
        if arms.min() < 0 or arms.max() >= self._n_arms:
            bad = arms[(arms < 0) | (arms >= self._n_arms)][0]
            raise IndexError(
                f"arm {int(bad)} out of range [0, {self._n_arms})"
            )
        if not np.all(np.isfinite(rewards)):
            bad = rewards[~np.isfinite(rewards)][0]
            raise ValueError(f"reward must be finite, got {bad}")
        self._reserve(self._t + arms.size)
        for arm, reward in zip(arms, rewards):
            self._append_row(int(arm), float(reward))
        self._posterior_cache = None

    # ------------------------------------------------------------------
    # Posterior queries
    # ------------------------------------------------------------------
    def posterior(self) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior ``(mean, variance)`` vectors over all K arms.

        Returns **read-only views** of the cached posterior (writing to
        them raises) so repeated queries between observations cost one
        attribute lookup, not an O(K) copy.  Callers that need a
        mutable array must copy explicitly.
        """
        if self._posterior_cache is None:
            mean = self._prior_mean + self._mean_acc
            variance = self._prior_var - self._explained_acc
            np.maximum(variance, 0.0, out=variance)
            mean.setflags(write=False)
            variance.setflags(write=False)
            self._posterior_cache = (mean, variance)
        return self._posterior_cache

    def posterior_mean(self, arm: Optional[int] = None):
        """Posterior mean for one arm, or the full (read-only) vector."""
        mean, _ = self.posterior()
        if arm is None:
            return mean
        return float(mean[self._check_arm(arm)])

    def posterior_variance(self, arm: Optional[int] = None):
        """Posterior variance for one arm, or the full (read-only) vector."""
        _, variance = self.posterior()
        if arm is None:
            return variance
        return float(variance[self._check_arm(arm)])

    def posterior_std(self, arm: Optional[int] = None):
        """Posterior standard deviation for one arm, or the full vector."""
        variance = self.posterior_variance(arm)
        return np.sqrt(variance)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def log_marginal_likelihood(self) -> float:
        """Log p(y | arms, Σ, σ) of the observations seen so far."""
        t = self._t
        if t == 0:
            return 0.0
        z = self._z[:t]
        log_det_half = float(np.sum(np.log(np.diag(self._L[:t, :t]))))
        return float(-0.5 * (z @ z) - log_det_half - 0.5 * t * _LOG_2PI)

    def refit(self) -> "FiniteArmGP":
        """Fresh GP replaying the full history (numerical ground truth)."""
        clone = FiniteArmGP(
            self._cov,
            self._prior_mean,
            noise=self.noise,
            jitter=self.jitter,
        )
        t = self._t
        if t:
            arms = self._arms[:t].copy()
            y = self._y[:t].copy()
            gram = self._cov[np.ix_(arms, arms)] + self.noise**2 * np.eye(t)
            L = np.linalg.cholesky(gram + self.jitter * np.eye(t))
            clone._reserve(t)
            clone._L[:t, :t] = L
            clone._V[:t] = solve_triangular(
                L, self._cov[arms, :], lower=True
            )
            clone._z[:t] = solve_triangular(
                L, y - self._prior_mean[arms], lower=True
            )
            clone._mean_acc = clone._V[:t].T @ clone._z[:t]
            clone._explained_acc = np.einsum(
                "tk,tk->k", clone._V[:t], clone._V[:t]
            )
            clone._arms[:t] = arms
            clone._y[:t] = y
            clone._t = t
        return clone

    def copy(self) -> "FiniteArmGP":
        """Deep copy preserving the incremental state."""
        clone = FiniteArmGP(
            self._cov,
            self._prior_mean,
            noise=self.noise,
            jitter=self.jitter,
        )
        t = self._t
        if t:
            clone._reserve(t)
            clone._L[:t, :t] = self._L[:t, :t]
            clone._V[:t] = self._V[:t]
            clone._z[:t] = self._z[:t]
            clone._mean_acc = self._mean_acc.copy()
            clone._explained_acc = self._explained_acc.copy()
            clone._arms[:t] = self._arms[:t]
            clone._y[:t] = self._y[:t]
            clone._t = t
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FiniteArmGP(n_arms={self._n_arms}, "
            f"t={self.n_observations}, noise={self.noise:.4g})"
        )
