"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``
    Print the Figure 8 dataset-statistics table.
``figure {6b,8,9,10,11,12,13,14,15}``
    Run one paper-figure reproduction and print (and optionally save)
    the rendered report.
``compare``
    Race a chosen set of strategies on a chosen dataset and print the
    loss curves and speedups.
``runtime``
    Run a workload (generated or replayed from a JSONL trace) on the
    discrete-event cluster runtime under a chosen placement policy,
    and optionally dump the workload trace and execution event log.
``trace diff``
    First-divergence report between two recorded event logs (JSONL) —
    the determinism debugging tool.
``serve``
    Start the multi-tenant HTTP service (the versioned v1 API) and
    print the created tenant tokens.  ``--frontend asyncio`` swaps the
    thread-per-connection server for the event-loop frontend (reads
    never block, mutations drain per-tenant command queues, and
    ``GET /v1/jobs/{id}?wait=`` long-polls instead of spinning).  With
    ``--state-dir`` the control plane is durable: every mutation is
    journaled before it is acked (``--sync group`` shares one fsync
    per commit convoy), and a restart from the same directory recovers
    tenants, tokens, quotas, apps, and job handles.  ``--replicas N``
    adds N WAL-tailing read-replica processes behind a shared
    ``SO_REUSEPORT`` front port; one is promoted to writer if the
    writer dies (``--max-lag-records`` bounds read staleness).
``replica status``
    Topology and per-member replication lag for a running serving
    plane (reads the plane's ``cluster.json``, scrapes each member).
``state {inspect,compact}``
    Operator tools over a ``--state-dir``: summarise the journal /
    snapshots (and print tenant tokens), or replay-verify and compact
    the history into a fresh snapshot.  ``inspect`` derives its
    journal summary (record counts by type, bytes, commit lag) from
    the same metrics registry primitives the live server exposes.
``metrics``
    Scrape a running server's metrics endpoint and print it —
    Prometheus text by default (families sorted, histogram
    p50/p95/p99 rendered inline), the ``/v1/metrics`` JSON snapshot
    with ``--json``.  No tenant token needed (the endpoint is
    unauthenticated on purpose: scrape agents are not tenants).
``slow``
    Fetch retained traces from a live server (``/v1/traces``) and
    print a span waterfall per trace — frontend decode, queue wait,
    gateway handler, journal append/fsync/commit, long-poll park.
``slo status``
    Per-tenant windowed SLO attainment and error-budget burn, read
    from the ``slo_*`` gauges a live server exports.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.datasets import load_benchmark_suite
from repro.engine import GPUPool
from repro.engine.events import EventKind
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments import figures as figure_drivers
from repro.experiments.protocol import STRATEGY_NAMES
from repro.experiments.report import save_curves_csv, save_result_json
from repro.runtime import (
    PLACEMENT_POLICIES,
    AsyncClusterOracle,
    ClusterRuntime,
    WorkloadGenerator,
    WorkloadTrace,
    first_divergence,
    make_placement,
    makespan,
    replay_trace,
    time_averaged_regret,
    write_events_jsonl,
)
from repro.utils.tables import ascii_table

_FIGURES = {
    "6b": figure_drivers.figure6b,
    "8": figure_drivers.figure8,
    "9": figure_drivers.figure9,
    "10": figure_drivers.figure10,
    "11": figure_drivers.figure11,
    "12": figure_drivers.figure12,
    "13": figure_drivers.figure13,
    "14": figure_drivers.figure14,
    "15": figure_drivers.figure15,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ease.ml reproduction (VLDB 2018) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="print the Figure 8 dataset table")

    fig = sub.add_parser("figure", help="reproduce one paper figure")
    fig.add_argument("which", choices=sorted(_FIGURES))
    fig.add_argument("--trials", type=int, default=None,
                     help="number of repetitions (default: per-figure)")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--out", type=str, default=None,
                     help="also write the rendered report to this file")

    cmp_parser = sub.add_parser(
        "compare", help="race strategies on one dataset"
    )
    cmp_parser.add_argument(
        "--dataset", default="DEEPLEARNING",
        help="a Figure 8 dataset name (default: DEEPLEARNING)",
    )
    cmp_parser.add_argument(
        "--strategies", nargs="+", default=["easeml", "round_robin"],
        choices=list(STRATEGY_NAMES), metavar="STRATEGY",
    )
    cmp_parser.add_argument("--trials", type=int, default=10)
    cmp_parser.add_argument("--budget", type=float, default=0.3,
                            help="budget fraction (default 0.3)")
    cmp_parser.add_argument("--cost-aware", action="store_true")
    cmp_parser.add_argument("--seed", type=int, default=0)
    cmp_parser.add_argument("--json", type=str, default=None,
                            help="save the raw result as JSON")
    cmp_parser.add_argument("--csv", type=str, default=None,
                            help="save the loss curves as CSV")

    rt = sub.add_parser(
        "runtime",
        help="run a workload on the discrete-event cluster runtime",
    )
    rt.add_argument(
        "--dataset", default="DEEPLEARNING",
        help="Figure 8 dataset backing job costs/accuracies "
        "(default: DEEPLEARNING)",
    )
    rt.add_argument(
        "--policy", default="partition", choices=sorted(PLACEMENT_POLICIES),
        help="device-placement policy (default: partition)",
    )
    rt.add_argument("--arrival", default="poisson",
                    choices=["poisson", "deterministic"])
    rt.add_argument("--rate", type=float, default=4.0,
                    help="job arrivals per unit time (default 4.0)")
    rt.add_argument("--jobs", type=int, default=40,
                    help="number of job submissions (default 40)")
    rt.add_argument("--n-gpus", type=int, default=24,
                    help="pool size (default 24, as deployed)")
    rt.add_argument("--scaling-efficiency", type=float, default=0.9)
    rt.add_argument("--preemption-overhead", type=float, default=0.0,
                    help="single-GPU work units lost per preemption "
                    "(checkpoint/restore cost; default 0.0)")
    rt.add_argument("--seed", type=int, default=0)
    rt.add_argument("--arrivals", type=str, default=None, metavar="TRACE",
                    help="drive the multi-tenant scheduler (HYBRID user "
                    "picking + GP-UCB model picking) over the runtime, "
                    "consuming tenant arrive/depart items from this "
                    "workload trace (JSONL) mid-run; job submissions "
                    "come from the live scheduler, not the trace")
    rt.add_argument("--trace-in", type=str, default=None,
                    help="replay a recorded workload trace (JSONL)")
    rt.add_argument("--trace-out", type=str, default=None,
                    help="write the workload trace (JSONL)")
    rt.add_argument("--events-out", type=str, default=None,
                    help="write the execution event log (JSONL)")

    trace = sub.add_parser(
        "trace", help="tools over recorded JSONL event logs"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_diff = trace_sub.add_parser(
        "diff",
        help="first-divergence report between two event logs",
    )
    trace_diff.add_argument("left", help="first event-log JSONL file")
    trace_diff.add_argument("right", help="second event-log JSONL file")

    srv = sub.add_parser(
        "serve", help="start the multi-tenant HTTP service (v1 API)"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8080,
                     help="listen port (0 picks a free one)")
    srv.add_argument(
        "--frontend", default="threading",
        choices=["threading", "asyncio"],
        help="HTTP frontend: 'threading' (one OS thread per "
        "connection) or 'asyncio' (event loop; reads served inline "
        "from lock-free snapshots, mutations through per-tenant "
        "command queues, long-polls on worker threads)",
    )
    srv.add_argument(
        "--placement", default="partition",
        choices=sorted(PLACEMENT_POLICIES),
        help="device-placement policy for training jobs",
    )
    srv.add_argument("--n-gpus", type=int, default=8)
    srv.add_argument("--scaling-efficiency", type=float, default=0.9)
    srv.add_argument("--preemption-overhead", type=float, default=0.0)
    srv.add_argument("--min-examples", type=int, default=10)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument(
        "--tenant", action="append", default=None, metavar="NAME",
        help="create a tenant and print its token (repeatable; "
        "default: one tenant named 'default')",
    )
    srv.add_argument(
        "--state-dir", type=str, default=None, metavar="DIR",
        help="durable control plane: journal every mutation under DIR "
        "and recover tenants/tokens/apps/job handles on restart.  On "
        "recovery the backend shape stored in DIR (placement, pool "
        "size, seed, ...) wins over the flags above — deterministic "
        "replay must match the journal",
    )
    srv.add_argument(
        "--sync", default=None, choices=["fsync", "buffered", "group"],
        help="journal durability (fsync: every record hits disk "
        "before the ack; group: concurrent mutations share one fsync "
        "per commit convoy, still acked only after a covering flush; "
        "buffered: OS-buffered writes; default fsync, or whatever the "
        "state dir was created with)",
    )
    srv.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        help="compact the journal into a snapshot every N records "
        "(default 256; 0 disables automatic snapshots)",
    )
    srv.add_argument(
        "--in-flight", default="requeue",
        choices=["requeue", "mark-lost"],
        help="what recovery does with jobs that were in flight at the "
        "crash: requeue them on the rebuilt cluster, or mark them "
        "lost (terminal 'cancelled', disposition 'lost')",
    )
    srv.add_argument(
        "--access-log", action="store_true",
        help="log one line per HTTP request to stderr (method, path, "
        "status, latency, request id); off by default",
    )
    srv.add_argument(
        "--log-json", action="store_true",
        help="structured logging: access and lifecycle events as "
        "JSON lines on stderr (implies --access-log)",
    )
    srv.add_argument(
        "--no-metrics", action="store_true",
        help="disable the metrics registry (instruments become "
        "no-ops; /metrics serves an empty exposition)",
    )
    srv.add_argument(
        "--metrics-token", default=None, metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on /metrics, "
        "/v1/metrics and /v1/traces (by default scrapes are open, "
        "which exposes tenant names and per-tenant traffic to any "
        "network peer)",
    )
    srv.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help="head-sampling rate for request tracing in [0, 1] "
        "(default 1.0: every request carries spans; completed traces "
        "are then tail-sampled — errors and the slowest per route are "
        "always kept.  0 disables tracing entirely)",
    )
    srv.add_argument(
        "--slo-config", default=None, metavar="FILE",
        help="per-tenant SLO objectives as JSON: "
        '{"default": {"latency_ms": 1000, "target": 0.99}, '
        '"tenants": {"name": {...}}}.  Attainment and error-budget '
        "burn gauges land on /metrics; `repro slo status` reads them",
    )
    srv.add_argument(
        "--infer-batch-window", default="adaptive", metavar="MODE",
        help="inference cross-request coalescing: 'adaptive' (default; "
        "a GACER-style controller widens/narrows the window and max "
        "batch from observed flush p99 vs the tenant's SLO bound), "
        "'off' (vectorized predict, no coalescing), or a fixed window "
        "in seconds (e.g. 0.002)",
    )
    srv.add_argument(
        "--infer-cache", type=int, default=4096, metavar="ROWS",
        help="prediction-cache capacity in rows, keyed by (app, model "
        "version, canonical row bytes) and invalidated on promotion "
        "(default 4096; 0 disables)",
    )
    srv.add_argument(
        "--infer-rate", type=float, default=None, metavar="ROWS_PER_S",
        help="default per-tenant inference rate limit in rows/second "
        "(token bucket; requests over it answer 429 with Retry-After)."
        "  Default: unlimited; per-tenant quotas override",
    )
    srv.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="scale-out serving: run N WAL-tailing read-replica "
        "processes next to the writer, all sharing the front port "
        "(SO_REUSEPORT).  Replicas serve reads, answer writes with a "
        "redirect to the writer, and one of them is promoted to "
        "writer if the writer dies.  Requires --state-dir",
    )
    srv.add_argument(
        "--max-lag-records", type=int, default=None, metavar="M",
        help="staleness bound for replica reads: a replica more than "
        "M journal records behind the writer answers reads with 503 "
        "UNAVAILABLE_RECOVERING instead of stale data (default: "
        "serve regardless of lag; every response carries "
        "X-Replica-Lag either way)",
    )

    met = sub.add_parser(
        "metrics",
        help="scrape a live server's metrics endpoint and print it",
    )
    met.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="server base URL (default http://127.0.0.1:8080)",
    )
    met.add_argument(
        "--json", action="store_true",
        help="fetch the JSON snapshot (/v1/metrics, with derived "
        "p50/p95/p99) instead of the Prometheus text exposition",
    )
    met.add_argument(
        "--metrics-token", default=None, metavar="TOKEN",
        help="bearer token to send, for servers started with "
        "--metrics-token",
    )

    st = sub.add_parser(
        "state", help="operator tools over a durable state directory"
    )
    state_sub = st.add_subparsers(dest="state_command", required=True)
    inspect = state_sub.add_parser(
        "inspect",
        help="summarise a state directory (snapshots, journal, "
        "tenants and their tokens, job handles)",
    )
    inspect.add_argument("--state-dir", required=True, metavar="DIR")
    inspect.add_argument(
        "--json", action="store_true",
        help="machine-readable output (includes tenant tokens)",
    )
    compact = state_sub.add_parser(
        "compact",
        help="replay-verify the history and compact it into a fresh "
        "snapshot (truncates the journal)",
    )
    compact.add_argument("--state-dir", required=True, metavar="DIR")

    repl = sub.add_parser(
        "replica",
        help="operator tools over a scale-out serving plane",
    )
    replica_sub = repl.add_subparsers(
        dest="replica_command", required=True
    )
    status = replica_sub.add_parser(
        "status",
        help="cluster topology and per-member replication lag (reads "
        "cluster.json and scrapes each member's metrics endpoint)",
    )
    status.add_argument("--state-dir", required=True, metavar="DIR")
    status.add_argument(
        "--json", action="store_true",
        help="machine-readable output",
    )
    status.add_argument(
        "--metrics-token", default=None, metavar="TOKEN",
        help="bearer token for members started with --metrics-token",
    )

    slow = sub.add_parser(
        "slow",
        help="fetch retained traces from a live server and print a "
        "span waterfall per trace (slowest first)",
    )
    slow.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="server base URL (default http://127.0.0.1:8080)",
    )
    slow.add_argument(
        "--route", default=None, metavar="TEMPLATE",
        help='only traces for this route template, e.g. "/v1/jobs/{id}"',
    )
    slow.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="only traces for this tenant",
    )
    slow.add_argument(
        "--min-ms", type=float, default=0.0, metavar="MS",
        help="only traces at least this slow (default 0)",
    )
    slow.add_argument(
        "--limit", type=int, default=10,
        help="maximum traces to print (default 10)",
    )
    slow.add_argument(
        "--json", action="store_true",
        help="print the raw trace JSON instead of waterfalls",
    )
    slow.add_argument(
        "--metrics-token", default=None, metavar="TOKEN",
        help="bearer token to send, for servers started with "
        "--metrics-token",
    )

    slo = sub.add_parser(
        "slo", help="per-tenant SLO tooling over a live server"
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    slo_status = slo_sub.add_parser(
        "status",
        help="windowed SLO attainment and error-budget burn per "
        "tenant (reads the slo_* gauges from /v1/metrics)",
    )
    slo_status.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="server base URL (default http://127.0.0.1:8080)",
    )
    slo_status.add_argument(
        "--json", action="store_true",
        help="machine-readable output",
    )
    slo_status.add_argument(
        "--metrics-token", default=None, metavar="TOKEN",
        help="bearer token to send, for servers started with "
        "--metrics-token",
    )
    return parser


def _cmd_stats() -> int:
    suite = load_benchmark_suite(seed=0)
    rows = []
    for name, dataset in suite.items():
        stats = dataset.statistics()
        rows.append(
            [
                stats["name"],
                stats["n_users"],
                stats["n_models"],
                stats["quality"],
                stats["cost"],
            ]
        )
    print(
        ascii_table(
            ["Dataset", "# Users", "# Models", "Quality", "Cost"],
            rows,
            title="Figure 8: Statistics of Datasets",
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = _FIGURES[args.which]
    kwargs = {"seed": args.seed}
    if args.trials is not None and args.which != "8":
        kwargs["n_trials"] = args.trials
    report = driver(**kwargs)
    rendered = report.render()
    print(rendered)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"\nreport written to {args.out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    suite = load_benchmark_suite(seed=args.seed)
    if args.dataset not in suite:
        print(
            f"unknown dataset {args.dataset!r}; choose from "
            f"{sorted(suite)}",
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig(
        n_trials=args.trials,
        budget_fraction=args.budget,
        cost_aware=args.cost_aware,
        base_seed=args.seed,
    )
    result = run_experiment(suite[args.dataset], args.strategies, config)
    print(result.render())
    if len(args.strategies) > 1:
        reference = args.strategies[0]
        rows = [
            [name, ratio, threshold]
            for name, (ratio, threshold) in result.speedups(
                reference
            ).items()
        ]
        print()
        print(
            ascii_table(
                ["competitor", "max speedup (x)", "at threshold"],
                rows,
                title=f"speedup of {reference}",
                precision=2,
            )
        )
    if args.json:
        save_result_json(result, args.json)
        print(f"raw result written to {args.json}")
    if args.csv:
        save_curves_csv(result, args.csv)
        print(f"curves written to {args.csv}")
    return 0


def _cmd_runtime_arrivals(args: argparse.Namespace, dataset) -> int:
    """Live scheduler + membership churn from a recorded trace."""
    import numpy as np

    from repro.core.beta import AlgorithmOneBeta
    from repro.core.model_picking import GPUCBPicker
    from repro.core.multitenant import MultiTenantScheduler
    from repro.core.user_picking import HybridPicker
    from repro.engine.trainer import TraceTrainer

    try:
        trace = WorkloadTrace.load(args.arrivals)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(
            f"cannot load arrivals trace {args.arrivals!r}: {exc}",
            file=sys.stderr,
        )
        return 2
    membership = trace.membership()
    if not len(membership):
        print(
            f"trace {args.arrivals!r} contains no arrive/depart items",
            file=sys.stderr,
        )
        return 2
    bad = [u for u in membership.users() if u >= dataset.n_users]
    if bad:
        print(
            f"trace names tenant(s) {bad} but dataset {args.dataset} "
            f"only has {dataset.n_users} users",
            file=sys.stderr,
        )
        return 2
    trainer = TraceTrainer(dataset)
    oracle = AsyncClusterOracle(
        trainer,
        GPUPool(args.n_gpus, scaling_efficiency=args.scaling_efficiency),
        make_placement(args.policy),
        preemption_overhead=args.preemption_overhead,
    )
    n_models = dataset.n_models

    def picker_factory(user: int) -> GPUCBPicker:
        return GPUCBPicker(
            0.09 * np.eye(n_models),
            AlgorithmOneBeta(n_models),
            oracle.costs(user),
            noise=0.05,
            seed=args.seed * 10_000 + user,
        )

    # The run starts with an empty active set; every tenant joins (and
    # leaves) through the trace's membership events.
    scheduler = MultiTenantScheduler(
        oracle, {}, HybridPicker(seed=args.seed)
    )
    result = oracle.run_concurrent(
        scheduler,
        max_jobs=args.jobs,
        arrivals=membership,
        picker_factory=picker_factory,
    )
    serves = result.serves_by_tenant()
    n_arrive = sum(1 for i in membership if i.action == "arrive")
    n_depart = sum(1 for i in membership if i.action == "depart")
    rows = [
        ["jobs completed", result.n_steps],
        ["tenant arrivals (trace)", n_arrive],
        ["tenant departures (trace)", n_depart],
        ["tenants served", len(serves)],
        ["tenants active at end", len(scheduler.active_ids())],
        ["stalled picks", oracle.stalled_picks],
        ["preemptions", oracle.runtime.preemption_count],
        ["makespan", round(makespan(oracle.log), 4)],
    ]
    print(
        ascii_table(
            ["metric", "value"],
            rows,
            title=f"runtime: churn workload ({args.policy} placement, "
            f"{args.dataset})",
        )
    )
    print(
        "serves by tenant: "
        + ", ".join(f"{u}:{n}" for u, n in sorted(serves.items()))
    )
    if args.events_out:
        write_events_jsonl(oracle.log, args.events_out)
        print(
            f"event log ({len(oracle.log)} events) written to "
            f"{args.events_out}"
        )
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    suite = load_benchmark_suite(seed=args.seed)
    if args.dataset not in suite:
        print(
            f"unknown dataset {args.dataset!r}; choose from "
            f"{sorted(suite)}",
            file=sys.stderr,
        )
        return 2
    dataset = suite[args.dataset]
    if args.arrivals:
        return _cmd_runtime_arrivals(args, dataset)
    if args.trace_in:
        try:
            trace = WorkloadTrace.load(args.trace_in)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(
                f"cannot load trace {args.trace_in!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    else:
        trace = WorkloadGenerator.from_dataset(
            dataset, arrival=args.arrival, rate=args.rate, seed=args.seed
        ).generate(args.jobs)
    runtime = ClusterRuntime(
        GPUPool(args.n_gpus, scaling_efficiency=args.scaling_efficiency),
        make_placement(args.policy),
        preemption_overhead=args.preemption_overhead,
    )
    replay_trace(trace, runtime)

    finished = runtime.finished_jobs()
    span = makespan(runtime.log)
    rows = [
        ["jobs submitted", trace.n_jobs],
        ["jobs finished", len(finished)],
        ["jobs failed", len(runtime.failed_jobs())],
        ["preemptions", runtime.preemption_count],
        ["makespan", round(span, 4)],
    ]
    trace_users = trace.users()
    if span > 0 and trace_users and max(trace_users) < dataset.n_users:
        rows.append([
            "time-averaged regret",
            round(
                time_averaged_regret(runtime.log, dataset.best_qualities()),
                4,
            ),
        ])
    print(
        ascii_table(
            ["metric", "value"],
            rows,
            title=f"runtime: {args.policy} placement on "
            f"{args.dataset} workload",
        )
    )
    if args.trace_out:
        trace.save(args.trace_out)
        print(f"workload trace written to {args.trace_out}")
    if args.events_out:
        write_events_jsonl(runtime.log, args.events_out)
        n_failed = len(runtime.log.filter(EventKind.JOB_FAILED))
        print(
            f"event log ({len(runtime.log)} events, {n_failed} failures) "
            f"written to {args.events_out}"
        )
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.runtime import read_events_jsonl

    try:
        left = read_events_jsonl(args.left)
        right = read_events_jsonl(args.right)
    except (OSError, ValueError) as exc:
        print(f"cannot diff event logs: {exc}", file=sys.stderr)
        return 2
    divergence = first_divergence(left, right)
    if divergence is None:
        print(f"event logs are identical ({len(left)} events)")
        return 0
    print(divergence.describe())
    return 1


def _service_observability(args: argparse.Namespace, metrics):
    """Tracer/SLO overrides for ``serve``; (None, None) = defaults."""
    from repro.obs import NULL_TRACER, SLOEngine, Tracer, load_slo_config

    tracer = None
    rate = getattr(args, "trace_sample", None)
    if rate is not None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"--trace-sample must be in [0, 1], got {rate}"
            )
        if rate == 0.0 or not metrics.enabled:
            tracer = NULL_TRACER
        else:
            tracer = Tracer(sample_rate=rate)
    slo = None
    path = getattr(args, "slo_config", None)
    if path:
        default, objectives = load_slo_config(path)
        slo = SLOEngine(
            registry=metrics, objectives=objectives, default=default
        )
    return tracer, slo


def _infer_plane_config(args: argparse.Namespace):
    """Build an :class:`InferPlaneConfig` from serve flags, or None.

    None means "keep the gateway's default plane" so programmatic
    callers of :func:`build_service` with a bare namespace are not
    forced to carry the infer flags.
    """
    window_text = getattr(args, "infer_batch_window", None)
    cache_rows = getattr(args, "infer_cache", None)
    rate = getattr(args, "infer_rate", None)
    if window_text is None and cache_rows is None and rate is None:
        return None
    from repro.infer import InferPlaneConfig, parse_batch_window

    mode, window = parse_batch_window(window_text or "adaptive")
    kwargs = dict(mode=mode, default_rate=rate)
    if window is not None:
        kwargs["window"] = window
    if cache_rows is not None:
        if cache_rows < 0:
            raise ValueError(
                f"--infer-cache must be >= 0 rows, got {cache_rows}"
            )
        kwargs["cache_rows"] = cache_rows
    return InferPlaneConfig(**kwargs)


def build_service(args: argparse.Namespace):
    """Construct (gateway, {tenant: token}, http server) for ``serve``.

    Split out of :func:`_cmd_serve` so tests can exercise the whole
    wiring without blocking on ``serve_forever``.  Returns a fourth
    element — the :class:`~repro.persist.RecoveryReport` or None —
    when ``--state-dir`` is set.
    """
    from repro.obs import AccessLogger, MetricsRegistry
    from repro.service import ServiceGateway, serve as bind_http

    metrics = MetricsRegistry(
        enabled=not getattr(args, "no_metrics", False)
    )
    log_json = getattr(args, "log_json", False)
    access_log = AccessLogger(
        json_lines=log_json,
        enabled=log_json or getattr(args, "access_log", False),
    )
    tracer, slo = _service_observability(args, metrics)
    kwargs = dict(
        placement=args.placement,
        n_gpus=args.n_gpus,
        scaling_efficiency=args.scaling_efficiency,
        preemption_overhead=args.preemption_overhead,
        min_examples=args.min_examples,
        seed=args.seed,
        metrics=metrics,
    )
    report = None
    if getattr(args, "state_dir", None):
        from repro.persist import open_gateway

        gateway, report = open_gateway(
            args.state_dir,
            sync=args.sync,
            snapshot_every=args.snapshot_every,
            in_flight=args.in_flight,
            **kwargs,
        )
        if report is not None and gateway.persist_config is not None:
            # Recovery honoured the stored backend shape; say so when
            # the command line asked for something different.
            stored = gateway.persist_config
            ignored = {
                key: (value, stored[key])
                for key, value in kwargs.items()
                if key in stored and stored[key] != value
            }
            for key, (asked, kept) in sorted(ignored.items()):
                print(
                    f"note: --{key.replace('_', '-')} {asked} ignored; "
                    f"the state directory was created with {key}="
                    f"{kept} and replay must match it (start a fresh "
                    "--state-dir to change the backend shape)",
                    file=sys.stderr,
                )
    else:
        gateway = ServiceGateway(**kwargs)
    # Applied as attribute overrides so the durable path works too:
    # open_gateway only forwards the backend-shape kwargs, and the
    # frontends read gateway.tracer at bind time, below.
    if tracer is not None:
        gateway.tracer = tracer
    if slo is not None:
        gateway.slo = slo
    infer_config = _infer_plane_config(args)
    if infer_config is not None:
        gateway.configure_infer_plane(infer_config)
    existing = set(gateway.tenant_names())
    for name in args.tenant or ["default"]:
        if name not in existing:
            gateway.create_tenant(name)
    tokens = {
        name: gateway.tenant_token(name) for name in gateway.tenant_names()
    }
    server = bind_http(
        gateway,
        host=args.host,
        port=args.port,
        frontend=getattr(args, "frontend", "threading"),
        access_log=access_log,
        metrics_token=getattr(args, "metrics_token", None),
    )
    return gateway, tokens, server, report


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.persist import JournalError

    if getattr(args, "replicas", 0):
        return _cmd_serve_plane(args)
    try:
        gateway, tokens, server, report = build_service(args)
    except (ValueError, OSError, JournalError) as exc:
        # OSError covers bind failures (port in use, bad host).
        print(f"cannot start the service: {exc}", file=sys.stderr)
        return 2
    if report is not None:
        print(report.describe())
    print(f"ease.ml service listening on {server.url} (API v1)")
    for name, token in tokens.items():
        print(f"tenant {name}: {token}")
    print("press Ctrl-C to stop")
    server.access_log.event(
        "serve_started",
        url=server.url,
        frontend=getattr(args, "frontend", "threading"),
        tenants=sorted(tokens),
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.access_log.event("serve_stopped", url=server.url)
        server.server_close()
        if gateway.store is not None:
            gateway.store.close()
    return 0


def _cmd_serve_plane(args: argparse.Namespace) -> int:
    """``serve --replicas N``: writer + N replicas + front tier."""
    from repro.persist import JournalError
    from repro.replica import ServingPlane

    if not getattr(args, "state_dir", None):
        print(
            "--replicas requires --state-dir: replicas tail the "
            "writer's journal",
            file=sys.stderr,
        )
        return 2
    if getattr(args, "frontend", "threading") != "threading":
        print(
            "note: --frontend is per-process; the serving plane "
            "always uses the threading frontend",
            file=sys.stderr,
        )
    plane = ServingPlane(
        args.state_dir,
        host=args.host,
        port=args.port,
        replicas=args.replicas,
        max_lag_records=args.max_lag_records,
        tenants=args.tenant or ["default"],
        sync=args.sync,
        snapshot_every=args.snapshot_every,
        in_flight=args.in_flight,
        gateway_kwargs=dict(
            placement=args.placement,
            n_gpus=args.n_gpus,
            scaling_efficiency=args.scaling_efficiency,
            preemption_overhead=args.preemption_overhead,
            min_examples=args.min_examples,
            seed=args.seed,
        ),
    )
    try:
        plane.start()
    except (ValueError, OSError, JournalError, RuntimeError) as exc:
        print(f"cannot start the serving plane: {exc}", file=sys.stderr)
        plane.stop()
        return 2
    mode = "SO_REUSEPORT" if plane.reuse_port else "forwarding proxy"
    print(
        f"ease.ml serving plane on {plane.front_url} "
        f"({mode}; API v1)"
    )
    print(f"  writer: {plane.writer_url}")
    for url in plane.replica_urls():
        print(f"  replica: {url}")
    for name, token in plane.tokens.items():
        print(f"tenant {name}: {token}")
    print("press Ctrl-C to stop")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        plane.stop()
    return 0


def _scrape_json_metrics(url, path, token=None, timeout=5.0):
    """GET ``url+path`` and parse the JSON body; None on any failure."""
    import json
    from http.client import HTTPConnection, HTTPException
    from urllib.parse import urlparse

    parsed = urlparse(url)
    headers = {}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    try:
        connection = HTTPConnection(
            parsed.hostname or url, parsed.port or 80, timeout=timeout
        )
        try:
            connection.request("GET", path, headers=headers)
            response = connection.getresponse()
            body = response.read()
        finally:
            connection.close()
        if response.status != 200:
            return None
        return json.loads(body.decode("utf-8"))
    except (ConnectionError, HTTPException, OSError, ValueError):
        return None


def _cmd_replica(args: argparse.Namespace) -> int:
    """``replica status``: topology + per-member lag."""
    import json

    from repro.replica import read_cluster
    from repro.service.http import METRICS_JSON_PATH

    cluster = read_cluster(args.state_dir)
    if cluster is None:
        print(
            f"{args.state_dir} has no cluster.json — start the plane "
            "with `repro serve --replicas N --state-dir ...`",
            file=sys.stderr,
        )
        return 2

    def gauge(document, name):
        if not document:
            return None
        metrics = document.get("metrics", document)
        series = metrics.get(name, {}).get("series") or []
        return series[0]["value"] if series else None

    def histogram(document, name):
        """count + p50/p95/p99 of a histogram family, or None."""
        if not document:
            return None
        metrics = document.get("metrics", document)
        series = metrics.get(name, {}).get("series") or []
        if not series:
            return None
        entry = series[0]
        return {
            key: entry.get(key) for key in ("count", "p50", "p95", "p99")
        }

    members = []
    for member in cluster.get("members", []):
        metrics = _scrape_json_metrics(
            member.get("url", ""),
            METRICS_JSON_PATH,
            token=getattr(args, "metrics_token", None),
        )
        members.append(
            {
                "name": member.get("name"),
                "role": member.get("role"),
                "url": member.get("url"),
                "pid": member.get("pid"),
                "reachable": metrics is not None,
                "applied_seq": gauge(metrics, "replica_applied_seq"),
                "lag_records": gauge(metrics, "replica_lag_records"),
                "lag_seconds": gauge(metrics, "replica_lag_seconds"),
                "is_writer": gauge(metrics, "replica_is_writer"),
                # The writer's decision latency, next to its replicas'
                # lag: percentiles of one serving-path model pick.
                "pick_seconds": histogram(
                    metrics, "scheduler_pick_seconds"
                ),
            }
        )
    out = {
        "front_url": cluster.get("front_url"),
        "writer_url": cluster.get("writer_url"),
        "promotions": cluster.get("promotions", 0),
        "members": members,
    }
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0
    print(f"front:  {out['front_url']}")
    print(f"writer: {out['writer_url']}")
    if out["promotions"]:
        print(f"promotions: {out['promotions']}")
    for member in members:
        lag = member["lag_records"]
        lag_text = "-" if lag is None else f"{int(lag)}"
        applied = member["applied_seq"]
        applied_text = "-" if applied is None else f"{int(applied)}"
        state = "up" if member["reachable"] else "unreachable"
        pick = member["pick_seconds"]
        if pick and pick.get("count"):
            pick_text = (
                f" pick_p50={pick['p50'] * 1e6:.0f}us"
                f" p95={pick['p95'] * 1e6:.0f}us"
                f" p99={pick['p99'] * 1e6:.0f}us"
            )
        else:
            pick_text = ""
        print(
            f"  {member['name']:<12} {member['role']:<8} "
            f"{member['url']:<28} {state:<12} "
            f"applied={applied_text} lag={lag_text}{pick_text}"
        )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape a live server's metrics endpoint and print the body."""
    from http.client import HTTPConnection, HTTPException
    from urllib.parse import urlparse

    from repro.service.http import METRICS_JSON_PATH, METRICS_PATH

    parsed = urlparse(args.url)
    if parsed.scheme not in ("http", ""):
        print(
            f"only http:// endpoints are supported, got {args.url!r}",
            file=sys.stderr,
        )
        return 2
    path = METRICS_JSON_PATH if args.json else METRICS_PATH
    try:
        connection = HTTPConnection(
            parsed.hostname or args.url, parsed.port or 80, timeout=10.0
        )
        headers = {}
        if getattr(args, "metrics_token", None):
            headers["Authorization"] = f"Bearer {args.metrics_token}"
        try:
            connection.request("GET", path, headers=headers)
            response = connection.getresponse()
            body = response.read().decode("utf-8", "replace")
        finally:
            connection.close()
    except (ConnectionError, HTTPException, OSError) as exc:
        print(
            f"cannot scrape {args.url}{path}: {exc}", file=sys.stderr
        )
        return 2
    if response.status != 200:
        print(
            f"server answered HTTP {response.status} for {path}: "
            f"{body.strip()}",
            file=sys.stderr,
        )
        return 2
    if not args.json:
        body = _render_metrics_text(body)
    sys.stdout.write(body if body.endswith("\n") else body + "\n")
    return 0


def _parse_prometheus_families(body: str):
    """Split exposition text into a preamble and ``# HELP`` blocks."""
    preamble: list = []
    families: list = []
    current = None
    for line in body.splitlines():
        if line.startswith("# HELP "):
            current = {
                "name": line.split(" ", 3)[2], "kind": "", "lines": [line]
            }
            families.append(current)
        elif current is None:
            if line.strip():
                preamble.append(line)
        elif line.strip():
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) >= 4:
                    current["kind"] = parts[3]
            current["lines"].append(line)
    return preamble, families


def _bucket_percentile(bounds, counts, total, q):
    """histogram_quantile over per-bucket counts (not cumulative)."""
    rank = (q / 100.0) * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if index >= len(bounds):
                return bounds[-1]  # +Inf bucket: clamp
            upper = bounds[index]
            lower = bounds[index - 1] if index > 0 else 0.0
            fraction = (rank - previous) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return bounds[-1]


def _histogram_percentile_lines(name: str, lines) -> list:
    """Derived ``# name{labels} p50=... p95=... p99=...`` comments."""
    import math
    import re

    pair_re = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')
    series: dict = {}
    for line in lines:
        if not line.startswith(name + "_bucket"):
            continue
        brace, end = line.find("{"), line.rfind("}")
        if brace < 0 or end < brace:
            continue
        value = line[end + 1 :].split()
        if not value:
            continue
        le = None
        rest = []
        for key, val in pair_re.findall(line[brace + 1 : end]):
            if key == "le":
                le = math.inf if val == "+Inf" else float(val)
            else:
                rest.append(f'{key}="{val}"')
        if le is None:
            continue
        series.setdefault(",".join(rest), []).append(
            (le, float(value[0]))
        )
    out = []
    for key in sorted(series):
        buckets = sorted(series[key])
        bounds = [b for b, _ in buckets if b != math.inf]
        cumulative = [c for _, c in buckets]
        counts = [cumulative[0]] + [
            after - before
            for before, after in zip(cumulative, cumulative[1:])
        ]
        total = cumulative[-1]
        if total <= 0 or not bounds:
            continue
        quantiles = " ".join(
            f"p{q}={_bucket_percentile(bounds, counts, total, q):.6g}"
            for q in (50, 95, 99)
        )
        labels = f"{{{key}}}" if key else ""
        out.append(f"# {name}{labels} {quantiles}")
    return out


def _render_metrics_text(body: str) -> str:
    """``repro metrics`` text view: families sorted by name, each
    histogram series annotated with derived p50/p95/p99 comments."""
    preamble, families = _parse_prometheus_families(body)
    out = list(preamble)
    for family in sorted(families, key=lambda f: f["name"]):
        out.extend(family["lines"])
        if family["kind"] == "histogram":
            out.extend(
                _histogram_percentile_lines(
                    family["name"], family["lines"]
                )
            )
    if not out:
        return body
    return "\n".join(out) + "\n"


def _render_waterfall(trace: dict, width: int = 44) -> str:
    """One retained trace as an indented span waterfall."""
    total = max(float(trace.get("duration_ms", 0.0)), 1e-9)
    lines = [
        f"trace {trace.get('trace_id', '?')}  {trace.get('route', '?')}"
        f"  status={trace.get('status', '?')}  {total:.3f} ms"
        f"  tenant={trace.get('tenant') or '-'}"
        f"  frontend={trace.get('frontend') or '-'}"
        f"  kept={trace.get('kept', '?')}"
        + ("  ERROR" if trace.get("error") else "")
    ]
    spans = list(trace.get("spans", []))
    by_sid = {s.get("sid"): s for s in spans}

    def depth(span: dict) -> int:
        seen: set = set()
        level = 0
        parent = span.get("parent")
        while parent is not None and parent in by_sid and parent not in seen:
            seen.add(parent)
            level += 1
            parent = by_sid[parent].get("parent")
        return level

    name_width = max(
        (len(str(s.get("name", ""))) + 2 * depth(s) for s in spans),
        default=1,
    )
    ordered = sorted(
        spans,
        key=lambda s: (float(s.get("start_ms", 0.0)), s.get("sid", 0)),
    )
    for span in ordered:
        start = float(span.get("start_ms", 0.0))
        duration = float(span.get("duration_ms", 0.0))
        offset = min(max(int(width * start / total), 0), width - 1)
        length = min(
            max(int(round(width * duration / total)), 1), width - offset
        )
        bar = " " * offset + "#" * length
        label = "  " * depth(span) + str(span.get("name", "?"))
        attrs = span.get("attrs") or {}
        extra = "".join(
            f"  {k}={v}" for k, v in sorted(attrs.items())
        )
        lines.append(
            f"  {label:<{name_width}}  |{bar:<{width}}|"
            f" {duration:9.3f} ms{extra}"
        )
    return "\n".join(lines)


def _cmd_slow(args: argparse.Namespace) -> int:
    """``slow``: fetch /v1/traces and print waterfalls."""
    import json
    from urllib.parse import urlencode

    from repro.service.http import TRACES_PATH

    query = {"limit": args.limit, "min_ms": args.min_ms}
    if args.route:
        query["route"] = args.route
    if args.tenant:
        query["tenant"] = args.tenant
    document = _scrape_json_metrics(
        args.url,
        f"{TRACES_PATH}?{urlencode(query)}",
        token=getattr(args, "metrics_token", None),
    )
    if document is None:
        print(
            f"cannot fetch {args.url}{TRACES_PATH} — is the server "
            "running with metrics on (and the token right)?",
            file=sys.stderr,
        )
        return 2
    traces = document.get("traces", [])
    if args.json:
        print(json.dumps(traces, indent=2, sort_keys=True))
        return 0
    if not traces:
        print("no retained traces match the filters (drive traffic, "
              "or relax --route/--tenant/--min-ms)")
        return 0
    for trace in traces:
        print(_render_waterfall(trace))
        print()
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    """``slo status``: per-tenant attainment/burn from /v1/metrics."""
    import json

    from repro.service.http import METRICS_JSON_PATH

    document = _scrape_json_metrics(
        args.url,
        METRICS_JSON_PATH,
        token=getattr(args, "metrics_token", None),
    )
    if document is None:
        print(
            f"cannot fetch {args.url}{METRICS_JSON_PATH} — is the "
            "server running with metrics on (and the token right)?",
            file=sys.stderr,
        )
        return 2
    metrics = document.get("metrics", document)
    # Keyed (tenant, route class); "all" is the tenant-wide track, and
    # per-class rows (e.g. the infer data plane) sort beneath it.
    tenants: dict = {}
    for family, field in (
        ("slo_attainment_ratio", "attainment"),
        ("slo_error_budget_burn", "burn"),
        ("slo_class_attainment_ratio", "attainment"),
        ("slo_class_error_budget_burn", "burn"),
    ):
        for sample in metrics.get(family, {}).get("series", []):
            labels = sample.get("labels", {})
            tenant = labels.get("tenant", "?")
            route_class = labels.get("route_class", "all")
            window = labels.get("window", "?")
            cell = tenants.setdefault(
                (tenant, route_class), {}
            ).setdefault(window, {})
            cell[field] = sample.get("value")
    if args.json:
        document = {}
        for (tenant, route_class), windows in tenants.items():
            document.setdefault(tenant, {})[route_class] = windows
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    if not tenants:
        print(
            "no slo_* gauges exported yet — drive some traffic (the "
            "gauges appear after the first scraped request)"
        )
        return 0
    rows = []
    for tenant, route_class in sorted(
        tenants, key=lambda k: (k[0], k[1] != "all", k[1])
    ):
        windows = tenants[(tenant, route_class)]
        for window in sorted(windows, key=lambda w: (len(w), w)):
            cell = windows[window]
            attainment = cell.get("attainment")
            burn = cell.get("burn")
            rows.append([
                tenant,
                route_class,
                window,
                "-" if attainment is None else f"{attainment:.4f}",
                "-" if burn is None
                else ("inf" if burn >= 1e9 else f"{burn:.2f}"),
            ])
    print(
        ascii_table(
            ["tenant", "class", "window", "attainment", "budget burn"],
            rows,
            title="SLO status (burn > 1 eats error budget)",
        )
    )
    return 0


def _cmd_state(args: argparse.Namespace) -> int:
    import json

    from repro.persist import (
        JOURNAL_NAME,
        JournalError,
        has_state,
        list_snapshots,
        load_latest_snapshot,
        journal_metrics,
        read_config,
        read_journal,
        recover_gateway,
    )
    from repro.persist.digest import state_digest

    state_dir = args.state_dir
    if not has_state(state_dir):
        print(
            f"{state_dir} is not a state directory (no config.json)",
            file=sys.stderr,
        )
        return 2

    if args.state_command == "compact":
        try:
            gateway, report = recover_gateway(state_dir)
            path = gateway.store.snapshot(state_digest(gateway))
            gateway.store.close()
        except JournalError as exc:
            print(f"cannot compact {state_dir}: {exc}", file=sys.stderr)
            return 2
        print(report.describe())
        print(
            f"compacted {report.final_seq} record(s) into {path.name}; "
            "journal truncated"
        )
        return 0

    # inspect: summarise without replaying (cheap, read-only).
    try:
        config = read_config(state_dir)
        snapshot = load_latest_snapshot(state_dir)
        from pathlib import Path

        journal_records, dropped = read_journal(
            Path(state_dir) / JOURNAL_NAME
        )
    except JournalError as exc:
        print(f"cannot inspect {state_dir}: {exc}", file=sys.stderr)
        return 2
    snap_seq = snapshot.seq if snapshot else 0
    records = (snapshot.records if snapshot else []) + [
        r for r in journal_records if r.seq > snap_seq
    ]
    # Record counts / bytes / commit lag come from the same registry
    # primitives the live server scrapes through /metrics, so the
    # offline and online views share one vocabulary.
    mdict = journal_metrics(records, snapshot_seq=snap_seq).to_dict()
    record_types = {
        s["labels"]["type"]: int(s["value"])
        for s in mdict["journal_records_total"]["series"]
    }
    journal_bytes = int(
        sum(s["value"] for s in mdict["journal_bytes_total"]["series"])
    )
    commit_lag = int(
        mdict["journal_commit_lag_records"]["series"][0]["value"]
    )
    tenants: dict = {}
    jobs: dict = {}
    for record in records:
        p = record.payload
        if record.type == "tenant_created":
            tenants[p["name"]] = {"token": p["token"], "retired": False}
        elif record.type == "token_rotated":
            tenants[p["name"]]["token"] = p["token"]
        elif record.type == "tenant_retired":
            tenants[p["name"]]["retired"] = True
        elif record.type == "job_submitted":
            for handle in p["handles"]:
                jobs[handle] = "in_flight"
        elif record.type == "job_completed":
            jobs[p["handle"]] = "finished"
        elif record.type == "job_cancelled":
            for handle in p["handles"]:
                jobs[handle] = "cancelled"
    summary = {
        "state_dir": str(state_dir),
        "config": config,
        "snapshots": [p.name for p in list_snapshots(state_dir)],
        "snapshot_seq": snap_seq,
        "n_journal_records": len(journal_records),
        "dropped_tail": dropped,
        "last_seq": records[-1].seq if records else snap_seq,
        "record_types": dict(sorted(record_types.items())),
        "journal_bytes": journal_bytes,
        "commit_lag_records": commit_lag,
        "tenants": tenants,
        "jobs": jobs,
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = [
        ["snapshots", ", ".join(summary["snapshots"]) or "(none)"],
        ["snapshot seq", snap_seq],
        ["journal records", len(journal_records)],
        ["journal bytes", journal_bytes],
        ["commit lag (records)", commit_lag],
        ["last seq", summary["last_seq"]],
        ["tenants", len(tenants)],
        ["job handles", len(jobs)],
    ]
    print(
        ascii_table(
            ["field", "value"], rows, title=f"state: {state_dir}"
        )
    )
    for rtype, count in sorted(record_types.items()):
        print(f"  {rtype}: {count}")
    for name, info in sorted(tenants.items()):
        retired = " (retired)" if info["retired"] else ""
        print(f"tenant {name}{retired}: {info['token']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats()
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "runtime":
        return _cmd_runtime(args)
    if args.command == "trace":
        return _cmd_trace_diff(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "slow":
        return _cmd_slow(args)
    if args.command == "slo":
        return _cmd_slo(args)
    if args.command == "state":
        return _cmd_state(args)
    if args.command == "replica":
        return _cmd_replica(args)
    return _cmd_compare(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
